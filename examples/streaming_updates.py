#!/usr/bin/env python
"""Periodic model refresh over a growing corpus (streaming workflow).

Documents arrive in batches (built incrementally with
:class:`CorpusBuilder`); after each batch the model is retrained on
everything seen so far, **warm-started** from the previous φ so each
refresh needs only a few iterations instead of a cold-start run — the
practical pattern for the paper's "online service" motivation (§1).

Run:
    python examples/streaming_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import CuLDA, TrainConfig, volta_platform
from repro.corpus.builder import CorpusBuilder
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus

K = 16
BATCHES = 4
DOCS_PER_BATCH = 120


def main() -> None:
    # A fixed generator plays the role of the incoming stream.
    stream = generate_lda_corpus(
        SyntheticSpec(num_docs=BATCHES * DOCS_PER_BATCH, num_words=400,
                      avg_doc_length=60, num_topics=8, name="stream"),
        seed=19,
    )
    builder = CorpusBuilder(name="stream")
    phi_prev: np.ndarray | None = None
    print(f"{'batch':>6s} {'docs':>6s} {'tokens':>8s} {'mode':>12s} "
          f"{'iters':>6s} {'ll/token':>10s} {'sim time':>10s}")

    next_doc = 0
    for batch in range(BATCHES):
        for _ in range(DOCS_PER_BATCH):
            builder.add_document_ids(stream.document(next_doc).tolist())
            next_doc += 1
        corpus = builder.build(num_words=stream.num_words)

        warm = phi_prev is not None
        config = TrainConfig(
            num_topics=K,
            # Warm starts converge in a fraction of the iterations.
            iterations=8 if warm else 40,
            seed=batch,
            likelihood_every=4,
            stop_rel_tolerance=5e-4,
        )
        result = CuLDA(
            corpus, volta_platform(1), config,
            warm_start_phi=phi_prev,
        ).train()
        phi_prev = result.phi
        print(f"{batch:>6d} {corpus.num_docs:>6d} {corpus.num_tokens:>8d} "
              f"{'warm-start' if warm else 'cold-start':>12s} "
              f"{len(result.iterations):>6d} "
              f"{result.final_log_likelihood:>10.4f} "
              f"{result.total_sim_seconds * 1e3:>8.2f}ms")

    print("\nwarm-started refreshes track the stream at a fraction of the "
          "cold-start cost.")


if __name__ == "__main__":
    main()
