#!/usr/bin/env python
"""Convergence race (the paper's Fig 8): log-likelihood/token vs time.

Trains four systems on the same NYTimes-like twin and prints each one's
likelihood trajectory against *simulated* wall time:

- CuLDA_CGS on a Volta GPU,
- SaberLDA-like prior GPU system (ablated optimizations),
- WarpLDA on the paper's host CPU,
- LDA* on a 4-node 10 GbE parameter-server cluster.

Run:
    python examples/convergence_comparison.py
"""

from __future__ import annotations

from repro import CuLDA, TrainConfig, nytimes_like, volta_platform
from repro.baselines import LDAStar, SaberLDA, WarpLDA
from repro.core.model import LDAHyperParams
from repro.gpusim.platform import pascal_platform

K = 32
ITERS = 30
EVERY = 5


def trajectory_culda(corpus):
    r = CuLDA(
        corpus, volta_platform(1),
        TrainConfig(num_topics=K, iterations=ITERS, seed=0,
                    likelihood_every=EVERY),
    ).train()
    t = 0.0
    out = []
    for it in r.iterations:
        t += it.sim_seconds
        if it.log_likelihood_per_token is not None:
            out.append((t, it.log_likelihood_per_token))
    return "CuLDA_CGS (1x V100)", out


def trajectory_saber(corpus):
    r = SaberLDA(
        corpus, pascal_platform(1),
        TrainConfig(num_topics=K, iterations=ITERS, seed=0,
                    likelihood_every=EVERY),
    ).train()
    t = 0.0
    out = []
    for it in r.iterations:
        t += it.sim_seconds
        if it.log_likelihood_per_token is not None:
            out.append((t, it.log_likelihood_per_token))
    return "SaberLDA-like (1x Titan Xp)", out


def trajectory_warplda(corpus):
    r = WarpLDA(corpus, LDAHyperParams(num_topics=K), seed=0).train(
        iterations=ITERS, likelihood_every=EVERY
    )
    t = 0.0
    out = []
    for it in r.iterations:
        t += it.sim_seconds
        if it.log_likelihood_per_token is not None:
            out.append((t, it.log_likelihood_per_token))
    return "WarpLDA (2x E5-2690v4)", out


def trajectory_ldastar(corpus):
    r = LDAStar(corpus, LDAHyperParams(num_topics=K), num_workers=4,
                seed=0).train(iterations=ITERS, likelihood_every=EVERY)
    t = 0.0
    out = []
    for it in r.iterations:
        t += it.sim_seconds
        if it.log_likelihood_per_token is not None:
            out.append((t, it.log_likelihood_per_token))
    return "LDA* (4 nodes, 10GbE)", out


def main() -> None:
    corpus = nytimes_like(num_tokens=60_000, num_topics=16, seed=5)
    print(f"corpus: {corpus}\n")
    print(f"{'system':<28s} trajectory (simulated_time_s : ll/token)")
    finals = {}
    for fn in (trajectory_culda, trajectory_saber, trajectory_warplda,
               trajectory_ldastar):
        name, traj = fn(corpus)
        line = "  ".join(f"{t * 1e3:7.2f}ms:{ll:7.3f}" for t, ll in traj)
        print(f"{name:<28s} {line}")
        finals[name] = traj[-1]
    print()
    best = min(finals.items(), key=lambda kv: kv[1][0])
    print(f"fastest to its final likelihood: {best[0]} "
          f"({best[1][0] * 1e3:.2f} ms simulated)")


if __name__ == "__main__":
    main()
