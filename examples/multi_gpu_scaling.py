#!/usr/bin/env python
"""Multi-GPU scaling (the paper's Fig 9) at two fidelities.

1. *Functional*: actually trains a PubMed-like twin on 1/2/4 simulated
   Pascal GPUs and reports the measured speedups (identical models are
   produced at every GPU count — determinism at fixed C).
2. *Projected*: evaluates the analytic model at full PubMed scale
   (737.9M tokens, K=1024), the regime the paper measured
   (1.93x / 2.99x at 2 / 4 GPUs).

Run:
    python examples/multi_gpu_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro import CuLDA, TrainConfig, pascal_platform, pubmed_like
from repro.perfmodel import fig9_scaling


def functional_scaling() -> None:
    print("=== functional runs (scaled-down PubMed twin) ===")
    corpus = pubmed_like(num_tokens=150_000, num_topics=16, seed=1,
                         vocab_cap=2048)
    print(f"corpus: {corpus}")
    results = {}
    for gpus in (1, 2, 4):
        r = CuLDA(
            corpus,
            machine=pascal_platform(gpus),
            config=TrainConfig(num_topics=64, iterations=10, seed=0,
                               chunks_per_gpu=4 // gpus),
        ).train()
        results[gpus] = r
        print(
            f"  {gpus} GPU(s): {r.avg_tokens_per_sec / 1e6:7.1f}M tokens/s "
            f"(simulated {r.total_sim_seconds * 1e3:.2f} ms, C={r.plan_chunks})"
        )
    base = results[1]
    for gpus in (2, 4):
        speedup = results[gpus].avg_tokens_per_sec / base.avg_tokens_per_sec
        same = np.array_equal(results[gpus].phi, base.phi)
        print(f"  speedup x{gpus}: {speedup:.2f}   model identical to 1-GPU run: {same}")


def projected_scaling() -> None:
    print()
    print("=== analytic projection at full PubMed scale (paper Fig 9) ===")
    f9 = fig9_scaling()
    print("  paper:      1 GPU 1.00x   2 GPUs 1.93x   4 GPUs 2.99x")
    parts = "   ".join(
        f"{g} GPU{'s' if g > 1 else ''} {d['speedup']:.2f}x" for g, d in f9.items()
    )
    print(f"  projected:  {parts}")


def main() -> None:
    functional_scaling()
    projected_scaling()


if __name__ == "__main__":
    main()
