#!/usr/bin/env python
"""Sweep the paper's three platforms (Table 2) and print, per platform:

- the measured (functional, scaled-twin) throughput and kernel breakdown,
- the projected full-scale Table 4 row,
- the §3 roofline characterization that explains all of it.

Run:
    python examples/platform_sweep.py
"""

from __future__ import annotations

from repro import CuLDA, TrainConfig, nytimes_like
from repro.analysis.roofline import average_flops_per_byte, format_table1
from repro.gpusim.platform import (
    maxwell_platform,
    pascal_platform,
    volta_platform,
)
from repro.perfmodel import table4_throughput

PLATFORMS = {
    "Maxwell (Titan X)": maxwell_platform,
    "Pascal  (Titan Xp)": pascal_platform,
    "Volta   (V100)": volta_platform,
}


def main() -> None:
    print("=== §3 characterization (Table 1) ===")
    print(format_table1())
    print(f"\nLDA is memory bound everywhere: {average_flops_per_byte():.2f} "
          "Flops/Byte vs ridge points of 9+ on every processor.\n")

    corpus = nytimes_like(num_tokens=60_000, num_topics=16, seed=2)
    print(f"=== functional sweep on {corpus} ===")
    cfg = TrainConfig(num_topics=64, iterations=10, seed=0)
    for name, factory in PLATFORMS.items():
        r = CuLDA(corpus, factory(1), cfg).train()
        bd = r.breakdown
        print(
            f"  {name:<20s} {r.avg_tokens_per_sec / 1e6:8.1f}M tokens/s   "
            f"sampling {bd.get('sampling', 0):.0%}  "
            f"update-θ {bd.get('update_theta', 0):.0%}  "
            f"update-φ {bd.get('update_phi', 0):.0%}"
        )

    print("\n=== projected full-scale throughput (paper Table 4) ===")
    t4 = table4_throughput()
    paper = {
        "NYTimes": {"Titan": 173.6, "Pascal": 208.0, "Volta": 633.0, "WarpLDA": 108.0},
        "PubMed": {"Titan": 155.6, "Pascal": 213.0, "Volta": 686.2, "WarpLDA": 93.5},
    }
    for ds, row in t4.items():
        print(f"  {ds}:")
        for platform, value in row.items():
            print(
                f"    {platform:<8s} projected {value / 1e6:7.1f}M   "
                f"paper {paper[ds][platform]:7.1f}M"
            )


if __name__ == "__main__":
    main()
