#!/usr/bin/env python
"""Quickstart: train LDA with CuLDA_CGS on a simulated 2-GPU machine.

Run:
    python examples/quickstart.py
"""

from repro import CuLDA, TrainConfig, nytimes_like, pascal_platform


def main() -> None:
    # A scaled-down synthetic twin of the UCI NYTimes corpus (~50k tokens,
    # average document length 332, Zipf word frequencies).
    corpus = nytimes_like(num_tokens=50_000, num_topics=16, seed=0)
    print(f"corpus: {corpus}")

    # The paper's Pascal platform with 2 GPUs (Table 2).
    machine = pascal_platform(2)

    result = CuLDA(
        corpus,
        machine=machine,
        config=TrainConfig(
            num_topics=32,       # K; alpha defaults to 50/K, beta to 0.01
            iterations=30,
            seed=0,
            likelihood_every=10,
        ),
    ).train()

    print()
    print(result.summary())
    print()
    print("per-iteration simulated throughput (M tokens/sec):")
    for it in result.iterations[::5]:
        ll = (
            f"  ll/token={it.log_likelihood_per_token:.4f}"
            if it.log_likelihood_per_token is not None
            else ""
        )
        print(
            f"  iter {it.iteration:>3d}: {it.tokens_per_sec / 1e6:8.1f}M "
            f"(mean K_d={it.mean_kd:.1f}, p1 draws={it.p1_fraction:.0%}){ll}"
        )

    print()
    print("top word-ids per topic (first 4 topics):")
    for k in range(4):
        print(f"  topic {k}: {result.top_words(k, n=8)}")


if __name__ == "__main__":
    main()
