#!/usr/bin/env python
"""Topic discovery on a corpus with a human-readable vocabulary.

Builds a small news-like corpus from five seeded themes, trains
CuLDA_CGS, and prints each discovered topic's top words — the
classic LDA demo, run through the full multi-GPU pipeline.

Run:
    python examples/news_topics.py
"""

from __future__ import annotations

import numpy as np

from repro import CuLDA, TrainConfig, volta_platform
from repro.corpus.corpus import Corpus, Vocabulary

THEMES = {
    "sports": "game team season player coach win score league match fans stadium goal".split(),
    "markets": "stock market shares trading investors prices fund bank profit earnings rally bond".split(),
    "politics": "election vote senate campaign policy president congress bill party debate poll law".split(),
    "science": "study research data cells gene experiment theory physics climate model lab result".split(),
    "food": "restaurant recipe chef flavor dish wine kitchen sauce menu taste bake ingredient".split(),
}
COMMON = "the of a and to in for with on new said year time people city".split()


def build_corpus(
    num_docs: int = 400, avg_len: int = 120, seed: int = 0
) -> Corpus:
    """Each document mixes 1-2 themes plus common filler words."""
    rng = np.random.default_rng(seed)
    vocab = Vocabulary()
    theme_ids = {
        name: np.array([vocab.add(w) for w in words])
        for name, words in THEMES.items()
    }
    common_ids = np.array([vocab.add(w) for w in COMMON])
    vocab.freeze()

    names = list(THEMES)
    docs = []
    for _ in range(num_docs):
        k = rng.integers(1, 3)
        picked = rng.choice(len(names), size=k, replace=False)
        pool = np.concatenate([theme_ids[names[i]] for i in picked])
        length = max(5, int(rng.poisson(avg_len)))
        n_common = int(0.3 * length)
        words = np.concatenate(
            [
                rng.choice(pool, size=length - n_common),
                rng.choice(common_ids, size=n_common),
            ]
        )
        docs.append(words.tolist())
    return Corpus.from_documents(docs, len(vocab), vocab, name="news")


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {corpus.num_docs} docs, {corpus.num_tokens} tokens, "
          f"{corpus.num_words} words")

    result = CuLDA(
        corpus,
        machine=volta_platform(1),
        config=TrainConfig(num_topics=8, iterations=60, seed=3,
                           likelihood_every=20),
    ).train()
    print(result.summary())
    print()

    vocab = corpus.vocabulary
    print("discovered topics (top 8 words each):")
    # Rank topics by mass so the seeded themes surface first.
    mass = result.phi.sum(axis=1)
    for k in np.argsort(mass)[::-1]:
        words = [vocab.word_of(w) for w in result.top_words(int(k), n=8)]
        print(f"  topic {k} ({mass[k]:>6d} tokens): {' '.join(words)}")


if __name__ == "__main__":
    main()
