#!/usr/bin/env python
"""Profiling the simulated machine: Gantt chart + Chrome trace export.

Runs a short streaming (WorkSchedule2) training on one GPU so the
timeline shows the paper's transfer/compute pipelining, then

- prints a text Gantt chart of the per-stream timeline,
- prints the per-kind time breakdown (Table 5 style),
- writes a Chrome-tracing JSON you can open in chrome://tracing or
  https://ui.perfetto.dev.

Run:
    python examples/profile_timeline.py [output.json]
"""

from __future__ import annotations

import sys

from repro import CuLDA, TrainConfig, pascal_platform, pubmed_like
from repro.gpusim.trace import to_chrome_json


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "timeline.json"
    corpus = pubmed_like(num_tokens=60_000, num_topics=8, seed=5)
    machine = pascal_platform(1)
    result = CuLDA(
        corpus,
        machine,
        # Force streaming (M=4) so uploads/downloads appear and overlap.
        TrainConfig(num_topics=64, iterations=2, seed=0, chunks_per_gpu=4),
    ).train()
    print(result.summary())
    print()

    print("=== per-stream timeline (text Gantt; S=sampling, U=update, "
          "H=h2d, D=d2h, P=p2p) ===")
    print(machine.trace.gantt_text(width=96))
    print()

    print("=== time by kind ===")
    for kind, seconds in sorted(
        machine.trace.total_time_by_kind().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {kind:<14s} {seconds * 1e3:8.3f} ms")
    overlap = machine.trace.overlap_seconds("h2d", "sampling")
    print(f"\n  h2d/sampling overlap: {overlap * 1e3:.3f} ms "
          "(WorkSchedule2's pipelining, visible on the timeline)")

    with open(out_path, "w") as fh:
        fh.write(to_chrome_json(machine.trace))
    print(f"\nChrome trace written to {out_path} "
          "(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
