#!/usr/bin/env python
"""Choosing K with held-out likelihood — a model-selection workflow.

Trains CuLDA_CGS at several topic counts on a corpus generated with a
*known* number of topics and evaluates each model on held-out documents
by fold-in inference. Held-out likelihood climbs steeply up to the true
K and then plateaus (fold-in refits θ, so oversized models waste
capacity rather than crash), while topic diversity collapses beyond the
true K — together the knee rule recovers the generator's K, end-to-end
through the simulated multi-GPU pipeline.

Run:
    python examples/topic_count_sweep.py
"""

from __future__ import annotations

from repro import CuLDA, TrainConfig, pascal_platform
from repro.analysis.topics import topic_diversity
from repro.core.inference import infer_documents
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus

TRUE_K = 8
SWEEP = (2, 4, 8, 16, 32)


def main() -> None:
    spec = SyntheticSpec(
        num_docs=400, num_words=500, avg_doc_length=90,
        num_topics=TRUE_K, alpha=0.06, name="sweep",
    )
    full = generate_lda_corpus(spec, seed=11)
    train = full.slice_docs(0, 320, name="train")
    held = full.slice_docs(320, 400, name="held-out")
    print(f"train: {train.num_tokens} tokens   held-out: {held.num_tokens} "
          f"tokens   true K = {TRUE_K}")
    print()
    print(f"{'K':>4s} {'train ll/token':>15s} {'held-out ll/token':>18s} "
          f"{'diversity':>10s} {'sim time':>10s}")

    rows = []
    for k in SWEEP:
        result = CuLDA(
            train, pascal_platform(2),
            TrainConfig(num_topics=k, iterations=40, seed=0),
        ).train()
        inf = infer_documents(held, result.phi, result.hyper,
                              iterations=15, seed=1)
        div = topic_diversity(result.phi, top_n=10)
        print(f"{k:>4d} {result.final_log_likelihood:>15.4f} "
              f"{inf.log_likelihood_per_token:>18.4f} {div:>10.2f} "
              f"{result.total_sim_seconds * 1e3:>8.2f}ms")
        rows.append((k, inf.log_likelihood_per_token, div))

    # Knee rule: the smallest K whose held-out likelihood is within a
    # small margin of the best seen — further topics buy (almost)
    # nothing and shred topic diversity.
    best_ll = max(ll for _, ll, _ in rows)
    knee_k = min(k for k, ll, _ in rows if ll >= best_ll - 0.1)
    print()
    print(f"best held-out ll/token: {best_ll:.4f}")
    print(f"knee rule (within 0.1 of best) selects K = {knee_k} "
          f"(generator used {TRUE_K})")


if __name__ == "__main__":
    main()
