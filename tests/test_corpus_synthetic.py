"""Tests for synthetic corpus generators and dataset statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.datasets import NYTIMES, PUBMED, DatasetStats
from repro.corpus.stats import expected_kd, fit_zipf_exponent, summarize
from repro.corpus.synthetic import (
    SyntheticSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
    nytimes_like,
    pubmed_like,
)


class TestSyntheticSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_docs=0, num_words=10, avg_doc_length=5)
        with pytest.raises(ValueError):
            SyntheticSpec(num_docs=1, num_words=1, avg_doc_length=5)
        with pytest.raises(ValueError):
            SyntheticSpec(num_docs=1, num_words=10, avg_doc_length=0.5)
        with pytest.raises(ValueError):
            SyntheticSpec(num_docs=1, num_words=10, avg_doc_length=5, num_topics=0)


class TestLDAGenerator:
    SPEC = SyntheticSpec(
        num_docs=100, num_words=300, avg_doc_length=40, num_topics=5
    )

    def test_shapes_and_ranges(self):
        c = generate_lda_corpus(self.SPEC, seed=0)
        assert c.num_docs == 100
        assert c.num_words == 300
        assert c.token_word.min() >= 0
        assert c.token_word.max() < 300
        assert all(l >= 1 for l in c.doc_lengths)

    def test_avg_length_close_to_spec(self):
        c = generate_lda_corpus(self.SPEC, seed=1)
        assert abs(c.num_tokens / c.num_docs - 40) < 5

    def test_deterministic_given_seed(self):
        a = generate_lda_corpus(self.SPEC, seed=42)
        b = generate_lda_corpus(self.SPEC, seed=42)
        assert np.array_equal(a.token_word, b.token_word)
        assert np.array_equal(a.doc_indptr, b.doc_indptr)

    def test_different_seeds_differ(self):
        a = generate_lda_corpus(self.SPEC, seed=1)
        b = generate_lda_corpus(self.SPEC, seed=2)
        assert not np.array_equal(a.token_word[: min(len(a.token_word), len(b.token_word))],
                                  b.token_word[: min(len(a.token_word), len(b.token_word))])

    def test_has_topic_structure(self):
        """Documents should be word-concentrated relative to the corpus:
        the LDA generative process makes same-document tokens share
        topics, hence share a biased word distribution."""
        c = generate_lda_corpus(
            SyntheticSpec(num_docs=200, num_words=500, avg_doc_length=80,
                          num_topics=4, alpha=0.05), seed=3)
        # Mean number of *distinct* words per document should be well
        # below the document length (repetition within topics).
        distinct = np.mean([
            np.unique(c.document(d)).size for d in range(50)
        ])
        mean_len = float(np.mean(c.doc_lengths[:50]))
        assert distinct < 0.9 * mean_len


class TestZipfGenerator:
    def test_skewed_frequencies(self):
        spec = SyntheticSpec(
            num_docs=300, num_words=1000, avg_doc_length=60, zipf_exponent=1.2
        )
        c = generate_zipf_corpus(spec, seed=0)
        freq = np.sort(c.word_frequencies())[::-1]
        # Top word should dominate the median word by a large factor.
        median = max(1, int(np.median(freq[freq > 0])))
        assert freq[0] > 20 * median

    def test_fitted_exponent_roughly_recovered(self):
        spec = SyntheticSpec(
            num_docs=500, num_words=2000, avg_doc_length=100, zipf_exponent=1.0
        )
        c = generate_zipf_corpus(spec, seed=1)
        fitted = fit_zipf_exponent(c.word_frequencies())
        assert 0.5 < fitted < 1.8


class TestTwins:
    def test_nytimes_like_shape(self):
        c = nytimes_like(num_tokens=30000, seed=0)
        assert abs(c.num_tokens - 30000) / 30000 < 0.15
        assert abs(c.num_tokens / c.num_docs - NYTIMES.avg_doc_length) < 40

    def test_pubmed_like_shape(self):
        c = pubmed_like(num_tokens=30000, seed=0)
        assert abs(c.num_tokens / c.num_docs - PUBMED.avg_doc_length) < 15

    def test_twins_differ_in_doc_length(self):
        nyt = nytimes_like(num_tokens=20000, seed=1)
        pm = pubmed_like(num_tokens=20000, seed=1)
        assert nyt.num_tokens / nyt.num_docs > 3 * pm.num_tokens / pm.num_docs


class TestDatasetStats:
    def test_table3_values(self):
        # Exactly the paper's Table 3.
        assert NYTIMES.num_tokens == 99_542_125
        assert NYTIMES.num_docs == 299_752
        assert NYTIMES.num_words == 101_636
        assert PUBMED.num_tokens == 737_869_083
        assert PUBMED.num_docs == 8_200_000
        assert PUBMED.num_words == 141_043

    def test_avg_doc_lengths_match_paper(self):
        # Paper §7.1: "92 vs. 332".
        assert round(NYTIMES.avg_doc_length) == 332
        assert round(PUBMED.avg_doc_length) == 90  # 737869083 / 8.2M

    def test_scaled_preserves_avg_length(self):
        s = NYTIMES.scaled(0.01)
        assert abs(s.avg_doc_length - NYTIMES.avg_doc_length) < 2
        assert s.num_words < NYTIMES.num_words

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            NYTIMES.scaled(0.0)
        with pytest.raises(ValueError):
            NYTIMES.scaled(1.5)

    def test_table_row_format(self):
        row = NYTIMES.table_row()
        assert "NYTimes" in row and "99,542,125" in row


class TestStatsHelpers:
    def test_expected_kd_bounds(self):
        # Bounded by both K and L.
        assert expected_kd(10, 1000) <= 10.0 + 1e-9
        assert expected_kd(10000, 16) <= 16.0 + 1e-9

    def test_expected_kd_monotone_in_length(self):
        ks = [expected_kd(l, 64) for l in (1, 10, 100, 1000)]
        assert ks == sorted(ks)

    def test_expected_kd_rejects_bad_k(self):
        with pytest.raises(ValueError):
            expected_kd(10, 0)

    def test_summarize_round_trip(self, small_corpus):
        s = summarize(small_corpus)
        assert s.num_tokens == small_corpus.num_tokens
        assert s.num_docs == small_corpus.num_docs
        ds = s.as_dataset_stats()
        assert isinstance(ds, DatasetStats)
        assert ds.num_tokens == s.num_tokens

    def test_fit_zipf_degenerate(self):
        assert fit_zipf_exponent(np.array([5])) == 1.0
        assert fit_zipf_exponent(np.array([0, 0, 3])) == 1.0
