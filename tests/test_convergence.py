"""Tests for convergence detection and trainer early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import ConvergenceDetector


class TestDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(rel_tolerance=0)
        with pytest.raises(ValueError):
            ConvergenceDetector(window=1)
        with pytest.raises(ValueError):
            ConvergenceDetector(window=5, min_observations=3)
        d = ConvergenceDetector()
        with pytest.raises(ValueError):
            d.update(float("nan"))

    def test_not_converged_while_improving(self):
        d = ConvergenceDetector(rel_tolerance=1e-3, window=3)
        for ll in (-9.0, -8.0, -7.0, -6.0, -5.0):
            assert not d.update(ll)

    def test_converges_on_plateau(self):
        d = ConvergenceDetector(rel_tolerance=1e-3, window=3)
        trace = [-9.0, -7.0, -6.0, -5.5, -5.5001, -5.5, -5.50005]
        results = [d.update(x) for x in trace]
        assert results[-1]
        assert not results[2]

    def test_min_observations_guard(self):
        d = ConvergenceDetector(rel_tolerance=1.0, window=2,
                                min_observations=5)
        for _ in range(4):
            assert not d.update(-5.0)
        assert d.update(-5.0)

    def test_reset(self):
        d = ConvergenceDetector()
        d.update(-5.0)
        d.reset()
        assert d.num_observations == 0


class TestTrainerEarlyStop:
    def test_stops_before_max_iterations(self):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
        from repro.gpusim.platform import pascal_platform

        corpus = generate_lda_corpus(
            SyntheticSpec(num_docs=60, num_words=100, avg_doc_length=30,
                          num_topics=3),
            seed=8,
        )
        r = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=6, iterations=200, seed=0,
                        likelihood_every=5, stop_rel_tolerance=1e-3),
        ).train()
        assert len(r.iterations) < 200
        assert r.final_log_likelihood is not None

    def test_requires_likelihood_schedule(self, small_corpus):
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import pascal_platform

        with pytest.raises(ValueError, match="likelihood_every"):
            CuLDA(
                small_corpus, pascal_platform(1),
                TrainConfig(num_topics=4, iterations=5, seed=0,
                            stop_rel_tolerance=1e-3),
            ).train()
