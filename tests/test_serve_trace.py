"""Tests for end-to-end request tracing in the serving path.

Every request flows admission → micro-batcher → scheduler → replica
(→ hedge duplicate) → completion; the service must record that whole
journey as one span tree under one trace id, exportable as JSONL and
Chrome trace, and reconstructible as a critical-path breakdown.
"""

from __future__ import annotations

import json

import pytest

from repro.core.serialization import load_model
from repro.gpusim.platform import make_machine
from repro.serve import (
    HedgePolicy,
    InferenceService,
    ServiceConfig,
    poisson_trace,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.serve.request import InferenceRequest
from repro.telemetry.tracing import (
    STAGE_NAMES,
    TRACE_SCHEMA,
    TraceCollector,
    TraceSpan,
    format_serve_trace,
    read_spans_jsonl,
    serve_trace_json,
    spans_chrome_json,
    summarize_traces,
    write_spans_jsonl,
)


@pytest.fixture(scope="module")
def model_info(serve_checkpoints):
    ckpt = load_model(serve_checkpoints[0])
    return serve_checkpoints[0], int(ckpt.phi.shape[1])


def run_loadgen(model_info, gpus=2, rate=2000.0, duration=0.02, seed=3,
                config=None):
    path, num_words = model_info
    trace = poisson_trace([path], num_words, rate=rate, duration=duration,
                          seed=seed)
    service = InferenceService(
        make_machine("pascal", gpus), config or ServiceConfig()
    )
    return service.run_trace(trace), trace


# ----------------------------------------------------------------------
# Collector / span model (unit)
# ----------------------------------------------------------------------
class TestTraceCollector:
    def test_span_ids_deterministic_per_trace(self):
        c = TraceCollector()
        a = c.add("t1", "request", 0.0, 1.0)
        b = c.add("t1", "queue", 0.0, 0.5, parent_id=a.span_id)
        other = c.add("t2", "request", 0.0, 1.0)
        assert (a.span_id, b.span_id) == ("s0", "s1")
        assert other.span_id == "s0"  # per-trace sequence

    def test_none_attrs_dropped(self):
        c = TraceCollector()
        s = c.add("t", "request", 0.0, 1.0, status="completed",
                  batch_id=None)
        assert s.attrs == {"status": "completed"}

    def test_record_round_trip(self):
        s = TraceSpan("t", "s0", "kernel", 1.0, 2.0, parent_id="s9",
                      attrs={"lane": "primary"})
        record = s.to_dict()
        assert record["schema"] == TRACE_SCHEMA
        assert TraceSpan.from_dict(record) == s

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            TraceSpan.from_dict({"trace": "t", "span": "s0"})

    def test_jsonl_round_trip(self, tmp_path):
        c = TraceCollector()
        root = c.add("t", "request", 0.0, 2.0, status="completed")
        c.add("t", "queue", 0.0, 1.0, parent_id=root.span_id)
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(c.spans, path)
        assert read_spans_jsonl(path) == c.spans


# ----------------------------------------------------------------------
# Service integration: every request gets a linked span tree
# ----------------------------------------------------------------------
class TestServiceTracing:
    @pytest.fixture(scope="class")
    def traced_run(self, model_info):
        return run_loadgen(model_info)

    def test_every_request_has_a_root_span(self, traced_run):
        report, trace = traced_run
        roots = [s for s in report.trace_spans if s.name == "request"]
        assert len(roots) == len(trace)
        assert {s.attrs["request_id"] for s in roots} == {
            r.request_id for r in trace
        }

    def test_stage_spans_link_to_root_by_one_trace_id(self, traced_run):
        report, _ = traced_run
        by_trace: dict[str, list[TraceSpan]] = {}
        for s in report.trace_spans:
            by_trace.setdefault(s.trace_id, []).append(s)
        completed = [
            spans for spans in by_trace.values()
            if any(s.name == "request"
                   and s.attrs.get("status") == "completed"
                   for s in spans)
        ]
        assert completed
        for spans in completed:
            root = next(s for s in spans if s.name == "request")
            names = {s.name for s in spans}
            assert {"queue", "staging", "kernel", "download"} <= names
            for child in spans:
                if child is not root:
                    assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id

    def test_stage_spans_nest_inside_the_root(self, traced_run):
        report, _ = traced_run
        roots = {
            s.trace_id: s for s in report.trace_spans if s.name == "request"
        }
        eps = 1e-12
        for s in report.trace_spans:
            root = roots[s.trace_id]
            if s.attrs.get("status") == "deadline_exceeded":
                continue  # execution may finish after the deadline cutoff
            assert s.start >= root.start - eps
            assert s.end <= root.end + eps

    def test_latency_matches_report(self, traced_run):
        report, _ = traced_run
        summaries = {s.trace_id: s for s in summarize_traces(report.trace_spans)}
        for r in report.results:
            if r.status != "completed":
                continue
            tid = f"req-{r.request_id}" if r.request.trace_id is None \
                else r.request.trace_id
            assert summaries[tid].latency == pytest.approx(r.latency)

    def test_client_supplied_trace_id_wins(self, model_info):
        path, num_words = model_info
        req = InferenceRequest(
            request_id=0, arrival_time=0.0, model_key=path,
            docs=[[0, 1, 2]], trace_id="client-abc",
        )
        service = InferenceService(make_machine("pascal", 1), ServiceConfig())
        report = service.run_trace([req])
        assert {s.trace_id for s in report.trace_spans} == {"client-abc"}

    def test_rejected_requests_keep_a_degenerate_tree(self, model_info):
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=50_000, duration=0.005,
                              seed=1)
        service = InferenceService(
            make_machine("pascal", 1), ServiceConfig(max_queue=4)
        )
        report = service.run_trace(trace)
        assert report.count("rejected") > 0
        statuses = {
            s.trace_id: s.attrs.get("status")
            for s in report.trace_spans if s.name == "request"
        }
        assert len(statuses) == len(trace)
        assert "rejected" in statuses.values()


# ----------------------------------------------------------------------
# Hedging: both lanes recorded, exactly one wins
# ----------------------------------------------------------------------
class TestHedgeTracing:
    @pytest.fixture(scope="class")
    def hedged_run(self, model_info):
        config = ServiceConfig(
            max_batch_size=4, max_wait_seconds=1e-3, max_queue=512,
            iterations=3,
            hedge=HedgePolicy(quantile=0.5, min_observations=4),
        )
        return run_loadgen(model_info, gpus=2, rate=3000, duration=0.03,
                           seed=13, config=config)

    def test_hedge_lane_spans_share_the_trace_id(self, hedged_run):
        report, _ = hedged_run
        assert report.hedges > 0
        by_trace: dict[str, list[TraceSpan]] = {}
        for s in report.trace_spans:
            by_trace.setdefault(s.trace_id, []).append(s)
        hedged = [
            spans for spans in by_trace.values()
            if any(s.attrs.get("lane") == "hedge" for s in spans)
        ]
        assert hedged
        for spans in hedged:
            root = next(s for s in spans if s.name == "request")
            lanes = {s.attrs.get("lane") for s in spans if s.name == "kernel"}
            assert lanes == {"primary", "hedge"}
            for s in spans:
                assert s.trace_id == root.trace_id

    def test_exactly_one_lane_wins(self, hedged_run):
        report, _ = hedged_run
        for summary in summarize_traces(report.trace_spans):
            if summary.hedge_replica is None:
                continue
            # `hedged` on the root marks the winning lane.
            root_hedged = summary.hedged
            assert summary.hedge_won == root_hedged


# ----------------------------------------------------------------------
# Replay: same arrival trace + ids → identical trace trees
# ----------------------------------------------------------------------
class TestReplay:
    def test_saved_trace_replays_to_identical_trees(self, model_info, tmp_path):
        path, num_words = model_info
        requests = poisson_trace([path], num_words, rate=2000,
                                 duration=0.02, seed=7)
        assert all(r.trace_id for r in requests)

        trace_file = tmp_path / "requests.jsonl"
        write_trace_jsonl(requests, trace_file)
        replayed = read_trace_jsonl(trace_file, default_model=path)
        assert [r.trace_id for r in replayed] == [
            r.trace_id for r in requests
        ]

        def run(reqs):
            service = InferenceService(
                make_machine("pascal", 2), ServiceConfig()
            )
            return service.run_trace(reqs).trace_spans

        assert run(requests) == run(replayed)


# ----------------------------------------------------------------------
# Exports + terminal view
# ----------------------------------------------------------------------
class TestExports:
    @pytest.fixture(scope="class")
    def spans(self, model_info):
        report, _ = run_loadgen(model_info)
        return report.trace_spans

    def test_chrome_export_one_row_per_trace(self, spans):
        doc = json.loads(spans_chrome_json(spans))
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        rows = [e for e in events if e["ph"] == "M"
                and e["name"] == "thread_name"]
        assert len(slices) == len(spans)
        assert {e["args"]["name"] for e in rows} == {
            s.trace_id for s in spans
        }
        for e in slices:
            assert e["dur"] >= 0
            assert e["args"]["trace"]

    def test_format_serve_trace_shows_critical_path(self, spans):
        text = format_serve_trace(spans)
        assert "critical path" in text
        for stage in STAGE_NAMES:
            assert stage in text

    def test_format_serve_trace_picks_requested_trace(self, spans):
        tid = spans[0].trace_id
        text = format_serve_trace(spans, trace_id=tid)
        assert f"trace {tid}" in text

    def test_serve_trace_json_schema(self, spans):
        doc = serve_trace_json(spans)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["traces"] == len({s.trace_id for s in spans})
        assert doc["spans"] == len(spans)
        for req in doc["requests"]:
            assert set(req["stages_seconds"]) == set(STAGE_NAMES)

    def test_summary_stages_account_for_latency(self, spans):
        for s in summarize_traces(spans):
            if s.status != "completed":
                continue
            assert s.accounted <= s.latency + 1e-9
