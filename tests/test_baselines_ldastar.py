"""Tests for the LDA* distributed baseline and its cluster substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ldastar import LDAStar
from repro.cluster.network import ClusterNetwork
from repro.cluster.paramserver import ShardedParameterServer
from repro.core.model import LDAHyperParams


class TestClusterNetwork:
    def test_send_latency_and_bandwidth(self):
        net = ClusterNetwork(3, link_gbps=1.25, latency_seconds=1e-4)
        start, end = net.send(0, 1, 1.25e9, earliest=0.0)
        assert start == 0.0
        # Two link traversals, pipelined: bounded by ~1s + latencies.
        assert end == pytest.approx(1.0 + 2e-4, rel=0.01)

    def test_self_send_free(self):
        net = ClusterNetwork(2)
        assert net.send(1, 1, 1e9, earliest=5.0) == (5.0, 5.0)

    def test_egress_contention(self):
        net = ClusterNetwork(3, link_gbps=1.0, latency_seconds=0.0)
        _, e1 = net.send(0, 1, 1e9, 0.0)
        s2, _ = net.send(0, 2, 1e9, 0.0)  # same source: serialize
        assert s2 == pytest.approx(e1)

    def test_disjoint_pairs_parallel(self):
        net = ClusterNetwork(4, link_gbps=1.0, latency_seconds=0.0)
        _, e1 = net.send(0, 1, 1e9, 0.0)
        s2, _ = net.send(2, 3, 1e9, 0.0)  # disjoint: no contention
        assert s2 == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterNetwork(0)


class TestParameterServer:
    def _mk(self, num_nodes=4, K=6, V=20):
        rng = np.random.default_rng(0)
        phi = rng.integers(0, 10, size=(K, V)).astype(np.int64)
        net = ClusterNetwork(num_nodes)
        return phi, ShardedParameterServer(phi.copy(), num_nodes, net)

    def test_pull_returns_slice(self):
        phi, ps = self._mk()
        words = np.array([1, 5, 7])
        got, t = ps.pull(0, words, earliest=0.0)
        assert np.array_equal(got, phi[:, words])
        assert t > 0

    def test_push_applies_delta(self):
        phi, ps = self._mk()
        words = np.array([2, 3])
        delta = np.ones((6, 2), dtype=np.int64)
        ps.push(1, words, delta, earliest=0.0)
        assert np.array_equal(ps.phi[:, words], phi[:, words] + 1)

    def test_push_shape_check(self):
        _, ps = self._mk()
        with pytest.raises(ValueError):
            ps.push(0, np.array([1]), np.ones((2, 2), dtype=np.int64), 0.0)

    def test_sharding_validation(self):
        phi = np.zeros((2, 4), dtype=np.int64)
        net = ClusterNetwork(2)
        with pytest.raises(ValueError):
            ShardedParameterServer(phi, 3, net)

    def test_traffic_accounting(self):
        _, ps = self._mk()
        ps.pull(0, np.array([1, 2, 3]), 0.0)
        assert ps.bytes_pulled > 0


class TestLDAStar:
    def test_trains_and_conserves_counts(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=8)
        star = LDAStar(medium_corpus, hyper, num_workers=3, seed=0)
        r = star.train(iterations=3)
        assert r.phi.sum() == medium_corpus.num_tokens
        assert r.num_workers == 3
        assert r.network_bytes > 0
        assert r.total_sim_seconds > 0

    def test_likelihood_improves(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=16)
        star = LDAStar(medium_corpus, hyper, num_workers=2, seed=0)
        ll0 = star.log_likelihood_per_token()
        r = star.train(iterations=10)
        assert r.final_log_likelihood > ll0 + 0.1

    def test_network_dominates_vs_gpu(self, medium_corpus):
        """§7.2's claim: the iteration-granular sync over Ethernet costs
        LDA* dearly against a single GPU at the same K."""
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import volta_platform

        hyper = LDAHyperParams(num_topics=16)
        star = LDAStar(medium_corpus, hyper, num_workers=4, seed=0)
        rs = star.train(iterations=3)
        rg = CuLDA(medium_corpus, volta_platform(1),
                   TrainConfig(num_topics=16, iterations=3, seed=0)).train()
        assert rg.avg_tokens_per_sec > rs.avg_tokens_per_sec

    def test_iteration_records_components(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=8)
        star = LDAStar(medium_corpus, hyper, num_workers=2, seed=0)
        r = star.train(iterations=2)
        it = r.iterations[0]
        assert it.network_seconds >= 0
        assert it.compute_seconds > 0
        assert it.sim_seconds > 0

    def test_validation(self, medium_corpus):
        with pytest.raises(ValueError):
            LDAStar(medium_corpus, LDAHyperParams(num_topics=8), num_workers=0)


class TestBoundedStaleness:
    def test_validation(self, medium_corpus):
        with pytest.raises(ValueError):
            LDAStar(medium_corpus, LDAHyperParams(num_topics=8),
                    num_workers=2, staleness=-1)

    def test_staleness_reduces_network_traffic(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=8)
        sync = LDAStar(medium_corpus, hyper, num_workers=4, seed=0,
                       staleness=0).train(iterations=6)
        stale = LDAStar(medium_corpus, hyper, num_workers=4, seed=0,
                        staleness=2).train(iterations=6)
        assert stale.network_bytes < 0.6 * sync.network_bytes
        assert stale.total_sim_seconds < sync.total_sim_seconds

    def test_stale_training_still_converges(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=16)
        star = LDAStar(medium_corpus, hyper, num_workers=3, seed=0,
                       staleness=3)
        ll0 = star.log_likelihood_per_token()
        r = star.train(iterations=10)
        assert r.final_log_likelihood > ll0 + 0.1

    def test_no_updates_lost_under_staleness(self, medium_corpus):
        """Bounded staleness delays updates but never drops them: after
        a flushing sync round the server's φ matches the sum of the
        workers' actual counts cell-for-cell, not just in total."""
        import numpy as np

        hyper = LDAHyperParams(num_topics=8)
        star = LDAStar(medium_corpus, hyper, num_workers=3, seed=0,
                       staleness=2)
        star.train(iterations=7)  # ends on iteration 6 = a sync round
        expected = np.zeros_like(star.server.phi)
        for w in star.workers:
            expected += w.local_counts
        assert np.array_equal(star.server.phi, expected)
        assert star.server.phi.sum() == medium_corpus.num_tokens
