"""Tests for the collective-communication layer (repro.comm).

Covers the topology snapshot, the collective registry, the hierarchical
all-reduce, the cost-model planner's per-topology decisions (including
replanning around dead links), the structured no-path error every
collective now raises, and the ``--sync auto`` bit-identity guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    AUTO,
    SyncContext,
    Topology,
    TransferRetry,
    collective_names,
    collectives,
    cpu_gather_sync,
    get_collective,
    hierarchical_allreduce_phi,
    plan_sync,
    reduce_phi_tree,
    ring_allreduce_phi,
    sync_choices,
)
from repro.core.kernels import KernelConfig
from repro.gpusim.errors import LinkDown, SyncPathError
from repro.gpusim.memory import DeviceArray
from repro.gpusim.platform import (
    dgx_platform,
    make_machine,
    pascal_platform,
    volta_platform,
)


def _setup(machine, K=8, V=20, dtype=np.int32, seed=0, devices=None):
    """Partial/scratch/full buffers + streams on *devices* (default all)."""
    rng = np.random.default_rng(seed)
    gpus = (
        machine.gpus if devices is None
        else [machine.gpus[d] for d in devices]
    )
    partial_data = [
        rng.integers(0, 50, size=(K, V)).astype(dtype) for _ in gpus
    ]
    partials = [
        DeviceArray(gpu, (K, V), dtype, fill=partial_data[i],
                    label=f"partial{i}")
        for i, gpu in enumerate(gpus)
    ]
    scratch = [
        DeviceArray(gpu, (K, V), dtype, label=f"scratch{i}")
        for i, gpu in enumerate(gpus)
    ]
    fulls = [
        DeviceArray(gpu, (K, V), dtype, label=f"full{i}")
        for i, gpu in enumerate(gpus)
    ]
    streams = [gpu.create_stream("sync") for gpu in gpus]
    expected = np.sum(partial_data, axis=0)
    return partials, scratch, fulls, streams, expected


# ----------------------------------------------------------------------
# Topology snapshots
# ----------------------------------------------------------------------
class TestTopology:
    def test_pascal_dual_socket_layout(self):
        m = pascal_platform(4)
        t = Topology.from_machine(m)
        assert t.devices == (0, 1, 2, 3)
        assert t.sockets == ((0, 1), (2, 3))
        assert t.num_sockets == 2
        assert not t.has_nvlink
        assert t.describe() == "4gpu-2sock-pcie"
        # Same-socket pairs ride the PCIe switch, cross-socket pairs the
        # (slower) inter-socket bridge.
        assert t.p2p_info(0, 1).kind == "p2p_switch"
        assert t.p2p_info(2, 3).kind == "p2p_switch"
        assert t.p2p_info(0, 2).kind == "p2p_bridge"
        assert (t.p2p_info(0, 1).bandwidth_gbps
                > t.p2p_info(0, 2).bandwidth_gbps)

    def test_dgx_links_classified_nvlink(self):
        t = Topology.from_machine(dgx_platform(4))
        assert t.has_nvlink
        assert all(i.kind == "nvlink" for i in t.p2p.values())
        assert t.describe() == "4gpu-2sock-nvlink"

    def test_down_and_degraded_links_visible(self):
        m = pascal_platform(2)
        m.p2p_link(0, 1).set_down()
        m.pcie[0].degrade(0.5)
        t = Topology.from_machine(m)
        assert not t.p2p_info(0, 1).up
        assert t.host[0].bandwidth_gbps == pytest.approx(
            t.host[1].bandwidth_gbps * 0.5
        )

    def test_transient_faults_invisible(self):
        m = pascal_platform(2)
        m.p2p_link(0, 1).fail_next(3)
        assert Topology.from_machine(m).p2p_info(0, 1).up

    def test_device_subset_is_the_elastic_view(self):
        m = pascal_platform(4)
        m.gpus[1].fail()
        t = Topology.from_machine(m)
        assert t.devices == (0, 2, 3)
        assert t.sockets == ((0,), (2, 3))

    def test_from_cluster_is_all_eth(self):
        from repro.cluster.network import ClusterNetwork

        t = Topology.from_cluster(ClusterNetwork(num_nodes=3))
        assert t.devices == (0, 1, 2)
        assert t.p2p == {}
        assert all(i.kind == "eth" for i in t.host.values())


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registration_order_and_choices(self):
        assert collective_names() == (
            "gpu_tree", "ring", "cpu_gather", "hierarchical"
        )
        assert sync_choices() == (AUTO, *collective_names())
        assert [c.name for c in collectives()] == list(collective_names())

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValueError, match="unknown sync algorithm"):
            get_collective("bogus")
        with pytest.raises(ValueError, match="auto"):
            get_collective("bogus")

    def test_trainer_still_rejects_unknown_algorithm(self):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import pubmed_like

        corpus = pubmed_like(num_tokens=2_000, num_topics=4, seed=0)
        with pytest.raises(ValueError, match="unknown sync algorithm"):
            CuLDA(
                corpus, pascal_platform(2),
                TrainConfig(num_topics=8, iterations=1, seed=0,
                            sync_algorithm="bogus"),
            ).train()


# ----------------------------------------------------------------------
# Hierarchical collective
# ----------------------------------------------------------------------
class TestHierarchical:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    def test_allreduce_sums_all_replicas(self, num_gpus):
        m = pascal_platform(num_gpus)
        partials, scratch, fulls, streams, expected = _setup(m)
        hierarchical_allreduce_phi(
            m, partials, fulls, scratch, streams, KernelConfig()
        )
        m.synchronize()
        for f in fulls:
            assert np.array_equal(f.data, expected.astype(f.dtype))

    def test_elastic_subset_skipping_a_socket_member(self):
        # Surviving set {0, 2, 3}: socket 0 degenerates to one GPU.
        m = pascal_platform(4)
        partials, scratch, fulls, streams, expected = _setup(
            m, devices=[0, 2, 3]
        )
        hierarchical_allreduce_phi(
            m, partials, fulls, scratch, streams, KernelConfig()
        )
        m.synchronize()
        for f in fulls:
            assert np.array_equal(f.data, expected.astype(f.dtype))

    def test_bridge_traffic_below_tree(self):
        # The point of the composition: fewer full replicas cross the
        # inter-socket bridge than under the flat tree.
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.context import telemetry_session

        def bridge_bytes(run):
            m = pascal_platform(4)
            registry = MetricsRegistry()
            with telemetry_session(registry=registry):
                run(m)
            m.synchronize()
            counter = registry.get("sync_bytes_total")
            cross = 0.0
            for s in counter.samples():
                a, b = s.labels["link"].split("->")
                if {a, b} & {"0", "1"} and {a, b} & {"2", "3"}:
                    cross += s.value
            return cross

        cfg = KernelConfig()

        def tree(m):
            p, s, f, st, _ = _setup(m, K=64, V=500)
            root = reduce_phi_tree(m, p, s, st, cfg)
            from repro.comm import broadcast_phi

            broadcast_phi(m, root, f, st, cfg)

        def hier(m):
            p, s, f, st, _ = _setup(m, K=64, V=500)
            hierarchical_allreduce_phi(m, p, f, s, st, cfg)

        assert bridge_bytes(hier) < bridge_bytes(tree)


# ----------------------------------------------------------------------
# Planner decisions
# ----------------------------------------------------------------------
PAYLOAD = (64, 2048)


class TestPlanner:
    def test_picks_hierarchical_on_dual_socket_pcie(self):
        plan = plan_sync(pascal_platform(4), PAYLOAD, KernelConfig())
        assert plan.algorithm == "hierarchical"
        assert not plan.forced
        assert plan.estimate.feasible

    def test_picks_tree_on_nvlink(self):
        plan = plan_sync(dgx_platform(4), PAYLOAD, KernelConfig())
        assert plan.algorithm == "gpu_tree"

    def test_distinct_choices_across_topologies(self):
        chosen = {
            platform: plan_sync(
                make_machine(platform, 4), PAYLOAD, KernelConfig()
            ).algorithm
            for platform in ("pascal", "volta", "dgx")
        }
        assert len(set(chosen.values())) >= 2, chosen

    def test_single_gpu_keeps_seed_default(self):
        assert plan_sync(
            pascal_platform(1), PAYLOAD, KernelConfig()
        ).algorithm == "gpu_tree"

    def test_forced_plan_respected_and_marked(self):
        plan = plan_sync(
            pascal_platform(4), PAYLOAD, KernelConfig(), algorithm="ring"
        )
        assert plan.algorithm == "ring" and plan.forced

    def test_dead_p2p_link_replans_to_host_path(self):
        m = pascal_platform(4)
        baseline = plan_sync(m, PAYLOAD, KernelConfig(),
                             retry=TransferRetry())
        assert baseline.algorithm != "cpu_gather"
        for (a, b) in ((0, 1), (0, 2), (2, 3)):
            m.p2p_link(a, b).set_down()
        replanned = plan_sync(m, PAYLOAD, KernelConfig(),
                              retry=TransferRetry())
        assert replanned.algorithm == "cpu_gather"

    def test_dead_p2p_without_fallback_still_replans(self):
        m = pascal_platform(2)
        m.p2p_link(0, 1).set_down()
        plan = plan_sync(
            m, PAYLOAD, KernelConfig(),
            retry=TransferRetry(host_fallback=False),
        )
        assert plan.algorithm == "cpu_gather"

    def test_no_path_at_all_raises_structured_error(self):
        m = pascal_platform(2)
        m.p2p_link(0, 1).set_down()
        for link in m.pcie:
            link.set_down()
        with pytest.raises(SyncPathError):
            plan_sync(m, PAYLOAD, KernelConfig())

    def test_auto_never_slower_than_tree_estimate(self):
        cfg = KernelConfig()
        for platform in ("maxwell", "pascal", "volta", "dgx"):
            for gpus in (1, 2, 4):
                m = make_machine(platform, gpus)
                topo = Topology.from_machine(m)
                auto = plan_sync(m, PAYLOAD, cfg)
                tree = get_collective("gpu_tree").estimate(
                    m, topo, PAYLOAD, cfg
                )
                assert auto.estimate.seconds <= tree.seconds + 1e-12

    def test_decisions_recorded_in_registry(self):
        from repro.comm import decisions_from_registry
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.context import telemetry_session

        registry = MetricsRegistry()
        with telemetry_session(registry=registry):
            plan_sync(pascal_platform(4), PAYLOAD, KernelConfig())
            plan_sync(dgx_platform(4), PAYLOAD, KernelConfig(),
                      algorithm="ring")
        decisions = decisions_from_registry(registry)
        assert {d["algorithm"] for d in decisions} == {
            "hierarchical", "ring"
        }
        forced = {d["algorithm"]: d["forced"] for d in decisions}
        assert forced == {"hierarchical": False, "ring": True}
        assert all("predicted_seconds" in d for d in decisions)


# ----------------------------------------------------------------------
# Structured no-path errors (satellite: same error from every collective)
# ----------------------------------------------------------------------
class TestSyncPathError:
    def _dead_machine(self, gpus=2):
        m = pascal_platform(gpus)
        for a in range(gpus):
            for b in range(a + 1, gpus):
                m.p2p_link(a, b).set_down()
        return m

    def test_tree_names_link_and_devices(self):
        m = self._dead_machine()
        p, s, f, st, _ = _setup(m)
        with pytest.raises(SyncPathError) as err:
            reduce_phi_tree(m, p, s, st, KernelConfig())
        assert err.value.link_name == m.p2p_link(0, 1).name
        assert err.value.devices == (1, 0)
        assert err.value.op == "phi_reduce_copy"

    def test_ring_raises_same_structured_error(self):
        m = self._dead_machine()
        p, s, f, st, _ = _setup(m)
        with pytest.raises(SyncPathError) as err:
            ring_allreduce_phi(m, p, f, st, KernelConfig())
        assert err.value.link_name == m.p2p_link(0, 1).name
        assert len(err.value.devices) == 2
        assert err.value.op == "ring_transfer"

    def test_cpu_gather_raises_same_structured_error(self):
        m = pascal_platform(2)
        m.pcie[1].set_down()
        p, s, f, st, _ = _setup(m)
        with pytest.raises(SyncPathError) as err:
            cpu_gather_sync(m, p, f, st, KernelConfig())
        assert err.value.link_name == m.pcie[1].name
        assert err.value.devices == (1,)
        assert err.value.op == "phi_gather"

    def test_subclasses_linkdown_for_existing_handlers(self):
        assert issubclass(SyncPathError, LinkDown)
        err = SyncPathError("p2p[0-1]", "phi_reduce_copy", devices=(1, 0))
        assert "p2p[0-1]" in str(err)
        assert "1->0" in str(err)
        assert not err.transient


# ----------------------------------------------------------------------
# Bit-identity of --sync auto (the planner's core invariant)
# ----------------------------------------------------------------------
class TestAutoBitIdentity:
    """φ is summed in exact integer arithmetic, so whatever the planner
    picks must be bit-identical to every forced algorithm — on PCIe,
    NVLink, and mixed fabrics, and under fault plans."""

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.corpus.synthetic import pubmed_like

        return pubmed_like(num_tokens=12_000, num_topics=8, seed=3)

    def _train(self, corpus, platform, gpus, sync, iterations=3):
        from repro.core import CuLDA, TrainConfig

        trainer = CuLDA(
            corpus, make_machine(platform, gpus),
            TrainConfig(num_topics=16, iterations=iterations, seed=0,
                        sync_algorithm=sync),
        )
        return trainer.train()

    @pytest.mark.parametrize("platform", ["pascal", "volta", "dgx"])
    @pytest.mark.parametrize("num_gpus", [2, 3, 4])
    def test_auto_matches_every_forced_algorithm(
        self, corpus, platform, num_gpus
    ):
        auto = self._train(corpus, platform, num_gpus, AUTO).phi
        for sync in collective_names():
            forced = self._train(corpus, platform, num_gpus, sync).phi
            assert np.array_equal(auto, forced), (platform, num_gpus, sync)

    def test_auto_bit_identical_under_dead_p2p_fault(self, corpus):
        # A link_down fault mid-run forces the planner onto a host path
        # for later iterations; the model must not notice.
        from repro.faults import FaultPlan, FaultSpec
        from repro.telemetry import MetricsRegistry
        from repro.core import CuLDA, TrainConfig

        plan = FaultPlan(faults=(
            FaultSpec(kind="link_down", iteration=2, link="p2p[0-1]"),
        ))
        registry = MetricsRegistry()
        trainer = CuLDA(
            corpus, pascal_platform(2),
            TrainConfig(num_topics=16, iterations=4, seed=0,
                        sync_algorithm=AUTO),
            registry=registry,
        )
        faulty = trainer.train(fault_plan=plan, recovery="retry")
        clean = self._train(corpus, "pascal", 2, AUTO, iterations=4).phi
        assert np.array_equal(faulty.phi, clean)
        decisions = registry.get("sync_planner_decisions_total")
        chosen = {s.labels["algorithm"] for s in decisions.samples()}
        assert "cpu_gather" in chosen  # replanned onto the host path

    def test_auto_not_slower_than_tree_in_simulated_time(self, corpus):
        for platform in ("pascal", "dgx"):
            auto = self._train(corpus, platform, 4, AUTO)
            tree = self._train(corpus, platform, 4, "gpu_tree")
            assert (auto.total_sim_seconds
                    <= tree.total_sim_seconds * (1 + 1e-9)), platform
