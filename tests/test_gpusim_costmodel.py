"""Tests for the roofline cost model."""

from __future__ import annotations

import pytest

from repro.gpusim.costmodel import CostModel, KernelCost, TransferCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.interconnect import Link

SPEC = DeviceSpec(
    name="test-gpu",
    arch="test",
    num_sms=10,
    peak_bandwidth_gbps=100.0,
    peak_gflops=1000.0,
    mem_capacity_bytes=2**30,
    mem_efficiency=0.5,
    compute_efficiency=0.5,
    kernel_launch_seconds=0.0,
    tail_penalty=0.0,
)


class TestKernelCostValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelCost(bytes_read=-1)
        with pytest.raises(ValueError):
            KernelCost(flops=-1)

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            KernelCost(atomic_locality=1.5)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            KernelCost(num_blocks=0)

    def test_flops_per_byte(self):
        c = KernelCost(bytes_read=50, bytes_written=50, flops=27)
        assert c.flops_per_byte == pytest.approx(0.27)

    def test_flops_per_byte_no_traffic(self):
        assert KernelCost(flops=5).flops_per_byte == float("inf")

    def test_add_combines(self):
        a = KernelCost(bytes_read=10, flops=5, atomic_ops=10, atomic_locality=1.0)
        b = KernelCost(bytes_written=20, flops=5, atomic_ops=30, atomic_locality=0.5)
        c = a + b
        assert c.bytes_read == 10 and c.bytes_written == 20
        assert c.flops == 10
        assert c.atomic_ops == 40
        assert c.atomic_locality == pytest.approx((10 * 1.0 + 30 * 0.5) / 40)

    def test_scaled(self):
        c = KernelCost(bytes_read=100, flops=10, num_blocks=4).scaled(2.5)
        assert c.bytes_read == 250
        assert c.flops == 25
        assert c.num_blocks == 10

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelCost(bytes_read=1).scaled(-1)


class TestKernelTiming:
    CM = CostModel()

    def test_memory_bound_time(self):
        # 50 GB at 100 GB/s x 0.5 eff => 1.0 s.
        c = KernelCost(bytes_read=50e9)
        assert self.CM.kernel_seconds(SPEC, c) == pytest.approx(1.0)

    def test_compute_bound_time(self):
        # 5e12 flops at 1000 GF x 0.5 => 10 s, dwarfing 1 byte.
        c = KernelCost(bytes_read=1, flops=5e12)
        assert self.CM.kernel_seconds(SPEC, c) == pytest.approx(10.0)

    def test_max_not_sum(self):
        mem = KernelCost(bytes_read=50e9)
        both = KernelCost(bytes_read=50e9, flops=100e9)  # compute is faster
        assert self.CM.kernel_seconds(SPEC, both) == pytest.approx(
            self.CM.kernel_seconds(SPEC, mem)
        )

    def test_launch_overhead_added(self):
        spec = DeviceSpec(
            name="s", arch="t", num_sms=1, peak_bandwidth_gbps=1.0,
            peak_gflops=1.0, mem_capacity_bytes=1024,
            kernel_launch_seconds=1e-3, tail_penalty=0.0,
        )
        assert self.CM.kernel_seconds(spec, KernelCost()) == pytest.approx(1e-3)

    def test_atomic_throughput_bound(self):
        spec = DeviceSpec(
            name="s", arch="t", num_sms=1, peak_bandwidth_gbps=1e6,
            peak_gflops=1e6, mem_capacity_bytes=1024,
            atomic_ops_per_sec=1e6, atomic_locality_floor=0.1,
            kernel_launch_seconds=0.0, tail_penalty=0.0,
        )
        perfect = KernelCost(atomic_ops=1e6, atomic_locality=1.0)
        scattered = KernelCost(atomic_ops=1e6, atomic_locality=0.0)
        t_perfect = self.CM.kernel_seconds(spec, perfect)
        t_scattered = self.CM.kernel_seconds(spec, scattered)
        assert t_perfect == pytest.approx(1.0)
        assert t_scattered == pytest.approx(10.0)  # floor = 0.1 of rate

    def test_shared_memory_over_capacity_rejected(self):
        c = KernelCost(bytes_read=1, shared_mem_per_block=10**9)
        with pytest.raises(ValueError, match="shared memory"):
            self.CM.kernel_seconds(SPEC, c)

    def test_tail_penalty(self):
        spec = DeviceSpec(
            name="s", arch="t", num_sms=10, peak_bandwidth_gbps=100.0,
            peak_gflops=1000.0, mem_capacity_bytes=1024, blocks_per_sm=1,
            mem_efficiency=0.5, kernel_launch_seconds=0.0, tail_penalty=1.0,
        )
        full_wave = KernelCost(bytes_read=50e9, num_blocks=10)
        partial = KernelCost(bytes_read=50e9, num_blocks=11)  # 1 extra block
        t_full = self.CM.kernel_seconds(spec, full_wave)
        t_partial = self.CM.kernel_seconds(spec, partial)
        assert t_full == pytest.approx(1.0)
        assert t_partial > t_full  # the 9-idle-SM second wave costs


class TestTransferTiming:
    CM = CostModel()

    def test_bandwidth_plus_latency(self):
        link = Link("l", bandwidth_gbps=10.0, latency_seconds=1e-3)
        t = self.CM.transfer_seconds(link, TransferCost(nbytes=10e9))
        assert t == pytest.approx(1.0 + 1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TransferCost(nbytes=-1)


class TestDeviceSpec:
    def test_ridge_point(self):
        # The paper's host CPU: 470 GFLOPS / 51.2 GB/s = 9.2.
        from repro.gpusim.platform import CPU_E5_2690V4

        assert CPU_E5_2690V4.ridge_flops_per_byte == pytest.approx(9.18, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="x", arch="t", num_sms=0,
                       peak_bandwidth_gbps=1, peak_gflops=1,
                       mem_capacity_bytes=1)
        with pytest.raises(ValueError):
            DeviceSpec(name="x", arch="t", num_sms=1,
                       peak_bandwidth_gbps=0, peak_gflops=1,
                       mem_capacity_bytes=1)
        with pytest.raises(ValueError):
            DeviceSpec(name="x", arch="t", num_sms=1,
                       peak_bandwidth_gbps=1, peak_gflops=1,
                       mem_capacity_bytes=1, mem_efficiency=1.5)
