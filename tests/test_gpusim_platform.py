"""Tests for machines, links, transfers, host compute, and the trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.costmodel import KernelCost
from repro.gpusim.interconnect import Link
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import DeviceArray
from repro.gpusim.platform import (
    GPU_TITAN_X,
    GPU_TITAN_XP,
    GPU_V100,
    maxwell_platform,
    pascal_platform,
    volta_platform,
)


class TestPlatformPresets:
    def test_table2_bandwidths(self):
        # The paper's Table 2 headline numbers.
        assert GPU_TITAN_X.peak_bandwidth_gbps == 336.0
        assert GPU_TITAN_XP.peak_bandwidth_gbps == 550.0
        assert GPU_V100.peak_bandwidth_gbps == 900.0

    def test_table2_gpu_counts(self):
        assert len(maxwell_platform(1).gpus) == 1
        assert len(pascal_platform(4).gpus) == 4
        assert len(volta_platform(2).gpus) == 2

    def test_gpu_count_limits(self):
        with pytest.raises(ValueError):
            pascal_platform(5)
        with pytest.raises(ValueError):
            volta_platform(3)
        with pytest.raises(ValueError):
            pascal_platform(0)

    def test_volta_has_80_sms(self):
        assert GPU_V100.num_sms == 80

    def test_memory_capacities(self):
        assert GPU_TITAN_X.mem_capacity_bytes == 12 * 2**30
        assert GPU_V100.mem_capacity_bytes == 16 * 2**30


class TestLink:
    def test_serialization_on_same_direction(self):
        link = Link("l", 10.0, latency_seconds=0.0)
        s1, e1 = link.reserve(10e9, earliest=0.0)
        s2, e2 = link.reserve(10e9, earliest=0.0)
        assert s2 == pytest.approx(e1)
        assert e2 == pytest.approx(2.0)

    def test_duplex_directions_independent(self):
        link = Link("l", 10.0, latency_seconds=0.0, duplex=True)
        _, e1 = link.reserve(10e9, 0.0, direction=0)
        s2, _ = link.reserve(10e9, 0.0, direction=1)
        assert s2 == 0.0

    def test_half_duplex_contends(self):
        link = Link("l", 10.0, latency_seconds=0.0, duplex=False)
        _, e1 = link.reserve(10e9, 0.0, direction=0)
        s2, _ = link.reserve(10e9, 0.0, direction=1)
        assert s2 == pytest.approx(e1)

    def test_stats(self):
        link = Link("l", 1.0)
        link.reserve(100, 0.0)
        link.reserve(200, 0.0)
        assert link.bytes_carried == 300
        assert link.num_transfers == 2


class TestTransfers:
    def test_h2d_copies_and_charges(self, pascal1):
        gpu = pascal1.gpus[0]
        buf = DeviceArray(gpu, (1000,), np.float32)
        src = np.arange(1000, dtype=np.float32)
        start, end = pascal1.memcpy_h2d(buf, src)
        assert np.array_equal(buf.data, src)
        expected = 4000 / (13.0e9) + pascal1.pcie[0].latency_seconds
        assert end - start == pytest.approx(expected)

    def test_h2d_shape_mismatch(self, pascal1):
        gpu = pascal1.gpus[0]
        buf = DeviceArray(gpu, (10,), np.float32)
        with pytest.raises(ValueError):
            pascal1.memcpy_h2d(buf, np.zeros(5, dtype=np.float32))

    def test_d2h_returns_copy(self, pascal1):
        gpu = pascal1.gpus[0]
        buf = DeviceArray(gpu, (10,), np.int32, fill=3)
        _, _, host = pascal1.memcpy_d2h(buf)
        assert np.all(host == 3)
        host[0] = 9
        assert buf.data[0] == 3

    def test_p2p_between_gpus(self, pascal4):
        g0, g1 = pascal4.gpus[0], pascal4.gpus[1]
        a = DeviceArray(g0, (100,), np.int32, fill=5)
        b = DeviceArray(g1, (100,), np.int32)
        pascal4.memcpy_p2p(b, a)
        assert np.all(b.data == 5)

    def test_p2p_same_device_rejected(self, pascal4):
        g0 = pascal4.gpus[0]
        a = DeviceArray(g0, (10,), np.int32)
        b = DeviceArray(g0, (10,), np.int32)
        with pytest.raises(ValueError):
            pascal4.memcpy_p2p(b, a)

    def test_p2p_link_lookup_symmetric(self, pascal4):
        assert pascal4.p2p_link(0, 3) is pascal4.p2p_link(3, 0)
        with pytest.raises(ValueError):
            pascal4.p2p_link(1, 1)

    def test_h2d_uplink_sharing_dual_socket(self, pascal4):
        """The Table 2 platforms are dual-socket: GPUs 0/2 share one
        root-complex uplink, GPUs 1/3 the other. Transfers on distinct
        uplinks overlap; transfers on the same uplink serialize."""
        bufs = [DeviceArray(g, (10_000_000,), np.float32) for g in pascal4.gpus]
        src = np.zeros(10_000_000, dtype=np.float32)
        spans = [pascal4.memcpy_h2d(b, src) for b in bufs]
        # GPU 0 and GPU 2: different sockets -> same start.
        assert spans[2][0] == pytest.approx(spans[0][0])
        # GPU 1 shares GPU 0's uplink -> starts after GPU 0 finishes.
        assert spans[1][0] >= spans[0][1]
        assert pascal4.pcie[0] is pascal4.pcie[1]
        assert pascal4.pcie[2] is pascal4.pcie[3]

    def test_p2p_topology_rates(self, pascal4):
        """Same-socket P2P runs at switch speed; cross-socket P2P at the
        slower bridge rate."""
        local = pascal4.p2p_link(0, 1)
        cross = pascal4.p2p_link(0, 2)
        assert local.bandwidth_gbps > cross.bandwidth_gbps


class TestHostCompute:
    def test_advances_host_clock(self, pascal1):
        before = pascal1.host_time
        result = pascal1.host_compute(
            lambda: 42, KernelCost(bytes_read=47.6e9), label="add"
        )
        assert result == 42
        assert pascal1.host_time > before

    def test_gpu_work_after_host_work_starts_later(self, pascal1):
        pascal1.host_compute(lambda: None, KernelCost(bytes_read=47.6e9))
        s = pascal1.gpus[0].default_stream
        start, _, _ = KernelLaunch(
            lambda: None, KernelCost(bytes_read=1.0), "k"
        ).launch(s)
        assert start >= pascal1.host_time - 1e-12


class TestResetClock:
    def test_reset_preserves_memory(self, pascal1):
        gpu = pascal1.gpus[0]
        buf = DeviceArray(gpu, (10,), np.int32, fill=7)
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e9), "k").launch(
            gpu.default_stream
        )
        pascal1.synchronize()
        pascal1.reset_clock()
        assert pascal1.host_time == 0.0
        assert gpu.default_stream.available_at == 0.0
        assert len(pascal1.trace) == 0
        assert np.all(buf.data == 7)
