"""Tests for the performance observatory: scenario registry,
measurement semantics, snapshots, the comparator/regression gate, and
the `repro-lda bench` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    REGISTRY,
    BenchRegistry,
    Measurement,
    compare_snapshots,
    format_deltas,
    format_snapshot,
    gate,
    load_snapshot,
    machine_fingerprint,
    params_digest,
    repeated_median,
    write_snapshot,
)
from repro.obs.snapshot import SNAPSHOT_SCHEMA


# ----------------------------------------------------------------------
# Measurement + digest
# ----------------------------------------------------------------------
class TestMeasurement:
    def test_validates_kind_and_direction(self):
        with pytest.raises(ValueError, match="kind"):
            Measurement(1.0, kind="approximate")
        with pytest.raises(ValueError, match="direction"):
            Measurement(1.0, direction="sideways")

    def test_iqr_only_serialized_for_wall(self):
        exact = Measurement(1.0, unit="s", kind="exact")
        wall = Measurement(1.0, unit="s", kind="wall", iqr=0.1)
        assert "iqr" not in exact.as_dict()
        assert wall.as_dict()["iqr"] == 0.1

    def test_round_trip(self):
        m = Measurement(3.5, unit="tokens/s", kind="wall",
                        direction="higher", iqr=0.2)
        assert Measurement.from_dict(m.as_dict()) == m


class TestParamsDigest:
    def test_key_order_does_not_matter(self):
        assert params_digest({"a": 1, "b": 2}) == params_digest(
            {"b": 2, "a": 1}
        )

    def test_value_changes_the_digest(self):
        assert params_digest({"tokens": 20_000}) != params_digest(
            {"tokens": 20_001}
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestBenchRegistry:
    def make(self):
        reg = BenchRegistry()

        @reg.scenario("g/quick_one", group="g", description="d",
                      tier="quick", tokens=10)
        def _q():
            return {"x": Measurement(1.0)}

        @reg.scenario("g/full_one", group="g", description="d",
                      tier="full", tokens=20)
        def _f():
            return {"x": Measurement(1.0)}

        return reg

    def test_quick_tier_subsets_full(self):
        reg = self.make()
        assert [s.name for s in reg.select("quick")] == ["g/quick_one"]
        assert [s.name for s in reg.select("full")] == [
            "g/full_one", "g/quick_one",
        ]

    def test_only_substring_filter(self):
        reg = self.make()
        assert [s.name for s in reg.select("full", "full")] == ["g/full_one"]

    def test_duplicate_name_rejected(self):
        reg = self.make()
        with pytest.raises(ValueError, match="already registered"):
            reg.scenario("g/quick_one", group="g", description="d")(
                lambda: {}
            )

    def test_run_type_checks_measurements(self):
        reg = BenchRegistry()

        @reg.scenario("g/bad", group="g", description="d")
        def _bad():
            return {"x": 1.0}

        with pytest.raises(TypeError, match="Measurement"):
            reg.get("g/bad").run()

    def test_curated_suite_registers(self):
        import repro.obs.scenarios  # noqa: F401

        names = REGISTRY.names()
        assert "train/culda_pascal_1gpu" in names
        assert "serve/chaos_hedge_pascal_4gpu" in names
        assert "kernel/gibbs_sample_chunk" in names
        assert "sync/culda_pascal_4gpu_tree" in names
        # The CI tier is a strict subset.
        quick = {s.name for s in REGISTRY.select("quick")}
        full = {s.name for s in REGISTRY.select("full")}
        assert quick < full


class TestRepeatedMedian:
    def test_orders_and_counts(self):
        t = repeated_median(lambda: sum(range(500)), rounds=5)
        assert t.rounds == 5
        assert t.min <= t.median <= t.max
        assert t.iqr >= 0.0


# ----------------------------------------------------------------------
# Comparator / gate
# ----------------------------------------------------------------------
def snap(metrics, digest="abc", fingerprint="m1", name="train/x"):
    return {
        "schema": SNAPSHOT_SCHEMA,
        "git_sha": "deadbeef",
        "tier": "quick",
        "machine": {"fingerprint": fingerprint},
        "scenarios": {
            name: {
                "group": "train", "description": "d", "digest": digest,
                "params": {}, "metrics": metrics,
            }
        },
    }


def exact(value, direction="higher"):
    return Measurement(value, kind="exact", direction=direction).as_dict()


def wall(value, iqr=0.0):
    return Measurement(value, kind="wall", direction="lower",
                       iqr=iqr).as_dict()


class TestCompare:
    def test_identical_snapshots_are_clean(self):
        a = snap({"tps": exact(100.0), "t": wall(0.5)})
        deltas = compare_snapshots(a, a)
        assert {d.verdict for d in deltas} == {"ok"}
        assert gate(deltas) == []

    def test_exact_change_in_gated_direction_regresses(self):
        old = snap({"tps": exact(100.0)})
        new = snap({"tps": exact(90.0)})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "regressed"
        assert gate([d]) == [d]

    def test_exact_improvement_is_flagged_not_gated(self):
        old = snap({"tps": exact(100.0)})
        new = snap({"tps": exact(110.0)})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "improved"
        assert gate([d]) == []

    def test_info_direction_drifts_instead_of_gating(self):
        old = snap({"ll": exact(-7.5, direction="info")})
        new = snap({"ll": exact(-7.6, direction="info")})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "drift"
        assert gate([d]) == []

    def test_tiny_float_noise_is_ok(self):
        old = snap({"tps": exact(100.0)})
        new = snap({"tps": exact(100.0 * (1 + 1e-12))})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "ok"

    def test_wall_within_iqr_tolerance_is_ok(self):
        old = snap({"t": wall(0.100, iqr=0.020)})
        new = snap({"t": wall(0.150, iqr=0.020)})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "ok"  # 0.05 < 3 * 0.02

    def test_wall_beyond_tolerance_regresses(self):
        old = snap({"t": wall(0.100, iqr=0.001)})
        new = snap({"t": wall(0.200, iqr=0.001)})
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "regressed"

    def test_wall_skipped_across_machines(self):
        old = snap({"t": wall(0.1)}, fingerprint="m1")
        new = snap({"t": wall(10.0)}, fingerprint="m2")
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "skipped"
        assert gate([d]) == []

    def test_exact_still_gated_across_machines(self):
        old = snap({"tps": exact(100.0)}, fingerprint="m1")
        new = snap({"tps": exact(90.0)}, fingerprint="m2")
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "regressed"

    def test_digest_mismatch_skips_the_scenario(self):
        old = snap({"tps": exact(100.0)}, digest="abc")
        new = snap({"tps": exact(50.0)}, digest="xyz")
        (d,) = compare_snapshots(old, new)
        assert d.verdict == "skipped"
        assert "workload" in d.note

    def test_format_names_the_regressed_scenario(self):
        old = snap({"tps": exact(100.0)})
        new = snap({"tps": exact(90.0)})
        text = format_deltas(compare_snapshots(old, new))
        assert "train/x" in text
        assert "GATE: 1 regression(s)" in text

    def test_clean_gate_message(self):
        a = snap({"tps": exact(100.0)})
        text = format_deltas(compare_snapshots(a, a))
        assert "no regressions" in text


# ----------------------------------------------------------------------
# Snapshot IO
# ----------------------------------------------------------------------
class TestSnapshotIO:
    def test_write_load_round_trip(self, tmp_path):
        doc = snap({"tps": exact(100.0)})
        path = tmp_path / "BENCH_t.json"
        write_snapshot(doc, path)
        assert load_snapshot(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/1", "scenarios": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_fingerprint_is_stable_within_a_process(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_format_snapshot_lists_metrics(self):
        text = format_snapshot(snap({"tps": exact(100.0)}))
        assert "train/x" in text
        assert "tps" in text


# ----------------------------------------------------------------------
# CLI (`repro-lda bench`)
# ----------------------------------------------------------------------
class TestBenchCLI:
    def test_list_names_scenarios(self, capsys):
        assert main(["bench", "--list", "--tier", "full"]) == 0
        out = capsys.readouterr().out
        assert "train/culda_pascal_1gpu" in out
        assert "kernel/alias_build" in out

    def test_empty_selection_fails(self, capsys):
        assert main(["bench", "--only", "no-such-scenario"]) == 2

    @pytest.fixture(scope="class")
    def snapshot_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_t.json"
        assert main([
            "bench", "--only", "kernel/accumulate_phi", "--out", str(path),
        ]) == 0
        return path

    def test_out_writes_a_valid_snapshot(self, snapshot_file):
        doc = load_snapshot(snapshot_file)
        assert doc["tier"] == "quick"
        entry = doc["scenarios"]["kernel/accumulate_phi"]
        assert entry["metrics"]["wall_seconds"]["kind"] == "wall"

    def test_compare_clean_against_self_like_baseline(
        self, snapshot_file, capsys
    ):
        assert main([
            "bench", "--only", "kernel/accumulate_phi",
            "--compare", str(snapshot_file),
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_gates_on_perturbed_baseline(
        self, snapshot_file, tmp_path, capsys
    ):
        doc = load_snapshot(snapshot_file)
        metric = doc["scenarios"]["kernel/accumulate_phi"]["metrics"][
            "wall_seconds"
        ]
        metric["value"] /= 1000.0  # baseline "was" 1000x faster
        metric["iqr"] = 0.0
        perturbed = tmp_path / "BENCH_perturbed.json"
        write_snapshot(doc, perturbed)
        assert main([
            "bench", "--only", "kernel/accumulate_phi",
            "--compare", str(perturbed),
        ]) == 1
        out = capsys.readouterr().out
        assert "kernel/accumulate_phi" in out
        assert "regressed" in out
