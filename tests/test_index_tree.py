"""Tests for the R-way index tree (tree-based sampling, paper Fig 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index_tree import IndexTree


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndexTree(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IndexTree(np.array([1.0, -0.1]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            IndexTree(np.array([1.0, np.nan]))

    def test_rejects_fanout_one(self):
        with pytest.raises(ValueError):
            IndexTree(np.array([1.0]), fanout=1)

    def test_total_mass(self):
        t = IndexTree(np.array([0.1, 0.2, 0.3]))
        assert t.total == pytest.approx(0.6)

    def test_depth_log_fanout(self):
        # 1000 leaves at fanout 32: levels 1000 -> 32 -> 1 => depth 3.
        t = IndexTree(np.ones(1000), fanout=32)
        assert t.depth == 3
        # Fanout 2 over 8 leaves: 8 -> 4 -> 2 -> 1 => depth 4.
        t2 = IndexTree(np.ones(8), fanout=2)
        assert t2.depth == 4

    def test_single_leaf(self):
        t = IndexTree(np.array([5.0]))
        assert t.sample(0.0) == 0
        assert t.sample(4.999) == 0

    def test_internal_nbytes_small(self):
        # The paper's point: internal levels are ~K/31 entries at R=32.
        t = IndexTree(np.ones(10_000), fanout=32)
        assert t.internal_nbytes(4) < 10_000 * 4 / 20


class TestSearchCorrectness:
    def test_fig5_example(self):
        """The paper's Fig 5: p = [.01 .02 .03 .02 .04 .06 .01 .01],
        u = 0.15 must land at index 5 (prefix sums .01 .03 .06 .08 .12
        .18 ...; first exceeding 0.15 is 0.18 at index 5)."""
        p = np.array([0.01, 0.02, 0.03, 0.02, 0.04, 0.06, 0.01, 0.01])
        t = IndexTree(p, fanout=2)
        assert t.sample(0.15) == 5

    @pytest.mark.parametrize("fanout", [2, 3, 8, 32])
    def test_matches_searchsorted(self, fanout, rng):
        p = rng.random(257)
        t = IndexTree(p, fanout=fanout)
        cdf = np.cumsum(p)
        us = rng.random(500) * cdf[-1]
        expected = np.searchsorted(cdf, us, side="right")
        got = t.sample_many(us)
        assert np.array_equal(got, np.minimum(expected, p.size - 1))

    def test_zero_weight_leaves_skipped(self):
        p = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        t = IndexTree(p, fanout=2)
        samples = t.sample_many(np.linspace(0, 2.9999, 100))
        assert set(np.unique(samples)) <= {1, 3}

    def test_boundary_u_equal_total_clamped(self):
        p = np.array([1.0, 1.0])
        t = IndexTree(p)
        # u == total (can occur through float round-off upstream).
        assert t.sample(2.0) == 1

    def test_prefix_sum_matches_numpy(self, rng):
        p = rng.random(100)
        t = IndexTree(p)
        assert np.allclose(t.prefix_sum(), np.cumsum(p))

    def test_sampling_distribution_chi_square(self, rng):
        """Sampling u ~ U(0, total) through the tree must reproduce the
        weight distribution."""
        from scipy.stats import chisquare

        p = np.array([0.1, 0.4, 0.2, 0.3])
        t = IndexTree(p, fanout=2)
        n = 20_000
        us = rng.random(n) * t.total
        samples = t.sample_many(us)
        observed = np.bincount(samples, minlength=4)
        _, pvalue = chisquare(observed, p / p.sum() * n)
        assert pvalue > 1e-4


class TestSearchProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ).filter(lambda w: sum(w) > 1e-9),
        fanout=st.sampled_from([2, 4, 32]),
        u_frac=st.floats(min_value=0.0, max_value=0.999999),
    )
    @settings(max_examples=200, deadline=None)
    def test_sample_satisfies_cdf_bracket(self, weights, fanout, u_frac):
        """For any valid target u, the returned index k satisfies
        cdf[k-1] <= u < cdf[k] (up to float tolerance) and w[k] > 0."""
        w = np.asarray(weights)
        t = IndexTree(w, fanout=fanout)
        u = u_frac * t.total
        k = t.sample(u)
        cdf = np.cumsum(w)
        tol = 1e-9 * max(1.0, cdf[-1])
        assert 0 <= k < w.size
        assert w[k] > 0
        assert cdf[k] >= u - tol
        if k > 0:
            assert cdf[k - 1] <= u + tol

    @given(
        n=st.integers(min_value=1, max_value=300),
        fanout=st.sampled_from([2, 32]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_tree_total_equals_sum(self, n, fanout, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(n)
        t = IndexTree(w, fanout=fanout)
        assert t.total == pytest.approx(w.sum(), rel=1e-12)

    @given(
        n=st.integers(min_value=2, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_fanouts_agree(self, n, seed):
        """Any two fanouts must return the same index for the same u."""
        rng = np.random.default_rng(seed)
        w = rng.random(n)
        us = rng.random(20) * w.sum() * 0.999999
        a = IndexTree(w, fanout=2).sample_many(us)
        b = IndexTree(w, fanout=32).sample_many(us)
        assert np.array_equal(a, b)
