"""Serving chaos harness: the acceptance scenario and the checker itself.

The headline test runs four replicas under the default chaos plan —
a replica death, a PCIe flap, a bounded link outage, and a kernel
fault — and asserts the serving contract holds: every accepted request
completes exactly once or is rejected with a structured reason,
payloads stay bit-identical to direct ``infer_documents`` calls, the
simulated clock is monotone, and tail latency stays within a stated
bound of the fault-free 3-replica baseline (the capacity actually left
after the kill).

The second half tests the checker: a verifier that cannot catch a
doctored report verifies nothing.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.serialization import load_model
from repro.faults import FaultPlan, FaultSpec
from repro.gpusim.platform import make_machine
from repro.serve import (
    InferenceService,
    ServiceConfig,
    default_chaos_plan,
    poisson_trace,
    verify_report,
)

ITERATIONS = 3

#: Chaos p99 may exceed the fault-free (G-1)-replica baseline's p99 by
#: at most this factor (documented in docs/SERVING.md).
P99_BOUND = 3.0


def config(**overrides):
    kwargs = dict(max_batch_size=4, max_wait_seconds=1e-3, max_queue=512,
                  iterations=ITERATIONS)
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def run(trace, gpus, fault_plan=None, **overrides):
    service = InferenceService(
        make_machine("pascal", gpus), config(**overrides),
        fault_plan=fault_plan,
    )
    return service.run_trace(trace)


@pytest.fixture(scope="module")
def model_info(serve_checkpoints):
    ckpt = load_model(serve_checkpoints[0])
    return serve_checkpoints[0], int(ckpt.phi.shape[1])


@pytest.fixture(scope="module")
def trace(model_info):
    path, num_words = model_info
    return poisson_trace([path], num_words, rate=4000, duration=0.03,
                         seed=41)


@pytest.fixture(scope="module")
def chaos_report(trace):
    return run(trace, gpus=4, fault_plan=default_chaos_plan(4))


class TestChaosScenario:
    def test_faults_actually_fired(self, chaos_report):
        kinds = {e["kind"] for e in chaos_report.fault_events}
        assert {"device_failure", "link_flaky", "link_down"} <= kinds
        assert chaos_report.failovers > 0

    def test_replica_death_is_terminal(self, chaos_report):
        assert chaos_report.health_states[3] == "dead"
        served_after = {r.replica for r in chaos_report.results
                        if r.replica is not None and r.batch_id > 2}
        assert 3 not in served_after

    def test_all_invariants_hold(self, chaos_report, trace):
        """Exactly-once, conservation, structured reasons, monotone
        clock, and payload bit-identity — the whole contract."""
        assert verify_report(chaos_report, trace,
                             default_iterations=ITERATIONS) == []

    def test_every_request_terminal(self, chaos_report, trace):
        assert chaos_report.submitted == len(trace)
        for result in chaos_report.results:
            assert result.status in (
                "completed", "rejected", "deadline_exceeded", "failed"
            )
            if result.status != "completed":
                assert result.error

    def test_p99_bounded_by_degraded_baseline(self, chaos_report, trace):
        """Chaos with 4 replicas (one killed) stays within P99_BOUND of
        a fault-free 3-replica run."""
        baseline = run(trace, gpus=3)
        assert baseline.count("completed") == baseline.submitted
        chaos_p99 = chaos_report.latency_quantile(0.99)
        base_p99 = baseline.latency_quantile(0.99)
        assert chaos_p99 <= P99_BOUND * base_p99, (
            f"chaos p99 {chaos_p99:.6f}s vs baseline {base_p99:.6f}s"
        )

    def test_deterministic_replay(self, trace):
        a = run(trace, gpus=4, fault_plan=default_chaos_plan(4))
        b = run(trace, gpus=4, fault_plan=default_chaos_plan(4))
        assert [(r.status, r.replica, r.completion_time)
                for r in a.results] == [
            (r.status, r.replica, r.completion_time) for r in b.results
        ]

    def test_default_plan_needs_two_gpus(self):
        with pytest.raises(ValueError, match="2 GPUs"):
            default_chaos_plan(1)


class TestChaosWithSpareAndHedging(object):
    def test_full_resilience_stack_under_chaos(self, model_info):
        """Warm spare + hedging + chaos plan, all at once: the
        contract still holds and the spare takes over for the corpse."""
        from repro.serve import HedgePolicy

        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=4000, duration=0.03,
                              seed=43)
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=2, device=2),
            FaultSpec(kind="link_flaky", iteration=4, link="pcie[0]",
                      count=2),
        ))
        service = InferenceService(
            make_machine("pascal", 4),
            config(warm_spares=1,
                   hedge=HedgePolicy(quantile=0.7, min_observations=8)),
            fault_plan=plan,
        )
        report = service.run_trace(trace)
        assert report.respawns == 1
        assert verify_report(report, trace,
                             default_iterations=ITERATIONS) == []


# ----------------------------------------------------------------------
# The checker must catch doctored reports
# ----------------------------------------------------------------------
class TestVerifierCatchesTampering:
    @pytest.fixture()
    def clean(self, model_info):
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=2000, duration=0.01,
                              seed=47)
        report = run(trace, gpus=2)
        assert verify_report(report, trace,
                             default_iterations=ITERATIONS) == []
        return report, trace

    def test_duplicate_result_detected(self, clean):
        report, trace = clean
        report = copy.copy(report)
        report.results = report.results + [report.results[0]]
        violations = verify_report(report, trace, check_payloads=False,
                                   default_iterations=ITERATIONS)
        assert any("more than once" in v for v in violations)

    def test_lost_request_detected(self, clean):
        report, trace = clean
        report = copy.copy(report)
        report.results = report.results[1:]
        violations = verify_report(report, trace, check_payloads=False,
                                   default_iterations=ITERATIONS)
        assert any("lost" in v for v in violations)

    def test_counter_mismatch_detected(self, clean):
        report, trace = clean
        report.registry.counter("serve_requests_total",
                                labelnames=("status",)).inc(status="completed")
        violations = verify_report(report, trace, check_payloads=False,
                                   default_iterations=ITERATIONS)
        assert any("serve_requests_total" in v for v in violations)

    def test_tampered_payload_detected(self, clean):
        report, trace = clean
        victim = next(r for r in report.results if r.status == "completed")
        victim.doc_topic = victim.doc_topic + 1e-9
        violations = verify_report(report, trace,
                                   default_iterations=ITERATIONS)
        assert any("differs from" in v for v in violations)

    def test_unstructured_failure_detected(self, clean):
        report, trace = clean
        victim = report.results[0]
        victim.status = "failed"
        victim.error = None
        violations = verify_report(report, trace, check_payloads=False,
                                   default_iterations=ITERATIONS)
        assert any("without a structured reason" in v for v in violations)

    def test_time_travel_detected(self, clean):
        report, trace = clean
        victim = next(r for r in report.results if r.status == "completed")
        victim.completion_time = victim.dispatch_time - 1.0
        violations = verify_report(report, trace, check_payloads=False,
                                   default_iterations=ITERATIONS)
        assert any("before its dispatch" in v for v in violations)
