"""Tests for WorkSchedule1/2 machinery (paper Alg 1, §5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import KernelConfig
from repro.core.model import LDAHyperParams, SparseTheta
from repro.corpus.corpus import TokenChunk
from repro.gpusim.platform import pascal_platform
from repro.sched.schedule import (
    ChunkRuntime,
    GpuWorker,
    download_chunk,
    enqueue_chunk_compute,
    run_iteration_resident,
    run_iteration_streaming,
    upload_chunk,
)


def _make_runtime(corpus, chunk_id, lo, hi, K, seed=0):
    chunk = TokenChunk.from_corpus_range(corpus, lo, hi)
    rng = np.random.default_rng(seed)
    topics = rng.integers(0, K, chunk.num_tokens).astype(np.uint16)
    theta = SparseTheta.from_assignments(chunk, topics, K)
    return ChunkRuntime(chunk_id, chunk, topics, theta, rng)


def _init_phi(runtimes, K, V):
    from repro.core.kernels import accumulate_phi

    phi = np.zeros((K, V), dtype=np.int64)
    for r in runtimes:
        phi += accumulate_phi(r.chunk, r.topics, K)
    return phi


def _setup(machine, corpus, K=8, num_chunks=None):
    from repro.sched.partition import partition_by_tokens

    G = len(machine.gpus)
    C = num_chunks or G
    hyper = LDAHyperParams(num_topics=K)
    cfg = KernelConfig()
    ranges = partition_by_tokens(corpus, C)
    runtimes = [
        _make_runtime(corpus, i, lo, hi, K, seed=i) for i, (lo, hi) in enumerate(ranges)
    ]
    workers = [GpuWorker(d, K, corpus.num_words, cfg) for d in machine.gpus]
    phi = _init_phi(runtimes, K, corpus.num_words)
    for w in workers:
        w.phi_full.data[...] = phi.astype(w.phi_full.dtype)
        w.n_k.data[...] = phi.sum(axis=1)
    return hyper, cfg, runtimes, workers


class TestChunkMovement:
    def test_upload_roundtrip(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        dc = upload_chunk(pascal1, workers[0], runtimes[0])
        assert np.array_equal(dc.token_doc.data, runtimes[0].chunk.token_doc)
        assert np.array_equal(dc.topics.data, runtimes[0].topics)
        download_chunk(pascal1, workers[0], runtimes[0], dc)
        assert dc.topics.freed

    def test_upload_charges_memory(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        before = pascal1.gpus[0].allocator.bytes_in_use
        dc = upload_chunk(pascal1, workers[0], runtimes[0])
        assert pascal1.gpus[0].allocator.bytes_in_use > before
        dc.free_all()
        assert pascal1.gpus[0].allocator.bytes_in_use == before

    def test_upload_takes_simulated_time(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        upload_chunk(pascal1, workers[0], runtimes[0])
        assert pascal1.synchronize() > 0


class TestChunkCompute:
    def test_updates_all_state(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        cr = runtimes[0]
        dc = upload_chunk(pascal1, workers[0], cr)
        theta_before = cr.theta
        enqueue_chunk_compute(pascal1, workers[0], cr, dc, hyper, cfg)
        pascal1.synchronize()
        # φ partial recounted from the new assignments.
        assert workers[0].phi_partial.data.sum() == cr.chunk.num_tokens
        # θ replaced and consistent with the new topics.
        assert cr.theta is not theta_before
        recount = SparseTheta.from_assignments(
            cr.chunk, cr.topics, hyper.num_topics
        )
        assert recount == cr.theta
        # Device θ mirrors the host θ.
        assert np.array_equal(dc.theta_data.data, cr.theta.data)

    def test_stats_recorded(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        cr = runtimes[0]
        dc = upload_chunk(pascal1, workers[0], cr)
        enqueue_chunk_compute(pascal1, workers[0], cr, dc, hyper, cfg)
        assert cr.last_stats is not None
        assert cr.last_stats.num_tokens == cr.chunk.num_tokens

    def test_phi_ready_event_precedes_theta_update(self, medium_corpus, pascal1):
        """§6.2 ordering: the sync can start before update-θ finishes."""
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus)
        cr = runtimes[0]
        dc = upload_chunk(pascal1, workers[0], cr)
        evt = enqueue_chunk_compute(pascal1, workers[0], cr, dc, hyper, cfg)
        assert evt.time < workers[0].compute.available_at

    def test_accumulate_mode_adds(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(
            pascal1, medium_corpus, num_chunks=2
        )
        w = workers[0]
        dc0 = upload_chunk(pascal1, w, runtimes[0])
        enqueue_chunk_compute(pascal1, w, runtimes[0], dc0, hyper, cfg)
        dc1 = upload_chunk(pascal1, w, runtimes[1])
        enqueue_chunk_compute(
            pascal1, w, runtimes[1], dc1, hyper, cfg, accumulate=True
        )
        pascal1.synchronize()
        assert w.phi_partial.data.sum() == medium_corpus.num_tokens


class TestIterations:
    def test_resident_iteration_preserves_totals(self, medium_corpus, pascal4):
        hyper, cfg, runtimes, workers = _setup(pascal4, medium_corpus)
        dev_chunks = [
            upload_chunk(pascal4, workers[g], runtimes[g]) for g in range(4)
        ]
        run_iteration_resident(
            pascal4, workers, runtimes, dev_chunks, hyper, cfg
        )
        pascal4.synchronize()
        # Every GPU's full φ equals the global recount.
        expected = _init_phi(runtimes, hyper.num_topics, medium_corpus.num_words)
        for w in workers:
            assert np.array_equal(w.phi_full.data.astype(np.int64), expected)
            assert np.array_equal(w.n_k.data, expected.sum(axis=1))

    def test_resident_requires_one_chunk_per_gpu(self, medium_corpus, pascal4):
        hyper, cfg, runtimes, workers = _setup(pascal4, medium_corpus, num_chunks=2)
        with pytest.raises(ValueError):
            run_iteration_resident(pascal4, workers, runtimes, [], hyper, cfg)

    def test_streaming_iteration_preserves_totals(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus, num_chunks=3)
        run_iteration_streaming(
            pascal1, workers, runtimes, hyper, cfg, chunks_per_gpu=3
        )
        pascal1.synchronize()
        expected = _init_phi(runtimes, hyper.num_topics, medium_corpus.num_words)
        assert np.array_equal(
            workers[0].phi_full.data.astype(np.int64), expected
        )

    def test_streaming_frees_chunks(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus, num_chunks=3)
        before = pascal1.gpus[0].allocator.bytes_in_use
        run_iteration_streaming(
            pascal1, workers, runtimes, hyper, cfg, chunks_per_gpu=3
        )
        pascal1.synchronize()
        assert pascal1.gpus[0].allocator.bytes_in_use == before

    def test_streaming_overlap_hides_transfers(self, medium_corpus):
        """WorkSchedule2's point: with overlap on, h2d transfers and
        sampling kernels coexist on the timeline; with overlap off, the
        iteration takes at least as long."""
        m_overlap = pascal_platform(1)
        hyper, cfg, runtimes, workers = _setup(m_overlap, medium_corpus, num_chunks=4)
        run_iteration_streaming(
            m_overlap, workers, runtimes, hyper, cfg, chunks_per_gpu=4,
            overlap=True,
        )
        t_overlap = m_overlap.synchronize()
        overlap_secs = m_overlap.trace.overlap_seconds("h2d", "sampling")

        m_serial = pascal_platform(1)
        hyper, cfg, runtimes, workers = _setup(m_serial, medium_corpus, num_chunks=4)
        run_iteration_streaming(
            m_serial, workers, runtimes, hyper, cfg, chunks_per_gpu=4,
            overlap=False,
        )
        t_serial = m_serial.synchronize()
        assert overlap_secs > 0, "pipelined transfers must overlap compute"
        assert t_overlap < t_serial

    def test_streaming_wrong_m_rejected(self, medium_corpus, pascal1):
        hyper, cfg, runtimes, workers = _setup(pascal1, medium_corpus, num_chunks=3)
        with pytest.raises(ValueError):
            run_iteration_streaming(
                pascal1, workers, runtimes, hyper, cfg, chunks_per_gpu=2
            )

    def test_multi_gpu_iteration_faster(self, medium_corpus):
        """2 GPUs must beat 1 GPU on the same resident workload."""
        m1 = pascal_platform(1)
        hyper, cfg, rts1, w1 = _setup(m1, medium_corpus, num_chunks=2)
        run_iteration_streaming(m1, w1, rts1, hyper, cfg, chunks_per_gpu=2)
        t1 = m1.synchronize()

        m2 = pascal_platform(2)
        hyper, cfg, rts2, w2 = _setup(m2, medium_corpus, num_chunks=2)
        dcs = [upload_chunk(m2, w2[g], rts2[g]) for g in range(2)]
        m2.reset_clock()
        run_iteration_resident(m2, w2, rts2, dcs, hyper, cfg)
        t2 = m2.synchronize()
        assert t2 < t1
