"""Tests for the incremental corpus builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.builder import CorpusBuilder


class TestStringMode:
    def test_interns_and_builds(self):
        b = CorpusBuilder(name="news")
        d0 = b.add_document(["cat", "sat", "cat"])
        d1 = b.add_document(["dog", "sat"])
        assert (d0, d1) == (0, 1)
        corpus = b.build()
        assert corpus.num_docs == 2
        assert corpus.num_tokens == 5
        assert corpus.num_words == 3
        assert corpus.vocabulary.word_of(0) == "cat"
        assert corpus.document(0).tolist() == [0, 1, 0]

    def test_shared_words_share_ids(self):
        b = CorpusBuilder()
        b.add_document(["a", "b"])
        b.add_document(["b", "c"])
        corpus = b.build()
        assert corpus.document(0)[1] == corpus.document(1)[0]


class TestIdMode:
    def test_builds_from_ids(self):
        b = CorpusBuilder()
        b.add_document_ids([0, 2, 2])
        b.add_document_ids([1])
        corpus = b.build()
        assert corpus.num_words == 3
        assert corpus.vocabulary is None

    def test_explicit_num_words(self):
        b = CorpusBuilder()
        b.add_document_ids([0, 1])
        corpus = b.build(num_words=10)
        assert corpus.num_words == 10

    def test_num_words_must_cover_ids(self):
        b = CorpusBuilder()
        b.add_document_ids([0, 7])
        with pytest.raises(ValueError, match="cover"):
            b.build(num_words=5)

    def test_negative_id_rejected(self):
        b = CorpusBuilder()
        with pytest.raises(ValueError):
            b.add_document_ids([-1])


class TestGrowth:
    def test_buffer_growth_many_docs(self):
        b = CorpusBuilder()
        rng = np.random.default_rng(0)
        expected_tokens = 0
        for _ in range(200):
            n = int(rng.integers(1, 60))
            b.add_document_ids(rng.integers(0, 50, n).tolist())
            expected_tokens += n
        corpus = b.build()
        assert corpus.num_tokens == expected_tokens
        assert corpus.num_docs == 200

    def test_empty_document_allowed(self):
        b = CorpusBuilder()
        b.add_document([])
        b.add_document(["x"])
        corpus = b.build()
        assert corpus.doc_lengths.tolist() == [0, 1]

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            CorpusBuilder().build()

    def test_built_corpus_trains(self):
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import pascal_platform

        rng = np.random.default_rng(1)
        b = CorpusBuilder()
        for _ in range(40):
            b.add_document_ids(rng.integers(0, 30, 25).tolist())
        corpus = b.build()
        r = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=4, iterations=2, seed=0)).train()
        assert r.phi.sum() == corpus.num_tokens


class TestModeExclusivity:
    def test_cannot_mix_ids_into_string_mode(self):
        b = CorpusBuilder()
        b.add_document(["a"])
        with pytest.raises(ValueError, match="mix"):
            b.add_document_ids([0])

    def test_cannot_mix_strings_into_id_mode(self):
        b = CorpusBuilder()
        b.add_document_ids([0])
        with pytest.raises(ValueError, match="mix"):
            b.add_document(["a"])
