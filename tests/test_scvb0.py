"""Tests for the SCVB0 variational baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scvb0 import SCVB0
from repro.core.model import LDAHyperParams


class TestSCVB0:
    def test_validation(self, small_corpus, hyper8):
        with pytest.raises(ValueError):
            SCVB0(small_corpus, hyper8, kappa=0.4)
        with pytest.raises(ValueError):
            SCVB0(small_corpus, hyper8, tau=0)
        with pytest.raises(ValueError):
            SCVB0(small_corpus, hyper8, doc_burn_in=-1)

    def test_expected_counts_conserved(self, small_corpus, hyper8):
        """Expected counts keep the right totals: Σ n_θ[d] = L_d and the
        global mass stays ≈ T (stochastic updates preserve scale)."""
        s = SCVB0(small_corpus, hyper8, seed=0)
        s.iterate(3)
        assert np.allclose(
            s.n_theta.sum(axis=1), small_corpus.doc_lengths, rtol=1e-6
        )
        assert s.n_phi.sum() == pytest.approx(
            small_corpus.num_tokens, rel=0.35
        )
        assert np.all(s.n_phi >= 0)
        assert np.all(s.n_theta >= 0)

    def test_likelihood_improves(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=16)
        s = SCVB0(medium_corpus, hyper, seed=0)
        ll0 = s.log_likelihood_per_token()
        s.iterate(5)
        assert s.log_likelihood_per_token() > ll0 + 0.1

    def test_deterministic(self, small_corpus, hyper8):
        a = SCVB0(small_corpus, hyper8, seed=4)
        a.iterate(2)
        b = SCVB0(small_corpus, hyper8, seed=4)
        b.iterate(2)
        assert np.allclose(a.n_phi, b.n_phi)

    def test_train_records_history(self, small_corpus, hyper8):
        r = SCVB0(small_corpus, hyper8, seed=0).train(
            iterations=4, likelihood_every=2
        )
        assert len(r.iterations) == 4
        assert r.iterations[1].log_likelihood_per_token is not None
        assert r.final_log_likelihood is not None
        assert r.n_phi.shape == (8, small_corpus.num_words)

    def test_comparable_quality_to_cgs(self, medium_corpus):
        """Fig 8-style comparison point: after a handful of passes SCVB0
        reaches a predictive score in the same range as the CGS trainer's
        (same metric computed on the CGS model)."""
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import pascal_platform

        hyper = LDAHyperParams(num_topics=16)
        scvb = SCVB0(medium_corpus, hyper, seed=0)
        scvb.iterate(8)
        ll_scvb = scvb.log_likelihood_per_token()

        result = CuLDA(medium_corpus, pascal_platform(1),
                       TrainConfig(num_topics=16, iterations=20, seed=0)).train()
        # Score the CGS model with the same predictive metric.
        from repro.core.inference import held_out_log_likelihood

        theta_dense = result.theta.to_dense().astype(np.float64)
        doc_topic = (theta_dense + hyper.alpha) / (
            theta_dense.sum(axis=1, keepdims=True) + hyper.num_topics * hyper.alpha
        )
        ll_cgs = held_out_log_likelihood(
            medium_corpus, doc_topic, result.phi.astype(np.int64),
            result.phi.sum(axis=1).astype(np.int64), hyper,
        )
        assert abs(ll_scvb - ll_cgs) < 1.0
