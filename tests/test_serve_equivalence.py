"""Bit-identity: serving == direct ``infer_documents``.

The serving path's core promise is that batching, replica placement,
and failover move only *simulated time*, never bits: each request's
payload is a pure function of ``(docs, φ, seed, iterations)``. These
tests pin that across batch compositions, replica counts, and fault
plans, against real format-v3 checkpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import infer_documents
from repro.core.serialization import load_model
from repro.corpus.corpus import Corpus
from repro.faults import FaultPlan
from repro.gpusim.platform import make_machine
from repro.serve import InferenceService, ServiceConfig, poisson_trace

ITERATIONS = 4


@pytest.fixture(scope="module")
def ckpt(serve_checkpoints):
    return load_model(serve_checkpoints[0])


@pytest.fixture(scope="module")
def trace(serve_checkpoints, ckpt):
    return poisson_trace(
        [serve_checkpoints[0]], int(ckpt.phi.shape[1]),
        rate=3000, duration=0.008, seed=21,
    )


def direct(request, ckpt):
    """What a standalone fold-in call returns for *request*."""
    corpus = Corpus.from_documents(
        request.docs, num_words=int(ckpt.phi.shape[1])
    )
    return infer_documents(
        corpus, ckpt.phi, ckpt.hyper, iterations=ITERATIONS,
        seed=request.seed,
    )


def serve(trace, gpus, fault_plan=None, max_batch_size=4):
    service = InferenceService(
        make_machine("pascal", gpus),
        ServiceConfig(max_batch_size=max_batch_size,
                      max_wait_seconds=1e-3, max_queue=4096,
                      iterations=ITERATIONS),
        fault_plan=fault_plan,
    )
    return service.run_trace(trace)


def assert_identical_payloads(report, trace, ckpt):
    assert report.count("completed") == len(trace)
    by_id = {r.request.request_id: r for r in report.results}
    for request in trace:
        want = direct(request, ckpt)
        got = by_id[request.request_id]
        assert np.array_equal(got.doc_topic, want.doc_topic)
        assert got.log_likelihood_per_token == want.log_likelihood_per_token


class TestServeEqualsDirect:
    def test_batch_size_one(self, trace, ckpt):
        """No batching at all: every request is its own kernel."""
        report = serve(trace, gpus=1, max_batch_size=1)
        assert_identical_payloads(report, trace, ckpt)

    def test_mixed_batches(self, trace, ckpt):
        """Wait-bound and size-bound batches mixed — composition must
        not leak into payloads."""
        report = serve(trace, gpus=1, max_batch_size=4)
        sizes = {
            r.batch_id: len([x for x in report.results
                             if x.batch_id == r.batch_id])
            for r in report.results
        }
        assert len(set(sizes.values())) > 1, "trace produced uniform batches"
        assert_identical_payloads(report, trace, ckpt)

    @pytest.mark.parametrize("gpus", [1, 2, 4])
    def test_replica_count_is_invisible(self, trace, ckpt, gpus):
        report = serve(trace, gpus=gpus)
        assert_identical_payloads(report, trace, ckpt)

    def test_batch_policies_agree_with_each_other(self, trace, ckpt):
        """Any two servings of the same trace agree bit-for-bit,
        whatever the batching/placement."""
        a = serve(trace, gpus=1, max_batch_size=1)
        b = serve(trace, gpus=4, max_batch_size=8)
        for ra, rb in zip(a.results, b.results):
            assert np.array_equal(ra.doc_topic, rb.doc_topic)

    def test_failover_preserves_bits(self, trace, ckpt):
        """A batch that faults and re-runs on another replica returns
        exactly the bytes the healthy run returns — only later."""
        plan = FaultPlan.from_dict({"faults": [
            {"kind": "kernel_fault", "iteration": 0, "device": 0,
             "op": "serve"},
            {"kind": "kernel_fault", "iteration": 2, "device": 1,
             "op": "serve"},
        ]})
        faulted = serve(trace, gpus=2, fault_plan=plan)
        assert faulted.failovers > 0
        assert_identical_payloads(faulted, trace, ckpt)

    def test_timings_differ_even_when_bits_do_not(self, trace, ckpt):
        """Sanity: the simulated clock *does* see the batching policy
        (otherwise the equivalence above would be vacuous)."""
        solo = serve(trace, gpus=1, max_batch_size=1)
        batched = serve(trace, gpus=1, max_batch_size=8)
        solo_t = [r.completion_time for r in solo.results]
        batched_t = [r.completion_time for r in batched.results]
        assert solo_t != batched_t
