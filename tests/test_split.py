"""Tests for train/test split utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.split import split_document_completion, split_documents


class TestSplitDocuments:
    def test_partitions_documents(self, medium_corpus):
        train, test = split_documents(medium_corpus, test_fraction=0.25, seed=0)
        assert train.num_docs + test.num_docs == medium_corpus.num_docs
        assert train.num_tokens + test.num_tokens == medium_corpus.num_tokens
        assert test.num_docs == round(medium_corpus.num_docs * 0.25)
        assert train.num_words == medium_corpus.num_words

    def test_deterministic(self, medium_corpus):
        a = split_documents(medium_corpus, 0.2, seed=3)
        b = split_documents(medium_corpus, 0.2, seed=3)
        assert np.array_equal(a[0].token_word, b[0].token_word)

    def test_seed_changes_split(self, medium_corpus):
        a, _ = split_documents(medium_corpus, 0.2, seed=1)
        b, _ = split_documents(medium_corpus, 0.2, seed=2)
        assert not np.array_equal(a.token_word, b.token_word)

    def test_validation(self, medium_corpus):
        with pytest.raises(ValueError):
            split_documents(medium_corpus, 0.0)
        with pytest.raises(ValueError):
            split_documents(medium_corpus, 1.0)


class TestDocumentCompletion:
    def test_same_documents_both_sides(self, medium_corpus):
        obs, held = split_document_completion(medium_corpus, 0.5, seed=0)
        assert obs.num_docs == held.num_docs == medium_corpus.num_docs
        assert obs.num_tokens + held.num_tokens == medium_corpus.num_tokens

    def test_per_document_token_multiset_preserved(self, medium_corpus):
        obs, held = split_document_completion(medium_corpus, 0.5, seed=0)
        for d in range(0, medium_corpus.num_docs, 17):
            combined = sorted(
                obs.document(d).tolist() + held.document(d).tolist()
            )
            assert combined == sorted(medium_corpus.document(d).tolist())

    def test_every_long_doc_has_both_sides(self, medium_corpus):
        obs, held = split_document_completion(medium_corpus, 0.5, seed=0)
        long_docs = medium_corpus.doc_lengths >= 2
        assert np.all(obs.doc_lengths[long_docs] >= 1)
        assert np.all(held.doc_lengths[long_docs] >= 1)

    def test_single_token_doc_goes_observed(self):
        from repro.corpus.corpus import Corpus

        c = Corpus.from_documents([[1], [0, 1, 0, 1]], num_words=2)
        obs, held = split_document_completion(c, 0.5, seed=0)
        assert obs.doc_lengths[0] == 1
        assert held.doc_lengths[0] == 0

    def test_fraction_respected(self, medium_corpus):
        obs, held = split_document_completion(medium_corpus, 0.75, seed=0)
        frac = obs.num_tokens / medium_corpus.num_tokens
        assert 0.70 < frac < 0.80

    def test_validation(self, medium_corpus):
        with pytest.raises(ValueError):
            split_document_completion(medium_corpus, 1.0)

    def test_completion_evaluation_pipeline(self, medium_corpus):
        """Observed half infers θ; held-out half is scored — the
        document-completion protocol end-to-end."""
        from repro.core import CuLDA, TrainConfig
        from repro.core.inference import held_out_log_likelihood, infer_documents
        from repro.corpus.split import split_documents
        from repro.gpusim.platform import pascal_platform

        train, test = split_documents(medium_corpus, 0.3, seed=0)
        result = CuLDA(train, pascal_platform(1),
                       TrainConfig(num_topics=8, iterations=10, seed=0)).train()
        obs, held = split_document_completion(test, 0.5, seed=0)
        inf = infer_documents(obs, result.phi, result.hyper, iterations=8)
        phi64 = result.phi.astype(np.int64)
        ll = held_out_log_likelihood(
            held, inf.doc_topic, phi64, phi64.sum(axis=1), result.hyper
        )
        assert np.isfinite(ll)
        # Inferred mixtures beat uniform mixtures on the held-out half.
        K = result.hyper.num_topics
        uniform = np.full_like(inf.doc_topic, 1.0 / K)
        ll_uniform = held_out_log_likelihood(
            held, uniform, phi64, phi64.sum(axis=1), result.hyper
        )
        assert ll > ll_uniform
