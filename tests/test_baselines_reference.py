"""Tests for the exact sequential CGS oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.gibbs_reference import ReferenceCGS
from repro.core.model import LDAHyperParams
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus


@pytest.fixture
def tiny():
    return generate_lda_corpus(
        SyntheticSpec(num_docs=25, num_words=60, avg_doc_length=25,
                      num_topics=3, name="oracle"),
        seed=13,
    )


class TestReferenceCGS:
    def test_counts_consistent_after_init(self, tiny, hyper8):
        ref = ReferenceCGS(tiny, hyper8, seed=0)
        assert ref.theta.sum() == tiny.num_tokens
        assert ref.phi.sum() == tiny.num_tokens
        assert np.array_equal(ref.n_k, ref.phi.sum(axis=1))

    def test_counts_consistent_after_sweeps(self, tiny, hyper8):
        ref = ReferenceCGS(tiny, hyper8, seed=0)
        ref.iterate(3)
        assert ref.theta.sum() == tiny.num_tokens
        assert ref.phi.sum() == tiny.num_tokens
        assert np.array_equal(ref.n_k, ref.phi.sum(axis=1))
        assert np.all(ref.theta >= 0) and np.all(ref.phi >= 0)
        # Recount from assignments.
        brute_phi = np.zeros_like(ref.phi)
        np.add.at(brute_phi, (ref.topics, tiny.token_word.astype(np.int64)), 1)
        assert np.array_equal(brute_phi, ref.phi)

    def test_likelihood_improves(self, tiny, hyper8):
        ref = ReferenceCGS(tiny, hyper8, seed=0)
        ll0 = ref.log_likelihood_per_token()
        ref.iterate(15)
        assert ref.log_likelihood_per_token() > ll0

    def test_deterministic(self, tiny, hyper8):
        a = ReferenceCGS(tiny, hyper8, seed=5)
        a.iterate(2)
        b = ReferenceCGS(tiny, hyper8, seed=5)
        b.iterate(2)
        assert np.array_equal(a.topics, b.topics)

    def test_conditional_is_distribution(self, tiny, hyper8):
        ref = ReferenceCGS(tiny, hyper8, seed=0)
        p = ref.conditional(0)
        assert p.shape == (8,)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)

    def test_delayed_variant_also_converges(self, tiny, hyper8):
        """exclude_self=False mirrors the GPU kernels' delayed-update
        approximation; it must still converge."""
        ref = ReferenceCGS(tiny, hyper8, seed=0, exclude_self=False)
        ll0 = ref.log_likelihood_per_token()
        ref.iterate(15)
        assert ref.log_likelihood_per_token() > ll0

    def test_agrees_with_culda_convergence(self, tiny):
        """The oracle and the vectorized trainer must reach similar
        likelihood plateaus on the same data (statistical equivalence
        of exact CGS and delayed-update CGS)."""
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import pascal_platform

        hyper = LDAHyperParams(num_topics=8)
        ref = ReferenceCGS(tiny, hyper, seed=0)
        ref.iterate(30)
        ll_ref = ref.log_likelihood_per_token()

        r = CuLDA(tiny, pascal_platform(1),
                  TrainConfig(num_topics=8, iterations=60, seed=0)).train()
        # Delayed-update CGS plateaus slightly below exact CGS on tiny
        # data; they must land in the same neighbourhood.
        assert r.final_log_likelihood == pytest.approx(ll_ref, abs=0.4)
