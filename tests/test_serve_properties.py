"""Property-based tests for the serving building blocks.

Hypothesis drives random request streams through the micro-batcher,
random access patterns through the LRU model cache, and small random
traces through the full service (with a stub model loader, so no
training or disk is involved). The properties are the subsystem's
documented invariants:

- batches never exceed ``max_batch_size`` and never mix models;
- no request is held past ``max_wait_seconds`` for batching reasons;
- requests are FIFO within a model;
- the cache never holds more than ``capacity`` models, and a hit
  returns the exact object (bit-identical φ) a cold load produced;
- the service conserves requests (every submitted id gets exactly one
  terminal status) under any policy.
"""

from __future__ import annotations

import zlib
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import LDAHyperParams
from repro.gpusim.platform import make_machine
from repro.serve import (
    BatchPolicy,
    InferenceRequest,
    InferenceService,
    MicroBatcher,
    ModelCache,
    ServiceConfig,
)

MODELS = ("m0", "m1", "m2")


def _request(i: int, arrival: float, model: str) -> InferenceRequest:
    return InferenceRequest(i, ((i % 5, (i * 3) % 5),), arrival, model, seed=i)


@st.composite
def request_streams(draw):
    """A time-ordered stream of requests over a few models."""
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=5e-3, allow_nan=False),
        min_size=1, max_size=40,
    ))
    models = draw(st.lists(
        st.sampled_from(MODELS), min_size=len(gaps), max_size=len(gaps),
    ))
    t, stream = 0.0, []
    for i, (gap, model) in enumerate(zip(gaps, models)):
        t += gap
        stream.append(_request(i, t, model))
    return stream


@st.composite
def policies(draw):
    return BatchPolicy(
        max_batch_size=draw(st.integers(min_value=1, max_value=6)),
        max_wait_seconds=draw(st.floats(min_value=0.0, max_value=2e-3,
                                        allow_nan=False)),
    )


def drive_batcher(stream, policy):
    """Feed *stream* through a MicroBatcher the way the service does:
    pop on full queues at arrivals, pop on due times between arrivals.
    Returns (batches, pop_times)."""
    batcher = MicroBatcher(policy)
    batches, pop_times = [], []
    i = 0
    while i < len(stream) or batcher.depth():
        next_arrival = stream[i].arrival_time if i < len(stream) else None
        due = batcher.next_due()
        if next_arrival is not None and (due is None or next_arrival <= due[1]):
            request = stream[i]
            i += 1
            batcher.enqueue(request)
            while batcher.ready(request.model_key):
                batches.append(batcher.pop_batch(request.model_key))
                pop_times.append(request.arrival_time)
        else:
            batches.append(batcher.pop_batch(due[0]))
            pop_times.append(due[1])
    return batches, pop_times


class TestBatcherProperties:
    @given(stream=request_streams(), policy=policies())
    @settings(max_examples=60, deadline=None)
    def test_batch_size_and_model_purity(self, stream, policy):
        batches, _ = drive_batcher(stream, policy)
        for batch in batches:
            assert 1 <= len(batch) <= policy.max_batch_size
            assert len({r.model_key for r in batch}) == 1

    @given(stream=request_streams(), policy=policies())
    @settings(max_examples=60, deadline=None)
    def test_no_request_waits_past_bound(self, stream, policy):
        batches, pop_times = drive_batcher(stream, policy)
        for batch, popped_at in zip(batches, pop_times):
            for request in batch:
                wait = popped_at - request.arrival_time
                assert wait <= policy.max_wait_seconds + 1e-12

    @given(stream=request_streams(), policy=policies())
    @settings(max_examples=60, deadline=None)
    def test_fifo_within_model_and_conservation(self, stream, policy):
        batches, _ = drive_batcher(stream, policy)
        popped = [r for batch in batches for r in batch]
        assert sorted(r.request_id for r in popped) == [
            r.request_id for r in stream
        ]
        for model in MODELS:
            order = [r.request_id for r in popped if r.model_key == model]
            assert order == sorted(order)


def _fake_loader_factory(loads: list[str]):
    """A loader producing a deterministic fake model per path, with a
    call log so cold loads are observable."""
    def load(path: str) -> SimpleNamespace:
        loads.append(path)
        rng = np.random.default_rng(zlib.crc32(path.encode()))
        return SimpleNamespace(
            phi=rng.integers(0, 50, size=(4, 8)),
            hyper=LDAHyperParams(num_topics=4),
        )
    return load


class TestCacheProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=3),
        accesses=st.lists(st.sampled_from(MODELS), min_size=1, max_size=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_capacity(self, capacity, accesses):
        loads: list[str] = []
        cache = ModelCache(capacity, loader=_fake_loader_factory(loads),
                           digest_fn=lambda p: f"digest:{p}")
        for path in accesses:
            cache.get(path)
            assert len(cache) <= capacity
        assert cache.hits + cache.misses == len(accesses)
        assert cache.misses == len(loads)
        assert cache.evictions == len(loads) - len(cache)

    @given(
        capacity=st.integers(min_value=1, max_value=3),
        accesses=st.lists(st.sampled_from(MODELS), min_size=2, max_size=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_hits_bit_identical_to_cold_load(self, capacity, accesses):
        loads: list[str] = []
        loader = _fake_loader_factory(loads)
        cache = ModelCache(capacity, loader=loader,
                           digest_fn=lambda p: f"digest:{p}")
        cold = {path: loader(path) for path in MODELS}
        for path in accesses:
            model, digest, hit = cache.get(path)
            assert np.array_equal(model.phi, cold[path].phi)
            if hit:
                # A hit is the very object the cold load produced.
                assert digest in cache.resident_digests()

    @given(accesses=st.lists(st.sampled_from(MODELS), min_size=1,
                             max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_lru_evicts_least_recent(self, accesses):
        cache = ModelCache(2, loader=_fake_loader_factory([]),
                           digest_fn=lambda p: f"digest:{p}")
        recency: list[str] = []
        for path in accesses:
            cache.get(path)
            if path in recency:
                recency.remove(path)
            recency.append(path)
            assert cache.resident_digests() == [
                f"digest:{p}" for p in recency[-cache.capacity:]
            ]

    def test_rewritten_checkpoint_is_a_new_model(self, tmp_path):
        """Digest is recomputed per access: rewriting a file under the
        same path misses rather than serving stale bytes."""
        path = tmp_path / "model.bin"
        path.write_bytes(b"version-1")
        from repro.serve import checkpoint_digest

        loads: list[str] = []
        cache = ModelCache(2, loader=_fake_loader_factory(loads),
                           digest_fn=checkpoint_digest)
        _, d1, hit1 = cache.get(path)
        _, d1b, hit1b = cache.get(path)
        assert (hit1, hit1b) == (False, True) and d1 == d1b
        path.write_bytes(b"version-2")
        _, d2, hit2 = cache.get(path)
        assert not hit2 and d2 != d1


class TestServiceConservation:
    """End-to-end property: every submitted id gets exactly one
    terminal status, under any policy, with a stub loader."""

    @given(
        stream=request_streams(),
        max_batch=st.integers(min_value=1, max_value=5),
        max_queue=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_conservation(self, stream, max_batch, max_queue):
        service = InferenceService(
            make_machine("pascal", 2),
            ServiceConfig(max_batch_size=max_batch, max_wait_seconds=1e-3,
                          max_queue=max_queue, iterations=1),
            loader=_fake_loader_factory([]),
            digest_fn=lambda p: f"digest:{p}",
        )
        report = service.run_trace(stream)
        assert report.submitted == len(stream)
        assert [r.request.request_id for r in report.results] == sorted(
            r.request_id for r in stream
        )
        assert report.submitted == (
            report.count("completed") + report.count("rejected")
            + report.count("deadline_exceeded") + report.count("failed")
        )
        assert report.count("failed") == 0
        high_water = report.registry.gauge(
            "serve_queue_depth_high_water"
        ).value()
        assert high_water <= max_queue

    def test_duplicate_request_ids_rejected(self):
        service = InferenceService(
            make_machine("pascal", 1),
            loader=_fake_loader_factory([]),
            digest_fn=lambda p: f"digest:{p}",
        )
        dup = [_request(1, 0.0, "m0"), _request(1, 0.001, "m0")]
        with pytest.raises(ValueError, match="unique"):
            service.run_trace(dup)
