"""Shared fixtures: small corpora, hyperparameters, platforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import LDAHyperParams
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.gpusim.platform import pascal_platform, volta_platform


@pytest.fixture
def tiny_corpus() -> Corpus:
    """A 5-document hand-built corpus with known contents."""
    docs = [
        [0, 1, 2, 0],
        [3, 3, 4],
        [0, 5, 5, 5, 1],
        [2],
        [4, 0, 1],
    ]
    return Corpus.from_documents(docs, num_words=6, name="tiny")


@pytest.fixture
def small_corpus() -> Corpus:
    """A generated ~3k-token corpus with planted topics."""
    spec = SyntheticSpec(
        num_docs=60,
        num_words=200,
        avg_doc_length=50,
        num_topics=4,
        name="small",
    )
    return generate_lda_corpus(spec, seed=7)


@pytest.fixture
def medium_corpus() -> Corpus:
    """A generated ~20k-token corpus (integration tests)."""
    spec = SyntheticSpec(
        num_docs=150,
        num_words=600,
        avg_doc_length=130,
        num_topics=8,
        name="medium",
    )
    return generate_lda_corpus(spec, seed=11)


@pytest.fixture
def hyper8() -> LDAHyperParams:
    return LDAHyperParams(num_topics=8)


@pytest.fixture
def hyper16() -> LDAHyperParams:
    return LDAHyperParams(num_topics=16)


@pytest.fixture
def pascal1():
    return pascal_platform(1)


@pytest.fixture
def pascal4():
    return pascal_platform(4)


@pytest.fixture
def volta2():
    return volta_platform(2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def serve_checkpoints(tmp_path_factory) -> list[str]:
    """Two trained model checkpoints (distinct φ) for serving tests."""
    from repro.core import CuLDA, TrainConfig, save_model

    spec = SyntheticSpec(num_docs=50, num_words=120, avg_doc_length=30,
                         num_topics=4, name="servetrain")
    corpus = generate_lda_corpus(spec, seed=5)
    root = tmp_path_factory.mktemp("serve-models")
    paths = []
    for i, seed in enumerate((0, 1)):
        result = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=6, seed=seed),
        ).train()
        path = root / f"model{i}.npz"
        save_model(result, path)
        paths.append(str(path))
    return paths
