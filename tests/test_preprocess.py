"""Tests for corpus preprocessing (vocabulary pruning, doc filtering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import Corpus, Vocabulary
from repro.corpus.preprocess import filter_short_documents, prune_vocabulary


@pytest.fixture
def corpus_with_vocab():
    vocab = Vocabulary(["the", "cat", "sat", "mat", "rare"]).freeze()
    docs = [
        [0, 1, 2, 0],    # the cat sat the
        [0, 3, 1],       # the mat cat
        [0, 2, 3],       # the sat mat
        [0, 4],          # the rare
    ]
    return Corpus.from_documents(docs, 5, vocab, name="v")


class TestPruneVocabulary:
    def test_min_doc_frequency(self, corpus_with_vocab):
        # "rare" (id 4) appears in 1 doc; everything else in >= 2.
        pruned = prune_vocabulary(corpus_with_vocab, min_doc_frequency=2)
        assert pruned.num_words == 4
        assert "rare" not in pruned.vocabulary
        assert pruned.num_tokens == corpus_with_vocab.num_tokens - 1

    def test_max_doc_fraction(self, corpus_with_vocab):
        # "the" appears in all 4 docs (fraction 1.0).
        pruned = prune_vocabulary(corpus_with_vocab, max_doc_fraction=0.9)
        assert "the" not in pruned.vocabulary
        assert "cat" in pruned.vocabulary

    def test_stopwords_by_string(self, corpus_with_vocab):
        pruned = prune_vocabulary(corpus_with_vocab, stopwords=["the", "cat"])
        assert pruned.num_words == 3
        assert "the" not in pruned.vocabulary

    def test_stopwords_by_id(self, corpus_with_vocab):
        pruned = prune_vocabulary(corpus_with_vocab, stopwords=[0])
        assert "the" not in pruned.vocabulary

    def test_string_stopwords_need_vocab(self, tiny_corpus):
        with pytest.raises(ValueError, match="vocabulary"):
            prune_vocabulary(tiny_corpus, stopwords=["x"])

    def test_ids_redensified(self, corpus_with_vocab):
        pruned = prune_vocabulary(corpus_with_vocab, stopwords=["the"])
        assert pruned.token_word.max() == pruned.num_words - 1
        assert pruned.token_word.min() == 0

    def test_word_content_preserved(self, corpus_with_vocab):
        pruned = prune_vocabulary(corpus_with_vocab, stopwords=["the"])
        # Doc 0 was "the cat sat the" -> "cat sat".
        words = [pruned.vocabulary.word_of(int(w)) for w in pruned.document(0)]
        assert words == ["cat", "sat"]

    def test_empty_documents_kept(self, corpus_with_vocab):
        pruned = prune_vocabulary(
            corpus_with_vocab, stopwords=["the", "rare"]
        )
        assert pruned.num_docs == corpus_with_vocab.num_docs
        assert pruned.doc_lengths[3] == 0  # doc 3 lost both words

    def test_validation(self, corpus_with_vocab):
        with pytest.raises(ValueError):
            prune_vocabulary(corpus_with_vocab, min_doc_frequency=0)
        with pytest.raises(ValueError):
            prune_vocabulary(corpus_with_vocab, max_doc_fraction=0.0)

    def test_works_without_vocab(self, small_corpus):
        pruned = prune_vocabulary(small_corpus, min_doc_frequency=3)
        assert pruned.num_words <= small_corpus.num_words
        assert pruned.vocabulary is None


class TestFilterShortDocuments:
    def test_drops_and_renumbers(self, corpus_with_vocab):
        filtered = filter_short_documents(corpus_with_vocab, min_length=3)
        assert filtered.num_docs == 3  # the 2-token doc goes
        assert filtered.num_tokens == corpus_with_vocab.num_tokens - 2
        assert list(filtered.document(0)) == [0, 1, 2, 0]

    def test_noop_when_threshold_low(self, corpus_with_vocab):
        filtered = filter_short_documents(corpus_with_vocab, min_length=1)
        assert filtered.num_docs == corpus_with_vocab.num_docs

    def test_validation(self, corpus_with_vocab):
        with pytest.raises(ValueError):
            filter_short_documents(corpus_with_vocab, min_length=-1)

    def test_pipeline_then_train(self, corpus_with_vocab):
        """Preprocessing composes with training."""
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import pascal_platform

        pruned = filter_short_documents(
            prune_vocabulary(corpus_with_vocab, stopwords=["the"]),
            min_length=1,
        )
        r = CuLDA(pruned, pascal_platform(1),
                  TrainConfig(num_topics=4, iterations=2, seed=0)).train()
        assert r.phi.sum() == pruned.num_tokens
