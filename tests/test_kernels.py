"""Tests for the kernel bodies and their cost accounting (paper §6)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.core.kernels import (
    BLOCK_TOKEN_CAPACITY,
    KernelConfig,
    SamplingStats,
    _slab_edges,
    accumulate_phi,
    gibbs_sample_chunk,
    phi_reduce_cost,
    recount_theta,
    sampling_cost,
    sampling_launch_plan,
    update_phi_cost,
    update_theta_cost,
)
from repro.core.model import LDAHyperParams, LDAState, SparseTheta, check_state_invariants
from repro.core.sampler import compute_pstar, dense_conditional


def _run_iterations(corpus, hyper, iterations, seed=0, config=None):
    chunk = corpus.to_chunk()
    state = LDAState.initialize(chunk, hyper, seed=seed)
    rng = np.random.default_rng(seed + 1)
    stats = None
    for _ in range(iterations):
        new_topics, stats = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper, rng, config,
        )
        state.topics = new_topics
        state.theta = recount_theta(chunk, new_topics, hyper.num_topics)
        state.phi = accumulate_phi(chunk, new_topics, hyper.num_topics)
        state.n_k = state.phi.sum(axis=1, dtype=np.int64)
    return chunk, state, stats


class TestGibbsSampleChunk:
    def test_preserves_inputs(self, small_corpus, hyper8, rng):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        phi_before = state.phi.copy()
        topics_before = state.topics.copy()
        gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, rng,
        )
        assert np.array_equal(state.phi, phi_before)
        assert np.array_equal(state.topics, topics_before)

    def test_output_shape_dtype_range(self, small_corpus, hyper8, rng):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        out, stats = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, rng,
        )
        assert out.shape == state.topics.shape
        assert out.dtype == state.topics.dtype
        assert out.min() >= 0 and out.max() < hyper8.num_topics
        assert stats.num_tokens == chunk.num_tokens

    def test_deterministic_given_rng_state(self, small_corpus, hyper8):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        a, _ = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, np.random.default_rng(7),
        )
        b, _ = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, np.random.default_rng(7),
        )
        assert np.array_equal(a, b)

    def test_slab_size_does_not_change_results(self, small_corpus, hyper8):
        """The token-slab memory bound is purely an implementation
        detail: any slab size must give identical samples."""
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        big = KernelConfig(token_slab=1 << 22)
        tiny = KernelConfig(token_slab=64)
        a, _ = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, np.random.default_rng(3), big,
        )
        b, _ = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, np.random.default_rng(3), tiny,
        )
        assert np.array_equal(a, b)

    def test_kd_sum_matches_theta(self, small_corpus, hyper8, rng):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        _, stats = gibbs_sample_chunk(
            chunk, state.topics, state.theta, state.phi, state.n_k,
            hyper8, rng,
        )
        row_len = np.diff(state.theta.indptr)
        expected = int(row_len[chunk.token_doc].sum())
        assert stats.kd_sum == expected

    def test_marginal_distribution_of_one_token(self, hyper8):
        """Single-token corpus: the kernel's draw must follow Eq 1 with
        the frozen counts (delayed-update semantics, no self-exclusion)."""
        from repro.corpus.corpus import Corpus

        corpus = Corpus.from_documents([[0, 1, 1, 2], [0, 0, 2]], num_words=3)
        chunk = corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=4)
        # Token 0 in word-sorted order: word = expanded[0], doc known.
        v = int(chunk.token_word_expanded()[0])
        d = int(chunk.token_doc[0])
        ps = compute_pstar(
            state.phi[:, v].astype(np.float64), state.n_k, hyper8.beta, 3
        )
        t_topics, t_counts = state.theta.row(d)
        theta_dense = np.zeros(hyper8.num_topics)
        theta_dense[t_topics.astype(np.int64)] = t_counts
        p = dense_conditional(theta_dense, ps, hyper8.alpha)
        p /= p.sum()
        draws = []
        for s in range(4000):
            out, _ = gibbs_sample_chunk(
                chunk, state.topics, state.theta, state.phi, state.n_k,
                hyper8, np.random.default_rng(s),
            )
            draws.append(int(out[0]))
        observed = np.bincount(draws, minlength=hyper8.num_topics)
        mask = p * len(draws) >= 5
        _, pvalue = chisquare(
            observed[mask], p[mask] / p[mask].sum() * observed[mask].sum()
        )
        assert pvalue > 1e-4

    def test_likelihood_improves(self, medium_corpus):
        from repro.core.likelihood import log_likelihood_per_token

        hyper = LDAHyperParams(num_topics=16)
        chunk, state0, _ = _run_iterations(medium_corpus, hyper, 1, seed=0)
        ll0 = log_likelihood_per_token(
            state0.theta, state0.phi, state0.n_k, chunk.doc_lengths, hyper
        )
        chunk, state, _ = _run_iterations(medium_corpus, hyper, 12, seed=0)
        ll1 = log_likelihood_per_token(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper
        )
        assert ll1 > ll0 + 0.1

    def test_invariants_after_iterations(self, small_corpus, hyper8):
        _, state, _ = _run_iterations(small_corpus, hyper8, 5, seed=1)
        check_state_invariants(state)

    def test_theta_sparsifies(self, medium_corpus):
        """Fig 7's mechanism: mean K_d decreases as the model converges."""
        hyper = LDAHyperParams(num_topics=16)
        _, _, stats_early = _run_iterations(medium_corpus, hyper, 1, seed=0)
        _, _, stats_late = _run_iterations(medium_corpus, hyper, 15, seed=0)
        assert stats_late.mean_kd < stats_early.mean_kd

    def test_empty_chunk(self, hyper8, rng):
        from repro.corpus.corpus import Corpus

        corpus = Corpus.from_documents([[]], num_words=3)
        chunk = corpus.to_chunk()
        topics = np.zeros(0, dtype=np.uint16)
        theta = SparseTheta.from_assignments(chunk, topics, 8)
        phi = np.zeros((8, 3), dtype=np.int32)
        out, stats = gibbs_sample_chunk(
            chunk, topics, theta, phi, np.zeros(8, dtype=np.int64),
            hyper8, rng,
        )
        assert out.size == 0
        assert stats.num_tokens == 0


class TestUpdateKernels:
    def test_recount_theta_matches_assignments(self, small_corpus, hyper8, rng):
        chunk = small_corpus.to_chunk()
        topics = rng.integers(0, 8, chunk.num_tokens).astype(np.uint16)
        theta = recount_theta(chunk, topics, 8)
        brute = np.zeros((chunk.num_docs, 8), dtype=np.int64)
        np.add.at(brute, (chunk.token_doc.astype(np.int64), topics.astype(np.int64)), 1)
        assert np.array_equal(theta.to_dense(), brute)

    def test_accumulate_phi_matches_assignments(self, small_corpus, rng):
        chunk = small_corpus.to_chunk()
        topics = rng.integers(0, 8, chunk.num_tokens).astype(np.uint16)
        phi = accumulate_phi(chunk, topics, 8)
        words = chunk.token_word_expanded().astype(np.int64)
        brute = np.zeros((8, chunk.num_words), dtype=np.int64)
        np.add.at(brute, (topics.astype(np.int64), words), 1)
        assert np.array_equal(phi, brute)
        assert phi.sum() == chunk.num_tokens

    def test_accumulate_phi_into_out(self, small_corpus, rng):
        chunk = small_corpus.to_chunk()
        topics = rng.integers(0, 8, chunk.num_tokens).astype(np.uint16)
        out = np.full((8, chunk.num_words), 99, dtype=np.int32)
        result = accumulate_phi(chunk, topics, 8, out=out)
        assert result is out
        assert out.sum() == chunk.num_tokens  # zeroed first

    def test_accumulate_phi_shape_check(self, small_corpus, rng):
        chunk = small_corpus.to_chunk()
        topics = rng.integers(0, 8, chunk.num_tokens).astype(np.uint16)
        with pytest.raises(ValueError):
            accumulate_phi(chunk, topics, 8, out=np.zeros((4, 4), dtype=np.int32))


class TestLaunchPlan:
    def test_light_words_one_block_each(self):
        indptr = np.array([0, 3, 3, 10])  # words with 3, 0, 7 tokens
        blocks, segments = sampling_launch_plan(indptr)
        assert blocks == segments == 2  # zero-token word gets none

    def test_heavy_word_splits(self):
        heavy = 3 * BLOCK_TOKEN_CAPACITY + 1
        indptr = np.array([0, heavy])
        blocks, _ = sampling_launch_plan(indptr)
        assert blocks == 4

    def test_empty_chunk_plan(self):
        blocks, segments = sampling_launch_plan(np.array([0, 0, 0]))
        assert blocks == segments == 1


class TestCosts:
    HYPER = LDAHyperParams(num_topics=64)

    def _stats(self, T=10_000, kd=20.0):
        return SamplingStats(
            num_tokens=T, kd_sum=int(T * kd), p1_draws=0,
            num_word_segments=100, num_blocks=100,
        )

    def test_sampling_cost_positive_and_memory_bound(self):
        cost = sampling_cost(self._stats(), self.HYPER, 1000, KernelConfig())
        assert cost.total_bytes > 0
        assert cost.flops_per_byte < 1.0  # the paper's §3 conclusion

    def test_dense_sampler_costs_more(self):
        sparse = sampling_cost(self._stats(), self.HYPER, 1000, KernelConfig())
        dense = sampling_cost(
            self._stats(), self.HYPER, 1000, KernelConfig(sparse_sampler=False)
        )
        assert dense.total_bytes > 1.3 * sparse.total_bytes

    def test_dense_sampler_gap_grows_with_k(self):
        """At paper-scale K the O(K) sampler is catastrophically worse —
        the sparsity-aware design's whole point (§6.1.1)."""
        hyper = LDAHyperParams(num_topics=1024)
        sparse = sampling_cost(self._stats(kd=40), hyper, 1000, KernelConfig())
        dense = sampling_cost(
            self._stats(kd=40), hyper, 1000, KernelConfig(sparse_sampler=False)
        )
        assert dense.total_bytes > 8 * sparse.total_bytes

    def test_sharing_reduces_staging(self):
        shared = sampling_cost(self._stats(), self.HYPER, 1000, KernelConfig())
        private = sampling_cost(
            self._stats(), self.HYPER, 1000, KernelConfig(share_p2_tree=False)
        )
        assert private.bytes_read > shared.bytes_read

    def test_compression_reduces_traffic(self):
        comp = sampling_cost(self._stats(), self.HYPER, 1000, KernelConfig())
        wide = sampling_cost(
            self._stats(), self.HYPER, 1000, KernelConfig(compressed=False)
        )
        assert wide.total_bytes > comp.total_bytes

    def test_reuse_pstar_reduces_traffic(self):
        reuse = sampling_cost(self._stats(), self.HYPER, 1000, KernelConfig())
        no_reuse = sampling_cost(
            self._stats(), self.HYPER, 1000, KernelConfig(reuse_pstar=False)
        )
        assert no_reuse.bytes_read > reuse.bytes_read

    def test_cost_monotone_in_kd(self):
        a = sampling_cost(self._stats(kd=10), self.HYPER, 1000, KernelConfig())
        b = sampling_cost(self._stats(kd=100), self.HYPER, 1000, KernelConfig())
        assert b.total_bytes > a.total_bytes

    def test_update_costs_positive(self):
        t = update_theta_cost(10_000, 100, 2_000, self.HYPER, KernelConfig())
        p = update_phi_cost(10_000, 1000, self.HYPER, KernelConfig())
        r = phi_reduce_cost(64, 1000, KernelConfig())
        for c in (t, p, r):
            assert c.total_bytes > 0

    def test_update_phi_has_atomics(self):
        p = update_phi_cost(10_000, 1000, self.HYPER, KernelConfig())
        assert p.atomic_ops == 10_000
        assert p.atomic_locality > 0.9  # word-sorted locality (§6.2)


class TestSlabEdges:
    def test_covers_all_tokens(self):
        row_len = np.array([3, 5, 2, 8, 1])
        edges = _slab_edges(row_len, slab=6)
        assert edges[0][0] == 0 and edges[-1][1] == 5
        for (a, b), (c, d) in zip(edges, edges[1:]):
            assert b == c
        # No slab (except forced singletons) exceeds the bound.
        for a, b in edges:
            if b - a > 1:
                assert row_len[a:b].sum() <= 6

    def test_oversized_single_row(self):
        edges = _slab_edges(np.array([100]), slab=6)
        assert edges == [(0, 1)]

    def test_single_slab_when_large(self):
        edges = _slab_edges(np.array([1, 1, 1]), slab=1000)
        assert edges == [(0, 3)]
