"""Tests for the serving resilience layer.

Replica health and circuit breakers, warm-spare respawn, hedged
requests, rolling model hot-swap with canary/rollback, and graceful
degradation — plus the regression PR 5 exists to fix: a replica marked
dead must never be routed to again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import load_model
from repro.faults import FaultPlan, FaultSpec
from repro.gpusim.errors import DeviceLost, KernelFault
from repro.gpusim.platform import make_machine
from repro.serve import (
    BreakerPolicy,
    DegradationPolicy,
    HealthMonitor,
    HedgePolicy,
    InferenceService,
    LatencyTracker,
    ModelCache,
    RolloutConfig,
    RolloutManager,
    ServiceConfig,
    poisson_trace,
    verify_report,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.context import telemetry_session


@pytest.fixture(scope="module")
def model_info(serve_checkpoints):
    ckpt = load_model(serve_checkpoints[0])
    return serve_checkpoints[0], int(ckpt.phi.shape[1])


def make_service(config, gpus=2, platform="pascal", fault_plan=None):
    return InferenceService(
        make_machine(platform, gpus), config, fault_plan=fault_plan
    )


def assert_conservation(report):
    assert report.submitted == (
        report.count("completed")
        + report.count("rejected")
        + report.count("deadline_exceeded")
        + report.count("failed")
    )


# ----------------------------------------------------------------------
# Health state machine + circuit breaker (unit)
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_starts_healthy_and_routable(self):
        mon = HealthMonitor()
        mon.register(0)
        assert mon.state(0) == "healthy"
        assert mon.routable(0, now=0.0)

    def test_fault_trips_breaker_until_cooldown(self):
        mon = HealthMonitor(BreakerPolicy(cooldown_seconds=1e-3))
        mon.register(0)
        mon.on_fault(0, KernelFault(0, "serve"), now=1.0)
        assert mon.state(0) == "suspect"
        assert not mon.routable(0, now=1.0005)
        # At the cooldown the breaker half-opens: the next dispatch is
        # the trial.
        assert mon.routable(0, now=1.001)

    def test_success_closes_breaker(self):
        mon = HealthMonitor(BreakerPolicy(dead_after=3))
        mon.register(0)
        mon.on_fault(0, KernelFault(0, "serve"), now=0.0)
        mon.on_success(0, now=1.0)
        assert mon.state(0) == "healthy"
        # The streak reset: two more faults suspect, not kill.
        mon.on_fault(0, KernelFault(0, "serve"), now=2.0)
        mon.on_fault(0, KernelFault(0, "serve"), now=3.0)
        assert mon.state(0) == "suspect"

    def test_retrip_doubles_cooldown(self):
        policy = BreakerPolicy(dead_after=10, cooldown_seconds=1e-3,
                               cooldown_factor=2.0)
        mon = HealthMonitor(policy)
        mon.register(0)
        mon.on_fault(0, KernelFault(0, "serve"), now=0.0)
        assert mon.routable(0, now=1e-3)
        mon.on_fault(0, KernelFault(0, "serve"), now=1e-3)
        assert not mon.routable(0, now=1e-3 + 1.5e-3)
        assert mon.routable(0, now=1e-3 + 2e-3)

    def test_consecutive_faults_kill(self):
        mon = HealthMonitor(BreakerPolicy(dead_after=2))
        mon.register(0)
        mon.on_fault(0, KernelFault(0, "serve"), now=0.0)
        assert mon.state(0) == "suspect"
        mon.on_fault(0, KernelFault(0, "serve"), now=1.0)
        assert mon.state(0) == "dead"
        # Dead is permanent: no cooldown ever re-admits it.
        assert not mon.routable(0, now=1e9)

    def test_device_lost_kills_immediately(self):
        mon = HealthMonitor(BreakerPolicy(dead_after=100))
        mon.register(0)
        mon.on_fault(0, DeviceLost(0), now=0.0)
        assert mon.state(0) == "dead"

    def test_transitions_logged_and_counted(self):
        registry = MetricsRegistry()
        mon = HealthMonitor(BreakerPolicy(dead_after=2))
        with telemetry_session(registry=registry):
            mon.register(0)
            mon.on_fault(0, KernelFault(0, "serve"), now=0.5)
            mon.on_fault(0, KernelFault(0, "serve"), now=0.7)
        assert [(t, to) for t, _, _, to in mon.transitions] == [
            (0.5, "suspect"), (0.7, "dead"),
        ]
        counter = registry.get("serve_health_transitions_total")
        assert counter.value(replica=0, to="suspect") == 1
        assert counter.value(replica=0, to="dead") == 1

    def test_respawning_is_routable(self):
        mon = HealthMonitor()
        mon.register(1)
        mon.mark_dead(1, now=0.0)
        mon.mark_respawning(1, now=1.0)
        assert mon.state(1) == "respawning"
        assert mon.routable(1, now=1.0)


class TestLatencyTracker:
    def test_quantiles_on_known_data(self):
        t = LatencyTracker(window=100)
        for v in range(1, 101):
            t.observe(float(v))
        assert t.quantile(0.0) == 1.0
        assert t.quantile(0.5) == 51.0
        assert t.quantile(1.0) == 100.0

    def test_window_slides(self):
        t = LatencyTracker(window=3)
        for v in (10.0, 20.0, 30.0, 40.0):
            t.observe(v)
        assert len(t) == 3
        assert t.quantile(0.0) == 20.0

    def test_empty_and_bad_q_rejected(self):
        t = LatencyTracker()
        with pytest.raises(ValueError):
            t.quantile(0.5)
        t.observe(1.0)
        with pytest.raises(ValueError):
            t.quantile(1.5)


# ----------------------------------------------------------------------
# Dead replicas stay dead (the PR's satellite regression)
# ----------------------------------------------------------------------
class TestDeadReplicaPermanence:
    def test_dead_replica_never_reselected(self, model_info):
        """After a DeviceLost, the replica leaves the routing set for
        good — every subsequent batch lands elsewhere."""
        path, num_words = model_info
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=0, device=0),
        ))
        trace = poisson_trace([path], num_words, rate=2000, duration=0.02,
                              seed=3)
        service = make_service(
            ServiceConfig(max_batch_size=2, max_wait_seconds=5e-4,
                          max_queue=256, iterations=3),
            gpus=2, fault_plan=plan,
        )
        report = service.run_trace(trace)
        assert report.count("completed") == report.submitted
        assert service.scheduler.dead_replicas == {0}
        served_on = {r.replica for r in report.results}
        assert served_on == {1}
        assert report.health_states[0] == "dead"
        # Many batches ran after the death; none probed the corpse.
        batches = {r.batch_id for r in report.results}
        assert len(batches) > 3

    def test_breaker_ejects_faulty_replica_within_cooldown(self, model_info):
        """A transient kernel fault opens the breaker: traffic avoids
        the replica until the cooldown expires."""
        path, num_words = model_info
        plan = FaultPlan(faults=(
            FaultSpec(kind="kernel_fault", iteration=0, device=0,
                      op="serve"),
        ))
        # Cooldown far longer than the trace: replica 0 stays ejected.
        config = ServiceConfig(
            max_batch_size=2, max_wait_seconds=5e-4, max_queue=256,
            iterations=3, breaker=BreakerPolicy(cooldown_seconds=10.0),
        )
        trace = poisson_trace([path], num_words, rate=2000, duration=0.015,
                              seed=5)
        service = make_service(config, gpus=2, fault_plan=plan)
        report = service.run_trace(trace)
        assert report.count("completed") == report.submitted
        assert {r.replica for r in report.results} == {1}
        assert report.health_states[0] == "suspect"
        # Not dead: the scheduler would still route to it eventually.
        assert service.scheduler.dead_replicas == set()

    def test_breaker_half_open_readmits_after_cooldown(self, model_info):
        path, num_words = model_info
        plan = FaultPlan(faults=(
            FaultSpec(kind="kernel_fault", iteration=0, device=0,
                      op="serve"),
        ))
        # Cooldown shorter than the trace: the half-open trial succeeds
        # and replica 0 returns to service.
        config = ServiceConfig(
            max_batch_size=2, max_wait_seconds=5e-4, max_queue=256,
            iterations=3, breaker=BreakerPolicy(cooldown_seconds=2e-3),
        )
        trace = poisson_trace([path], num_words, rate=2000, duration=0.03,
                              seed=5)
        report = make_service(config, gpus=2, fault_plan=plan).run_trace(trace)
        assert report.count("completed") == report.submitted
        assert {r.replica for r in report.results} == {0, 1}
        assert report.health_states[0] == "healthy"


# ----------------------------------------------------------------------
# Warm spares / elastic respawn
# ----------------------------------------------------------------------
class TestWarmSpares:
    def test_spare_activated_on_replica_death(self, model_info):
        path, num_words = model_info
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=1, device=1),
        ))
        config = ServiceConfig(max_batch_size=2, max_wait_seconds=5e-4,
                               max_queue=256, iterations=3, warm_spares=1)
        trace = poisson_trace([path], num_words, rate=2500, duration=0.02,
                              seed=9)
        service = make_service(config, gpus=3, fault_plan=plan)
        assert len(service.scheduler.replicas) == 2  # gpu 2 held back
        report = service.run_trace(trace)
        assert_conservation(report)
        assert report.count("completed") == report.submitted
        assert report.respawns == 1
        # The spare (gpu 2) took over; phi was re-broadcast to it.
        assert 2 in {r.replica for r in report.results}
        assert report.registry.get("serve_phi_uploads_total").value(
            replica=2
        ) >= 1
        assert report.health_states[1] == "dead"
        # Payloads survived the respawn bit-identically.
        assert verify_report(report, trace, default_iterations=3,
                             payload_sample=16) == []

    def test_warm_spares_must_leave_a_replica(self, model_info):
        with pytest.raises(ValueError, match="warm_spares"):
            make_service(ServiceConfig(warm_spares=2), gpus=2)


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
class TestHedging:
    @pytest.fixture(scope="class")
    def hedged_run(self, model_info):
        path, num_words = model_info
        config = ServiceConfig(
            max_batch_size=4, max_wait_seconds=1e-3, max_queue=512,
            iterations=3,
            hedge=HedgePolicy(quantile=0.5, min_observations=4),
        )
        trace = poisson_trace([path], num_words, rate=3000, duration=0.03,
                              seed=13)
        report = make_service(config, gpus=2).run_trace(trace)
        return report, trace

    def test_hedges_fire_and_sometimes_win(self, hedged_run):
        report, _ = hedged_run
        assert report.hedges > 0
        assert 0 <= report.hedge_wins <= report.hedges
        assert any(r.hedged for r in report.results) == (
            report.hedge_wins > 0
        )

    def test_hedging_moves_time_not_bits(self, hedged_run):
        report, trace = hedged_run
        assert report.count("completed") == report.submitted
        assert verify_report(report, trace, default_iterations=3) == []

    def test_hedged_timings_never_later_than_unhedged(self, model_info):
        """Hedging can only pull completions earlier."""
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=3000, duration=0.02,
                              seed=13)
        base_cfg = dict(max_batch_size=4, max_wait_seconds=1e-3,
                        max_queue=512, iterations=3)
        plain = make_service(ServiceConfig(**base_cfg), gpus=2).run_trace(trace)
        hedged = make_service(
            ServiceConfig(**base_cfg,
                          hedge=HedgePolicy(quantile=0.5,
                                            min_observations=4)),
            gpus=2,
        ).run_trace(trace)
        for p, h in zip(plain.results, hedged.results):
            if h.hedged:
                assert h.completion_time <= p.completion_time


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    @pytest.fixture(scope="class")
    def overload_run(self, model_info):
        path, num_words = model_info
        config = ServiceConfig(
            max_batch_size=2, max_wait_seconds=5e-4, max_queue=8,
            iterations=40,
            degradation=DegradationPolicy(shed_occupancy=0.5),
        )
        trace = poisson_trace([path], num_words, rate=30_000,
                              duration=0.004, seed=7, mean_doc_len=80,
                              low_priority_fraction=0.5)
        report = make_service(config, gpus=1).run_trace(trace)
        return report

    def test_low_priority_shed_first(self, overload_run):
        report = overload_run
        assert_conservation(report)
        shed = [r for r in report.results
                if r.status == "rejected" and "shed" in (r.error or "")]
        assert shed, "overload never shed low-priority traffic"
        assert all(r.request.priority == 0 for r in shed)
        assert report.registry.get("serve_rejections_total").value(
            reason="shed_low_priority"
        ) == len(shed)

    def test_degraded_mode_counted(self, overload_run):
        report = overload_run
        entries = report.registry.get("serve_degraded_entries_total")
        assert entries is not None and entries.value() >= 1

    def test_high_priority_only_rejected_for_queue_full(self, overload_run):
        for r in overload_run.results:
            if r.status == "rejected" and r.request.priority >= 1:
                assert "queue" in r.error

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="shed_occupancy"):
            DegradationPolicy(shed_occupancy=0.0)
        with pytest.raises(ValueError, match="exit_occupancy"):
            DegradationPolicy(shed_occupancy=0.5, exit_occupancy=0.9)
        assert DegradationPolicy(shed_occupancy=0.8).exit_threshold == 0.4


# ----------------------------------------------------------------------
# Rolling model hot-swap (unit)
# ----------------------------------------------------------------------
class TestRolloutManager:
    def _mgr(self, registry=None, **overrides):
        kwargs = dict(old_model="old.npz", new_model="new.npz",
                      canary_fraction=0.25, min_canary=4, min_baseline=4,
                      promote_step=2)
        kwargs.update(overrides)
        if registry is None:
            return RolloutManager(RolloutConfig(**kwargs), num_replicas=4)
        with telemetry_session(registry=registry):
            return RolloutManager(RolloutConfig(**kwargs), num_replicas=4)

    def _req(self, rid, seed=0, model="old.npz"):
        from repro.serve import InferenceRequest

        return InferenceRequest(rid, ((0, 1),), 0.0, model, seed=seed)

    def test_routing_is_deterministic_and_fractional(self):
        mgr = self._mgr()
        routes = [mgr.route(self._req(i, seed=i)) for i in range(400)]
        assert routes == [mgr.route(self._req(i, seed=i)) for i in range(400)]
        canaried = sum(1 for r in routes if r == "new.npz")
        assert 0.1 < canaried / 400 < 0.45  # ~canary_fraction
        # Foreign models pass through untouched.
        assert mgr.route(self._req(0, model="other.npz")) == "other.npz"

    def test_promotion_ramps_to_completed(self):
        registry = MetricsRegistry()
        mgr = self._mgr(registry)
        with telemetry_session(registry=registry):
            for i in range(4):
                mgr.observe("old.npz", "completed", -7.0, now=float(i))
            for i in range(20):
                mgr.observe("new.npz", "completed", -7.0, now=float(i))
        assert mgr.state == "completed"
        assert mgr.fraction() == 1.0
        assert registry.get("serve_rollout_promotions_total").value() == 4

    def test_ll_regression_rolls_back(self):
        registry = MetricsRegistry()
        mgr = self._mgr(registry, max_ll_regression=0.1)
        with telemetry_session(registry=registry):
            for i in range(4):
                mgr.observe("old.npz", "completed", -7.0, now=float(i))
            for i in range(4):
                mgr.observe("new.npz", "completed", -7.5, now=float(i))
        assert mgr.state == "rolled_back"
        assert "log-likelihood" in mgr.rollback_reason
        assert mgr.fraction() == 0.0
        assert all(
            mgr.route(self._req(i, seed=i)) == "old.npz" for i in range(100)
        )
        assert registry.get("serve_rollout_rollbacks_total").value() == 1

    def test_error_rate_regression_rolls_back(self):
        mgr = self._mgr(max_error_rate_increase=0.1)
        for i in range(4):
            mgr.observe("old.npz", "completed", -7.0, now=float(i))
        for i in range(4):
            mgr.observe("new.npz", "failed", None, now=float(i))
        assert mgr.state == "rolled_back"
        assert "error rate" in mgr.rollback_reason

    def test_preferred_replicas_split_by_version(self):
        mgr = self._mgr()
        mgr.state = "promoting"
        mgr.upgraded = 2
        ids = [0, 1, 2, 3]
        assert mgr.preferred_replicas("new.npz", ids) == {0, 1}
        assert mgr.preferred_replicas("old.npz", ids) == {2, 3}
        assert mgr.preferred_replicas("other.npz", ids) is None

    def test_rejections_do_not_move_the_decision(self):
        mgr = self._mgr()
        for i in range(100):
            mgr.observe("new.npz", "rejected", None, now=float(i))
            mgr.observe("new.npz", "deadline_exceeded", None, now=float(i))
        assert mgr.state == "canary"


# ----------------------------------------------------------------------
# Rolling model hot-swap (service level)
# ----------------------------------------------------------------------
class TestRolloutService:
    def test_rolling_upgrade_completes_with_mixed_traffic(
        self, serve_checkpoints
    ):
        old, new = serve_checkpoints
        num_words = int(load_model(old).phi.shape[1])
        config = ServiceConfig(max_batch_size=4, max_wait_seconds=1e-3,
                               max_queue=512, iterations=3,
                               cache_capacity=2)
        service = make_service(config, gpus=2)
        service.start_rollout(RolloutConfig(
            old_model=old, new_model=new, canary_fraction=0.3,
            min_canary=4, min_baseline=4, promote_step=2,
        ))
        trace = poisson_trace([old], num_words, rate=4000, duration=0.05,
                              seed=23)
        report = service.run_trace(trace)
        assert_conservation(report)
        assert report.count("completed") == report.submitted
        served = {r.request.model_key for r in report.results}
        assert served == {old, new}, "traffic never mixed versions"
        assert report.rollout["state"] == "completed"
        assert report.rollout["fraction"] == 1.0
        assert report.registry.get(
            "serve_rollout_promotions_total"
        ).value() == 2
        # Mixed-version payloads are each bit-identical to a direct
        # call against the version that actually served them — no
        # stale or torn phi read anywhere.
        assert verify_report(report, trace, default_iterations=3) == []

    def test_canary_regression_rolls_back_automatically(
        self, serve_checkpoints, tmp_path
    ):
        old = serve_checkpoints[0]
        num_words = int(load_model(old).phi.shape[1])
        # The "new version" is a checkpoint that cannot load: every
        # canary batch fails, which is exactly the error-rate
        # regression the rollout must catch.
        broken = str(tmp_path / "missing-model.npz")
        config = ServiceConfig(max_batch_size=4, max_wait_seconds=1e-3,
                               max_queue=512, iterations=3)
        service = make_service(config, gpus=2)
        service.start_rollout(RolloutConfig(
            old_model=old, new_model=broken, canary_fraction=0.3,
            min_canary=3, min_baseline=3, max_error_rate_increase=0.0,
        ))
        trace = poisson_trace([old], num_words, rate=4000, duration=0.04,
                              seed=29)
        report = service.run_trace(trace)
        assert_conservation(report)
        assert report.rollout["state"] == "rolled_back"
        assert "error rate" in report.rollout["rollback_reason"]
        assert report.registry.get(
            "serve_rollout_rollbacks_total"
        ).value() == 1
        # Canary casualties are structured failures, not losses.
        failed = [r for r in report.results if r.status == "failed"]
        assert failed
        assert all(broken in r.error for r in failed)
        assert all(r.request.model_key == broken for r in failed)
        # After the rollback the old version absorbed all remaining
        # traffic.
        last_failed = max(r.request.request_id for r in failed)
        tail = [r for r in report.results
                if r.request.request_id > last_failed]
        assert tail and all(r.status == "completed" for r in tail)

    def test_concurrent_rollout_rejected(self, serve_checkpoints):
        old, new = serve_checkpoints
        service = make_service(ServiceConfig(), gpus=2)
        service.start_rollout(RolloutConfig(old_model=old, new_model=new))
        with pytest.raises(ValueError, match="already in progress"):
            service.start_rollout(
                RolloutConfig(old_model=old, new_model=new)
            )


# ----------------------------------------------------------------------
# Model-cache telemetry (satellite)
# ----------------------------------------------------------------------
class TestCacheTelemetry:
    def test_lru_eviction_visible_in_registry(self):
        registry = MetricsRegistry()
        loads = []
        cache = ModelCache(
            capacity=1,
            loader=lambda p: loads.append(p) or object(),
            digest_fn=lambda p: f"digest:{p}",
        )
        with telemetry_session(registry=registry):
            cache.get("a.npz")
            cache.get("b.npz")   # evicts a
            cache.get("a.npz")   # reload, evicts b
        assert cache.evictions == 2
        assert registry.get("serve_cache_evictions_total").value() == 2
        assert registry.get("serve_cache_resident_models").value() == 1

    def test_service_counters_match_cache(self, serve_checkpoints):
        a, b = serve_checkpoints
        num_words = int(load_model(a).phi.shape[1])
        config = ServiceConfig(max_batch_size=4, max_wait_seconds=1e-3,
                               max_queue=512, iterations=3,
                               cache_capacity=1)
        trace = poisson_trace([a, b], num_words, rate=3000, duration=0.02,
                              seed=31)
        service = make_service(config, gpus=2)
        report = service.run_trace(trace)
        evicted = report.registry.get("serve_cache_evictions_total")
        assert evicted is not None
        # No double counting: the registry and the cache's own tally
        # agree exactly.
        assert evicted.value() == service.cache.evictions > 0
        assert report.registry.get(
            "serve_cache_resident_models"
        ).value() == 1
