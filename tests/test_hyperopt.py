"""Tests for Minka fixed-point hyperparameter estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hyperopt import optimize_hyperparameters, update_alpha, update_beta
from repro.core.model import LDAHyperParams, SparseTheta


def _theta_from_dense(dense):
    dense = np.asarray(dense)
    D, K = dense.shape
    rows, cols = np.nonzero(dense)
    indptr = np.zeros(D + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return SparseTheta(indptr, cols.astype(np.int32),
                       dense[rows, cols].astype(np.int32), K)


class TestUpdateAlpha:
    def test_validation(self):
        theta = _theta_from_dense([[2, 1]])
        with pytest.raises(ValueError):
            update_alpha(theta, np.array([3]), alpha=0.0)

    def test_concentrated_docs_shrink_alpha(self):
        """Documents that each use a single topic imply a small α."""
        dense = np.zeros((40, 8), dtype=np.int64)
        rng = np.random.default_rng(0)
        for d in range(40):
            dense[d, rng.integers(0, 8)] = 50
        theta = _theta_from_dense(dense)
        lengths = dense.sum(axis=1)
        a = update_alpha(theta, lengths, alpha=1.0, iterations=20)
        assert a < 0.2

    def test_uniform_docs_grow_alpha(self):
        """Documents spread evenly over topics imply a large α."""
        dense = np.full((40, 8), 10, dtype=np.int64)
        theta = _theta_from_dense(dense)
        lengths = dense.sum(axis=1)
        a = update_alpha(theta, lengths, alpha=0.1, iterations=20)
        assert a > 1.0

    def test_recovers_generating_alpha(self):
        """On true Dirichlet-multinomial data the fixed point converges
        near the generating concentration."""
        rng = np.random.default_rng(1)
        true_alpha = 0.3
        K, D, L = 6, 400, 120
        dense = np.zeros((D, K), dtype=np.int64)
        for d in range(D):
            p = rng.dirichlet(np.full(K, true_alpha))
            dense[d] = rng.multinomial(L, p)
        theta = _theta_from_dense(dense)
        lengths = dense.sum(axis=1)
        a = update_alpha(theta, lengths, alpha=1.0, iterations=100)
        assert a == pytest.approx(true_alpha, rel=0.25)

    def test_clamped_on_uniform_data(self):
        """Exactly uniform documents have an unbounded MLE; the update
        must clamp instead of diverging."""
        dense = np.full((20, 4), 25, dtype=np.int64)
        theta = _theta_from_dense(dense)
        a = update_alpha(theta, dense.sum(axis=1), alpha=1.0,
                         iterations=10_000)
        assert a <= 1e4


class TestUpdateBeta:
    def test_validation(self):
        with pytest.raises(ValueError):
            update_beta(np.ones((2, 3), dtype=np.int64), beta=-1.0)

    def test_concentrated_topics_shrink_beta(self):
        phi = np.zeros((4, 100), dtype=np.int64)
        for k in range(4):
            phi[k, k * 5 : k * 5 + 5] = 100
        b = update_beta(phi, beta=0.5, iterations=20)
        assert b < 0.1

    def test_uniform_topics_grow_beta(self):
        phi = np.full((4, 50), 20, dtype=np.int64)
        b = update_beta(phi, beta=0.01, iterations=20)
        assert b > 0.1


class TestJointOptimization:
    def test_improves_likelihood_on_trained_model(self):
        """Re-estimated (α, β) must not hurt the joint likelihood of a
        trained model's counts — the point of empirical Bayes."""
        from repro.core import CuLDA, TrainConfig
        from repro.core.likelihood import log_likelihood
        from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
        from repro.gpusim.platform import pascal_platform

        corpus = generate_lda_corpus(
            SyntheticSpec(num_docs=120, num_words=200, avg_doc_length=50,
                          num_topics=4, alpha=0.05),
            seed=5,
        )
        r = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=8, iterations=20, seed=0)).train()
        before = log_likelihood(
            r.theta, r.phi, r.phi.sum(axis=1), corpus.doc_lengths, r.hyper
        )
        new_hyper = optimize_hyperparameters(
            r.theta, r.phi, corpus.doc_lengths, r.hyper, iterations=20
        )
        after = log_likelihood(
            r.theta, r.phi, r.phi.sum(axis=1), corpus.doc_lengths, new_hyper
        )
        assert after >= before
        # The generator used a concentrated prior; 50/K = 6.25 is way
        # too diffuse, and the update should move strongly toward it.
        assert new_hyper.alpha < r.hyper.alpha
