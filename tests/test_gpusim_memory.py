"""Tests for device memory allocation and DeviceArray."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.memory import DeviceAllocator, DeviceArray, DeviceOutOfMemoryError
from repro.gpusim.platform import volta_platform


@pytest.fixture
def device():
    return volta_platform(1).gpus[0]


class TestAllocator:
    def test_basic_accounting(self):
        a = DeviceAllocator(1000)
        t1 = a.allocate(400)
        assert a.bytes_in_use == 400
        t2 = a.allocate(600)
        assert a.bytes_free == 0
        a.free(t1)
        assert a.bytes_in_use == 600
        a.free(t2)
        assert a.bytes_in_use == 0

    def test_oom(self):
        a = DeviceAllocator(100)
        a.allocate(80)
        with pytest.raises(DeviceOutOfMemoryError):
            a.allocate(21)

    def test_oom_message_has_sizes(self):
        a = DeviceAllocator(2**20, owner="gpu0")
        a.allocate(2**19)
        with pytest.raises(DeviceOutOfMemoryError, match="gpu0"):
            a.allocate(2**20)

    def test_double_free_rejected(self):
        a = DeviceAllocator(100)
        t = a.allocate(10)
        a.free(t)
        with pytest.raises(ValueError):
            a.free(t)

    def test_peak_tracking(self):
        a = DeviceAllocator(1000)
        t1 = a.allocate(700)
        a.free(t1)
        a.allocate(100)
        assert a.peak_bytes == 700

    def test_zero_byte_allocation(self):
        a = DeviceAllocator(10)
        t = a.allocate(0)
        a.free(t)
        assert a.bytes_in_use == 0

    def test_negative_rejected(self):
        a = DeviceAllocator(10)
        with pytest.raises(ValueError):
            a.allocate(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceAllocator(0)


class TestDeviceArray:
    def test_charges_by_dtype(self, device):
        a = DeviceArray(device, (100,), np.uint16)
        b = DeviceArray(device, (100,), np.int32)
        assert a.nbytes == 200
        assert b.nbytes == 400
        assert device.allocator.bytes_in_use >= 600

    def test_fill_array(self, device):
        src = np.arange(10, dtype=np.float32)
        buf = DeviceArray(device, (10,), np.float32, fill=src)
        assert np.array_equal(buf.data, src)
        src[0] = 99  # the buffer must own a copy
        assert buf.data[0] == 0

    def test_fill_scalar(self, device):
        buf = DeviceArray(device, (3, 3), np.int32, fill=7)
        assert np.all(buf.data == 7)

    def test_fill_shape_mismatch_frees_ticket(self, device):
        before = device.allocator.bytes_in_use
        with pytest.raises(ValueError):
            DeviceArray(device, (10,), np.float32, fill=np.zeros(5, np.float32))
        assert device.allocator.bytes_in_use == before

    def test_use_after_free(self, device):
        buf = DeviceArray(device, (4,), np.int32)
        buf.free()
        with pytest.raises(RuntimeError, match="use-after-free"):
            _ = buf.data

    def test_double_free(self, device):
        buf = DeviceArray(device, (4,), np.int32)
        buf.free()
        with pytest.raises(RuntimeError, match="double free"):
            buf.free()

    def test_free_releases_capacity(self, device):
        before = device.allocator.bytes_in_use
        buf = DeviceArray(device, (1000,), np.float64)
        assert device.allocator.bytes_in_use == before + 8000
        buf.free()
        assert device.allocator.bytes_in_use == before

    def test_data_setter_validates(self, device):
        buf = DeviceArray(device, (4,), np.int32)
        with pytest.raises(ValueError):
            buf.data = np.zeros(5, dtype=np.int32)
        with pytest.raises(ValueError):
            buf.data = np.zeros(4, dtype=np.float64)
        buf.data = np.ones(4, dtype=np.int32)
        assert buf.data.sum() == 4

    def test_copy_to_host_is_a_copy(self, device):
        buf = DeviceArray(device, (4,), np.int32, fill=1)
        host = buf.copy_to_host()
        host[0] = 42
        assert buf.data[0] == 1

    def test_oom_on_model_too_large(self, device):
        # V100 has 16 GB; a 20 GB buffer must fail.
        with pytest.raises(DeviceOutOfMemoryError):
            DeviceArray(device, (20 * 2**30,), np.uint8)
