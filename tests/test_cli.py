"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_corpus_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--uci", "x", "--synthetic", "nytimes"]
            )


class TestTrain:
    def test_train_synthetic(self, capsys):
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "8000",
            "--topics", "8", "--iterations", "3", "--platform", "pascal",
            "--gpus", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CuLDA_CGS on Pascal Platform" in out
        assert "tokens/sec" in out

    def test_train_save_and_top_words(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        rc = main([
            "train", "--synthetic", "pubmed", "--tokens", "6000",
            "--topics", "6", "--iterations", "2", "--save", str(model),
            "--top-words", "3",
        ])
        assert rc == 0
        assert model.exists()
        out = capsys.readouterr().out
        assert "topic   0:" in out
        assert "model saved" in out

    def test_train_uci_file(self, capsys, tmp_path, small_corpus):
        from repro.corpus.uci import write_uci_bow

        p = tmp_path / "docword.small.txt"
        write_uci_bow(small_corpus, p)
        rc = main([
            "train", "--uci", str(p), "--topics", "4", "--iterations", "2",
        ])
        assert rc == 0
        assert "docword" in capsys.readouterr().out


class TestInfer:
    def test_round_trip(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        main([
            "train", "--synthetic", "nytimes", "--tokens", "8000",
            "--topics", "8", "--iterations", "4", "--save", str(model),
        ])
        capsys.readouterr()
        rc = main([
            "infer", "--model", str(model), "--synthetic", "nytimes",
            "--tokens", "2000", "--iterations", "4", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "held-out log-likelihood/token" in out
        assert "dominant-topic histogram" in out

    def test_vocab_overflow_is_an_error(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        main([
            "train", "--synthetic", "pubmed", "--tokens", "4000",
            "--topics", "6", "--iterations", "2", "--save", str(model),
        ])
        capsys.readouterr()
        # A much larger twin has a larger vocabulary than the model.
        rc = main([
            "infer", "--model", str(model), "--synthetic", "nytimes",
            "--tokens", "200000",
        ])
        assert rc == 2
        assert "exceeds" in capsys.readouterr().err


class TestProject:
    @pytest.mark.parametrize("artifact,needle", [
        ("table1", "Compute S"),
        ("fig9", "GPU(s):"),
    ])
    def test_artifacts_print(self, capsys, artifact, needle):
        rc = main(["project", artifact])
        assert rc == 0
        assert needle in capsys.readouterr().out

    def test_table4_slow_artifacts(self, capsys):
        rc = main(["project", "table4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NYTimes" in out and "PubMed" in out

    def test_fig7_dataset_option(self, capsys):
        rc = main(["project", "fig7", "--dataset", "PubMed"])
        assert rc == 0
        assert "Volta" in capsys.readouterr().out


class TestReport:
    def test_train_writes_report(self, capsys, tmp_path):
        report = tmp_path / "run.md"
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "6000",
            "--topics", "6", "--iterations", "3",
            "--likelihood-every", "1", "--report", str(report),
        ])
        assert rc == 0
        text = report.read_text()
        assert "# CuLDA_CGS run report" in text
        assert "Kernel time breakdown" in text
        assert "Iteration trace" in text
        assert "topic" in text

    def test_report_includes_metrics_section(self, capsys, tmp_path):
        report = tmp_path / "run.md"
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "6000",
            "--topics", "6", "--iterations", "2", "--report", str(report),
        ])
        assert rc == 0
        text = report.read_text()
        assert "## Metrics" in text
        assert "sampler_tokens_total" in text


class TestProfile:
    def test_profile_defaults_to_synthetic(self, capsys):
        rc = main([
            "profile", "--tokens", "6000", "--topics", "6",
            "--iterations", "2", "--platform", "pascal", "--gpus", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "time breakdown (simulated clock):" in out
        assert "sampling" in out
        assert "device busy fractions:" in out
        assert "gpu0" in out and "gpu1" in out
        assert "top counters" in out
        assert "sampler_tokens_total" in out
        assert "timeline" in out

    def test_profile_volta_4gpu_emits_all_artifacts(self, capsys, tmp_path):
        """The acceptance command: one run produces a valid Chrome
        trace, a Prometheus snapshot, and a JSONL event stream."""
        import json

        from repro.telemetry import parse_prometheus_text, read_jsonl

        trace = tmp_path / "out.json"
        prom = tmp_path / "out.prom"
        events = tmp_path / "out.jsonl"
        rc = main([
            "profile", "--platform", "volta", "--gpus", "4",
            "--iterations", "5", "--tokens", "12000", "--topics", "8",
            "--trace", str(trace), "--metrics", str(prom),
            "--events", str(events),
        ])
        assert rc == 0
        capsys.readouterr()

        doc = json.loads(trace.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert doc["traceEvents"][0]["ph"] == "X"
        # All four simulated devices plus the host-span process.
        assert {e["pid"] for e in slices} == {-1, 0, 1, 2, 3}
        assert all(isinstance(e["tid"], int) for e in slices)

        parsed = parse_prometheus_text(prom.read_text())
        names = {name for name, _ in parsed}
        assert "sampler_p1_draws_total" in names
        assert "transfer_bytes_total" in names
        assert "device_busy_fraction" in names

        evs = read_jsonl(str(events))
        kinds = [e["event"] for e in evs]
        assert kinds[0] == "train_start" and kinds[-1] == "train_end"
        assert kinds.count("iteration_end") == 5

    def test_profile_breakdown_matches_trace(self, capsys, tmp_path):
        """The stdout breakdown table must agree with what an external
        consumer recomputes from the exported Chrome trace."""
        import json
        import re

        from repro.core.culda import BREAKDOWN_KINDS
        from repro.gpusim.trace import TraceRecorder

        trace = tmp_path / "out.json"
        rc = main([
            "profile", "--platform", "pascal", "--gpus", "2",
            "--iterations", "3", "--tokens", "8000", "--topics", "8",
            "--trace", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out

        section = out.split("time breakdown (simulated clock):")[1]
        section = section.split("device busy fractions:")[0]
        printed: dict[str, float] = {}
        for m in re.finditer(r"^  (\w+)\s+(\d+\.\d)%$", section, re.M):
            printed[m.group(1)] = float(m.group(2)) / 100.0
        assert "sampling" in printed

        rebuilt = TraceRecorder()
        for e in json.loads(trace.read_text())["traceEvents"]:
            if e["ph"] != "X" or e["pid"] < 0:
                continue  # skip host spans and metadata
            rebuilt.add(
                e["pid"], str(e["tid"]), e["cat"], e["name"],
                e["ts"] / 1e6, (e["ts"] + e["dur"]) / 1e6,
            )
        frac = rebuilt.breakdown_fractions(BREAKDOWN_KINDS)
        for kind, share in printed.items():
            assert frac[kind] == pytest.approx(share, abs=6e-4), kind


class TestTrainAlgoSelection:
    def test_train_warplda(self, capsys):
        rc = main([
            "train", "--algo", "warplda", "--synthetic", "nytimes",
            "--tokens", "5000", "--topics", "8", "--iterations", "2",
        ])
        assert rc == 0
        assert "WarpLDA on " in capsys.readouterr().out

    def test_train_scvb0(self, capsys):
        rc = main([
            "train", "--algo", "scvb0", "--synthetic", "nytimes",
            "--tokens", "5000", "--topics", "8", "--iterations", "2",
        ])
        assert rc == 0
        assert "SCVB0" in capsys.readouterr().out

    def test_train_ldastar_workers(self, capsys):
        rc = main([
            "train", "--algo", "ldastar", "--workers", "3",
            "--synthetic", "nytimes", "--tokens", "5000",
            "--topics", "8", "--iterations", "2",
        ])
        assert rc == 0
        assert "LDA*" in capsys.readouterr().out

    def test_saberlda_rejects_multi_gpu(self, capsys):
        rc = main([
            "train", "--algo", "saberlda", "--gpus", "2",
            "--synthetic", "nytimes", "--tokens", "5000",
            "--topics", "8", "--iterations", "2",
        ])
        assert rc == 2
        assert "single GPU" in capsys.readouterr().err

    def test_save_every_requires_save(self, capsys):
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "5000",
            "--topics", "8", "--iterations", "2", "--save-every", "2",
        ])
        assert rc == 2
        assert "--save" in capsys.readouterr().err


class TestCheckpointResumeCli:
    CORPUS = [
        "--synthetic", "nytimes", "--tokens", "6000",
        "--topics", "8", "--seed", "1",
    ]

    def test_resume_matches_uninterrupted(self, capsys, tmp_path):
        from repro.core.serialization import load_model

        ckpt = tmp_path / "ckpt.npz"
        rc = main([
            "train", *self.CORPUS, "--iterations", "2",
            "--save", str(ckpt), "--save-every", "2",
        ])
        assert rc == 0
        assert "run-state checkpoint saved" in capsys.readouterr().out

        resumed = tmp_path / "resumed.npz"
        rc = main([
            "train", *self.CORPUS, "--iterations", "4",
            "--resume", str(ckpt), "--save", str(resumed),
        ])
        assert rc == 0
        capsys.readouterr()

        fresh = tmp_path / "fresh.npz"
        rc = main([
            "train", *self.CORPUS, "--iterations", "4",
            "--save", str(fresh),
        ])
        assert rc == 0
        capsys.readouterr()

        a, b = load_model(resumed), load_model(fresh)
        assert np.array_equal(a.phi, b.phi)
        assert a.theta == b.theta

    def test_resume_checkpoint_feeds_infer(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt.npz"
        rc = main([
            "train", *self.CORPUS, "--iterations", "2",
            "--save", str(ckpt), "--save-every", "1",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "infer", "--model", str(ckpt), "--synthetic", "nytimes",
            "--tokens", "2000", "--iterations", "2",
        ])
        assert rc == 0
        assert capsys.readouterr().out


class TestServeCli:
    def test_loadgen_smoke(self, capsys, serve_checkpoints):
        rc = main(["loadgen", "--model", serve_checkpoints[0], "--smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "requests:" in out
        assert "latency (simulated):" in out
        assert "serve_requests_total{status=completed}" in out

    def test_loadgen_multi_model_with_metrics(self, capsys, tmp_path,
                                              serve_checkpoints):
        prom = tmp_path / "serve.prom"
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--model", serve_checkpoints[1],
            "--rate", "2000", "--duration", "0.01", "--gpus", "2",
            "--cache-capacity", "1", "--metrics", str(prom),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "model cache:" in out
        text = prom.read_text()
        assert "serve_latency_seconds" in text
        assert "serve_cache_evictions_total" in text

    def test_loadgen_trace_roundtrips_through_serve(self, capsys, tmp_path,
                                                    serve_checkpoints):
        trace = tmp_path / "trace.jsonl"
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--rate", "1500", "--duration", "0.01",
            "--save-trace", str(trace),
        ])
        assert rc == 0
        gen = capsys.readouterr().out
        rc = main([
            "serve", "--model", serve_checkpoints[0],
            "--trace", str(trace),
        ])
        replay = capsys.readouterr().out
        assert rc == 0
        # Same machine + same trace => the identical summary line.
        line = next(ln for ln in gen.splitlines() if ln.startswith("requests:"))
        assert line in replay

    def test_loadgen_with_fault_plan(self, capsys, tmp_path,
                                     serve_checkpoints):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "kernel_fault", "iteration": 0, '
            '"device": 0, "op": "serve"}]}'
        )
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--rate", "1500", "--duration", "0.01", "--gpus", "2",
            "--faults", str(plan),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault events" in out
        assert "failovers:" in out

    def test_loadgen_chaos_smoke(self, capsys, serve_checkpoints):
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--chaos", "--smoke", "--gpus", "4", "--platform", "pascal",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos invariants hold" in out
        assert "fault events" in out
        assert "replica health:" in out

    def test_loadgen_chaos_with_spare_and_hedging(self, capsys,
                                                  serve_checkpoints):
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--chaos", "--smoke", "--gpus", "4", "--platform", "pascal",
            "--warm-spares", "1", "--hedge-quantile", "0.9",
            "--low-priority-fraction", "0.2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos invariants hold" in out

    def test_loadgen_chaos_needs_two_gpus(self, capsys, serve_checkpoints):
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--chaos", "--gpus", "1",
        ])
        assert rc == 2
        assert "at least --gpus 2" in capsys.readouterr().err

    def test_loadgen_warm_spares_must_leave_a_replica(self, capsys,
                                                      serve_checkpoints):
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--gpus", "2", "--warm-spares", "2",
        ])
        assert rc == 2
        assert "warm-spares" in capsys.readouterr().err

    def test_serve_missing_trace_is_an_error(self, capsys,
                                             serve_checkpoints):
        rc = main([
            "serve", "--model", serve_checkpoints[0],
            "--trace", "/nonexistent/trace.jsonl",
        ])
        assert rc == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_loadgen_missing_model_is_an_error(self, capsys):
        rc = main(["loadgen", "--model", "/nonexistent/model.npz"])
        assert rc == 2
        assert "could not load model" in capsys.readouterr().err

    def test_loadgen_bad_fault_plan_is_an_error(self, capsys, tmp_path,
                                                serve_checkpoints):
        plan = tmp_path / "plan.json"
        plan.write_text("{not json")
        rc = main([
            "loadgen", "--model", serve_checkpoints[0],
            "--faults", str(plan),
        ])
        assert rc == 2
        assert "invalid fault plan" in capsys.readouterr().err


class TestRequestTracing:
    """The --request-trace / --serve-trace / --format json surface."""

    def test_loadgen_writes_request_trace(self, capsys, tmp_path,
                                          serve_checkpoints):
        spans = tmp_path / "spans.jsonl"
        chrome = tmp_path / "spans.json"
        rc = main([
            "loadgen", "--model", serve_checkpoints[0], "--smoke",
            "--request-trace", str(spans),
            "--request-trace-chrome", str(chrome),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "request trace spans written" in out
        from repro.telemetry.tracing import read_spans_jsonl

        parsed = read_spans_jsonl(spans)
        assert any(s.name == "kernel" for s in parsed)
        import json as _json

        doc = _json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_profile_serve_trace_view(self, capsys, tmp_path,
                                      serve_checkpoints):
        spans = tmp_path / "spans.jsonl"
        assert main([
            "loadgen", "--model", serve_checkpoints[0], "--smoke",
            "--request-trace", str(spans),
        ]) == 0
        capsys.readouterr()
        assert main(["profile", "--serve-trace", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "queue" in out and "kernel" in out

    def test_profile_serve_trace_unknown_id_is_an_error(
        self, capsys, tmp_path, serve_checkpoints
    ):
        spans = tmp_path / "spans.jsonl"
        assert main([
            "loadgen", "--model", serve_checkpoints[0], "--smoke",
            "--request-trace", str(spans),
        ]) == 0
        capsys.readouterr()
        assert main([
            "profile", "--serve-trace", str(spans),
            "--trace-id", "nope",
        ]) == 2
        assert "no trace" in capsys.readouterr().err

    def test_profile_trace_id_requires_serve_trace(self, capsys):
        assert main(["profile", "--trace-id", "x"]) == 2
        assert "--serve-trace" in capsys.readouterr().err

    def test_profile_format_json_schema(self, capsys):
        import json as _json

        rc = main([
            "profile", "--synthetic", "nytimes", "--tokens", "6000",
            "--topics", "8", "--iterations", "2", "--platform", "pascal",
            "--format", "json",
        ])
        assert rc == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-profile/1"
        assert doc["iterations"] == 2
        assert set(doc["breakdown"]) >= {"h2d", "d2h", "p2p"}
        assert doc["device_busy"]
        assert doc["counters"]
