"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_corpus_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--uci", "x", "--synthetic", "nytimes"]
            )


class TestTrain:
    def test_train_synthetic(self, capsys):
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "8000",
            "--topics", "8", "--iterations", "3", "--platform", "pascal",
            "--gpus", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CuLDA_CGS on Pascal Platform" in out
        assert "tokens/sec" in out

    def test_train_save_and_top_words(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        rc = main([
            "train", "--synthetic", "pubmed", "--tokens", "6000",
            "--topics", "6", "--iterations", "2", "--save", str(model),
            "--top-words", "3",
        ])
        assert rc == 0
        assert model.exists()
        out = capsys.readouterr().out
        assert "topic   0:" in out
        assert "model saved" in out

    def test_train_uci_file(self, capsys, tmp_path, small_corpus):
        from repro.corpus.uci import write_uci_bow

        p = tmp_path / "docword.small.txt"
        write_uci_bow(small_corpus, p)
        rc = main([
            "train", "--uci", str(p), "--topics", "4", "--iterations", "2",
        ])
        assert rc == 0
        assert "docword" in capsys.readouterr().out


class TestInfer:
    def test_round_trip(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        main([
            "train", "--synthetic", "nytimes", "--tokens", "8000",
            "--topics", "8", "--iterations", "4", "--save", str(model),
        ])
        capsys.readouterr()
        rc = main([
            "infer", "--model", str(model), "--synthetic", "nytimes",
            "--tokens", "2000", "--iterations", "4", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "held-out log-likelihood/token" in out
        assert "dominant-topic histogram" in out

    def test_vocab_overflow_is_an_error(self, capsys, tmp_path):
        model = tmp_path / "m.npz"
        main([
            "train", "--synthetic", "pubmed", "--tokens", "4000",
            "--topics", "6", "--iterations", "2", "--save", str(model),
        ])
        capsys.readouterr()
        # A much larger twin has a larger vocabulary than the model.
        rc = main([
            "infer", "--model", str(model), "--synthetic", "nytimes",
            "--tokens", "200000",
        ])
        assert rc == 2
        assert "exceeds" in capsys.readouterr().err


class TestProject:
    @pytest.mark.parametrize("artifact,needle", [
        ("table1", "Compute S"),
        ("fig9", "GPU(s):"),
    ])
    def test_artifacts_print(self, capsys, artifact, needle):
        rc = main(["project", artifact])
        assert rc == 0
        assert needle in capsys.readouterr().out

    def test_table4_slow_artifacts(self, capsys):
        rc = main(["project", "table4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NYTimes" in out and "PubMed" in out

    def test_fig7_dataset_option(self, capsys):
        rc = main(["project", "fig7", "--dataset", "PubMed"])
        assert rc == 0
        assert "Volta" in capsys.readouterr().out


class TestReport:
    def test_train_writes_report(self, capsys, tmp_path):
        report = tmp_path / "run.md"
        rc = main([
            "train", "--synthetic", "nytimes", "--tokens", "6000",
            "--topics", "6", "--iterations", "3",
            "--likelihood-every", "1", "--report", str(report),
        ])
        assert rc == 0
        text = report.read_text()
        assert "# CuLDA_CGS run report" in text
        assert "Kernel time breakdown" in text
        assert "Iteration trace" in text
        assert "topic" in text
