"""Tests for the full-scale analytic projection (Tables 4-5, Figs 7/9).

These assert the paper's *shapes*: orderings, ratios within tolerance,
ramp directions — the reproduction contract stated in DESIGN.md §5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.datasets import NYTIMES, PUBMED
from repro.gpusim.platform import GPU_TITAN_X, GPU_TITAN_XP, GPU_V100
from repro.perfmodel.projection import (
    ProjectionConfig,
    fig7_series,
    fig9_scaling,
    project_iteration_seconds,
    project_series,
    table4_throughput,
    table5_breakdown,
)

CFG = ProjectionConfig(iterations=100)


@pytest.fixture(scope="module")
def table4():
    return table4_throughput(CFG)


class TestTable4:
    # Paper values (M tokens/sec).
    PAPER_NYT = {"Titan": 173.6, "Pascal": 208.0, "Volta": 633.0, "WarpLDA": 108.0}
    PAPER_PUBMED = {"Titan": 155.6, "Pascal": 213.0, "Volta": 686.2, "WarpLDA": 93.5}

    def test_nytimes_close_to_paper(self, table4):
        for platform, paper in self.PAPER_NYT.items():
            ours = table4["NYTimes"][platform] / 1e6
            assert ours == pytest.approx(paper, rel=0.10), platform

    def test_pubmed_shape(self, table4):
        """PubMed absolute numbers deviate (see EXPERIMENTS.md) but the
        ordering Volta > Pascal > Titan > WarpLDA must hold, and the
        WarpLDA anchor matches the paper."""
        row = table4["PubMed"]
        assert row["Volta"] > row["Pascal"] > row["Titan"] > row["WarpLDA"]
        assert row["WarpLDA"] / 1e6 == pytest.approx(93.5, rel=0.05)
        # Within 2x of the paper everywhere.
        for platform, paper in self.PAPER_PUBMED.items():
            assert row[platform] / 1e6 == pytest.approx(paper, rel=1.0)

    def test_headline_speedup_over_warplda(self, table4):
        """§7.2: 1.61x–7.34x over WarpLDA; ours must land in that band
        at the extremes (within tolerance)."""
        ratios = [
            table4[ds][p] / table4[ds]["WarpLDA"]
            for ds in ("NYTimes", "PubMed")
            for p in ("Titan", "Pascal", "Volta")
        ]
        assert min(ratios) > 1.2
        assert 5.0 < max(ratios) < 9.0

    def test_volta_speedup_over_titan(self, table4):
        """Paper §7.1: ~4.03x Volta/Titan (NYTimes+PubMed average 3.65-4x)."""
        r = table4["NYTimes"]["Volta"] / table4["NYTimes"]["Titan"]
        assert 3.0 < r < 4.5


class TestTable5:
    def test_sampling_dominates(self):
        t5 = table5_breakdown(CFG)
        for platform, row in t5.items():
            assert row["sampling"] > 0.75, platform
            assert row["sampling"] > row["update_theta"] > 0
            assert row["update_phi"] > 0
            assert sum(row.values()) == pytest.approx(1.0)

    def test_close_to_paper_fractions(self):
        """Paper Table 5 (Titan): 87.7 / 8.0 / 4.3."""
        row = table5_breakdown(CFG)["Titan"]
        assert row["sampling"] == pytest.approx(0.877, abs=0.06)
        assert row["update_theta"] == pytest.approx(0.08, abs=0.04)
        assert row["update_phi"] == pytest.approx(0.043, abs=0.03)


class TestFig7:
    def test_ramp_up_then_steady(self):
        s = fig7_series("NYTimes", CFG)["Volta"]
        assert s[-1] > 1.5 * s[0]                 # visible ramp
        assert abs(s[-1] - s[-10]) / s[-1] < 0.02  # flat tail

    def test_pubmed_ramps_less_than_nytimes(self):
        """§7.1: PubMed's initial sparsity is higher, so its curve is
        flatter."""
        nyt = fig7_series("NYTimes", CFG)["Volta"]
        pm = fig7_series("PubMed", CFG)["Volta"]
        assert (nyt[-1] / nyt[0]) > (pm[-1] / pm[0])

    def test_platform_ordering(self):
        """GPU generations order at every iteration; the CPU anchor is
        beaten from early on (the very first iterations may cross — the
        paper's Titan curve also starts near WarpLDA's level)."""
        s = fig7_series("NYTimes", CFG)
        assert np.all(s["Volta"] > s["Pascal"])
        assert np.all(s["Pascal"] > s["Titan"])
        assert np.all(s["Titan"][5:] > s["WarpLDA"][5:])

    def test_warplda_series_flat(self):
        w = fig7_series("NYTimes", CFG)["WarpLDA"]
        assert np.allclose(w, w[0])


class TestFig9:
    def test_speedups_close_to_paper(self):
        """Paper: 1.93x at 2 GPUs, 2.99x at 4 GPUs on PubMed/Pascal."""
        f9 = fig9_scaling(CFG)
        assert f9[1]["speedup"] == pytest.approx(1.0)
        assert f9[2]["speedup"] == pytest.approx(1.93, abs=0.25)
        assert f9[4]["speedup"] == pytest.approx(2.99, abs=0.45)

    def test_sublinear_but_monotone(self):
        f9 = fig9_scaling(CFG)
        assert 1.0 < f9[2]["speedup"] < 2.0
        assert f9[2]["speedup"] < f9[4]["speedup"] < 4.0


class TestIterationModel:
    def test_components_positive(self):
        parts = project_iteration_seconds(NYTIMES, GPU_V100, CFG, kd_token=100.0)
        for key in ("sampling", "update_theta", "update_phi", "total"):
            assert parts[key] > 0
        assert parts["sync"] == 0.0  # single GPU

    def test_sync_appears_multi_gpu(self):
        parts = project_iteration_seconds(
            PUBMED, GPU_TITAN_XP, CFG, kd_token=30.0, num_gpus=4
        )
        assert parts["sync"] > 0

    def test_pubmed_streams_nytimes_resident(self):
        """The memory story: NYTimes fits one GPU; PubMed must stream
        (which is why its big-GPU throughput is PCIe-flavoured)."""
        nyt = project_iteration_seconds(NYTIMES, GPU_V100, CFG, kd_token=100.0)
        pm = project_iteration_seconds(PUBMED, GPU_V100, CFG, kd_token=30.0)
        assert nyt["transfer"] == 0.0
        assert pm["transfer"] > 0.0

    def test_higher_kd_slower(self):
        fast = project_iteration_seconds(NYTIMES, GPU_TITAN_X, CFG, kd_token=40.0)
        slow = project_iteration_seconds(NYTIMES, GPU_TITAN_X, CFG, kd_token=280.0)
        assert slow["total"] > fast["total"]

    def test_series_length(self):
        s = project_series(NYTIMES, GPU_TITAN_X, ProjectionConfig(iterations=17))
        assert s.shape == (17,)
