"""Tests for the SaberLDA-like ablated GPU baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.saberlda import SaberLDA
from repro.core import CuLDA, TrainConfig
from repro.gpusim.platform import pascal_platform


class TestSaberLDA:
    def test_rejects_multi_gpu(self, small_corpus):
        with pytest.raises(ValueError, match="single GPU"):
            SaberLDA(small_corpus, pascal_platform(2))

    def test_optimizations_disabled(self, small_corpus):
        s = SaberLDA(small_corpus, pascal_platform(1),
                     TrainConfig(num_topics=8, iterations=2))
        assert not s.config.share_p2_tree
        assert not s.config.reuse_pstar
        assert not s.config.compressed

    def test_trains_and_converges(self, medium_corpus):
        s = SaberLDA(medium_corpus, pascal_platform(1),
                     TrainConfig(num_topics=16, iterations=10, seed=0))
        r = s.train()
        assert r.phi.sum() == medium_corpus.num_tokens
        assert r.final_log_likelihood is not None

    def test_slower_than_culda_same_platform(self, medium_corpus):
        """The §7.2 comparison, measured: CuLDA's optimizations beat the
        prior-generation GPU design at equal statistical work."""
        cfg = TrainConfig(num_topics=32, iterations=5, seed=0)
        culda = CuLDA(medium_corpus, pascal_platform(1), cfg).train()
        saber = SaberLDA(medium_corpus, pascal_platform(1), cfg).train()
        assert culda.total_sim_seconds < saber.total_sim_seconds
        # Statistically they solve the same problem.
        assert saber.phi.sum() == culda.phi.sum()
