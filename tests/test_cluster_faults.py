"""Chaos suite for the cluster fault domain (docs/ROBUSTNESS.md §8).

Covers the heartbeat membership FSM, fault-aware Ethernet sends,
parameter-server replication/failover/repair, elastic node-loss
recovery on the LDA* trainer (bit-identical to the fault-free run),
and the structured failures produced when recovery is off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.cluster.membership import HeartbeatConfig, MembershipMonitor
from repro.cluster.network import ClusterNetwork
from repro.cluster.paramserver import ShardedParameterServer
from repro.comm.topology import Topology
from repro.engine.recovery import ClusterRecoveryPolicy, TrainingFailure
from repro.faults.plan import FaultPlan, FaultSpec, cluster_chaos_plan
from repro.gpusim.errors import DeviceLost, NodeLost, SyncPathError
from repro.baselines.ldastar import LDAStar


def make_server(num_nodes=4, K=6, V=40, seed=0):
    rng = np.random.default_rng(seed)
    phi = rng.integers(0, 50, size=(K, V)).astype(np.int64)
    net = ClusterNetwork(num_nodes)
    return ShardedParameterServer(phi.copy(), num_nodes, net), net, phi


class TestHeartbeatConfig:
    def test_defaults_valid(self):
        cfg = HeartbeatConfig()
        assert cfg.dead_after > cfg.suspect_after >= cfg.interval

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0.0},
        {"suspect_after": 0.01, "interval": 0.05},
        {"dead_after": 0.5, "suspect_after": 0.5},
    ])
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            HeartbeatConfig(**kwargs)


class TestMembershipFSM:
    def test_all_join_alive(self):
        net = ClusterNetwork(3)
        mon = MembershipMonitor(net)
        assert mon.states() == {0: "alive", 1: "alive", 2: "alive"}
        assert mon.timeline == [(0.0, n, "join", "alive") for n in range(3)]

    def test_silence_escalates_at_exact_thresholds(self):
        net = ClusterNetwork(2)
        cfg = HeartbeatConfig(interval=0.1, suspect_after=0.5, dead_after=2.0)
        mon = MembershipMonitor(net, cfg)
        mon.observe(0.3)          # both heartbeating
        net.fail_node(1)          # silent from its last lease (t=0.3)
        mon.observe(0.6)
        assert mon.state(1) == "alive"   # within suspect_after of t=0.3
        mon.observe(0.9)
        assert mon.state(1) == "suspect"
        mon.observe(5.0)
        assert mon.state(1) == "dead"
        # Transition stamps are the exact threshold expiries, not the
        # observation times.
        events = [(t, frm, to) for t, n, frm, to in mon.timeline if n == 1
                  if frm != "join"]
        assert [(frm, to) for _, frm, to in events] == [
            ("alive", "suspect"), ("suspect", "dead")
        ]
        assert [t for t, _, _ in events] == pytest.approx([0.8, 2.3])
        assert mon.dead_nodes == [1]

    def test_suspect_node_is_readmitted(self):
        net = ClusterNetwork(2)
        cfg = HeartbeatConfig(interval=0.1, suspect_after=0.5, dead_after=2.0)
        mon = MembershipMonitor(net, cfg)
        net.links[1].set_down(True)
        mon.observe(1.0)
        assert mon.state(1) == "suspect"
        net.links[1].set_down(False)   # NIC flap, not death
        mon.observe(1.2)
        assert mon.state(1) == "alive"
        assert (1.2, 1, "suspect", "alive") in mon.timeline

    def test_dead_is_permanent(self):
        net = ClusterNetwork(2)
        mon = MembershipMonitor(net)
        net.fail_node(1)
        mon.observe(100.0)
        assert mon.is_dead(1)
        # Even if reachability somehow returned, dead stays dead.
        net._alive[1] = True
        net.links[1].set_down(False)
        mon.observe(200.0)
        assert mon.is_dead(1)

    def test_await_verdict_stalls_until_lease_expiry(self):
        net = ClusterNetwork(2)
        cfg = HeartbeatConfig(interval=0.1, suspect_after=0.5, dead_after=2.0)
        mon = MembershipMonitor(net, cfg)
        mon.observe(0.5)
        net.fail_node(1)
        verdict_at = mon.await_verdict(1, 0.7)
        assert verdict_at == pytest.approx(2.5)   # last lease 0.5 + 2.0
        assert mon.is_dead(1)
        # Already-dead verdicts are immediate.
        assert mon.await_verdict(1, 3.0) == 3.0

    def test_node_lost_is_a_device_lost(self):
        exc = NodeLost(3)
        assert isinstance(exc, DeviceLost)
        assert exc.unit == "node"
        assert exc.node_id == 3
        assert "node 3" in str(exc)


class TestClusterNetworkFaults:
    def test_send_over_dead_link_raises_structured_error(self):
        net = ClusterNetwork(3)
        net.links[2].set_down(True)
        with pytest.raises(SyncPathError) as err:
            net.send(0, 2, 1000.0, 0.0, op="ps_push")
        assert err.value.op == "ps_push"
        assert err.value.devices == (0, 2)
        assert err.value.link_name == "eth[2]"
        assert not err.value.transient

    def test_retry_absorbs_flaky_link(self):
        net = ClusterNetwork(2)
        net.links[1].fail_next(2)
        retry = ClusterRecoveryPolicy(mode="retry").transfer_retry()
        start, end = net.send(0, 1, 1000.0, 0.0, retry=retry)
        assert end > start >= 0.0

    def test_retry_exhaustion_surfaces_transient_error(self):
        net = ClusterNetwork(2)
        net.links[1].fail_next(10)
        retry = ClusterRecoveryPolicy(
            mode="retry", max_transfer_retries=2
        ).transfer_retry()
        with pytest.raises(SyncPathError) as err:
            net.send(0, 1, 1000.0, 0.0, op="ps_pull", retry=retry)
        assert err.value.transient

    def test_fail_node_removes_from_topology(self):
        net = ClusterNetwork(3)
        assert Topology.from_cluster(net).devices == (0, 1, 2)
        net.fail_node(1)
        assert Topology.from_cluster(net).devices == (0, 2)


class TestParameterServerReplication:
    def test_push_with_duplicate_words_conserves_counts(self):
        # Regression: fancy-index += silently dropped duplicate word
        # columns; np.add.at must apply every occurrence.
        server, _, phi = make_server()
        words = np.array([4, 4, 9, 4], dtype=np.int64)
        delta = np.ones((phi.shape[0], words.size), dtype=np.int64)
        before = server.phi.sum()
        server.push(0, words, delta, 0.0)
        assert server.phi.sum() == before + delta.sum()
        assert np.array_equal(
            server.phi[:, 4], phi[:, 4] + 3
        )

    def test_replication_keeps_copies_identical(self):
        server, _, _ = make_server()
        words = np.arange(10, dtype=np.int64)
        delta = np.full((6, 10), 2, dtype=np.int64)
        server.push(1, words, delta, 0.0)
        for s in range(server.num_shards):
            assert np.array_equal(server._primary[s], server._replica[s])

    def test_failover_read_is_bit_exact(self):
        server, net, _ = make_server()
        words = np.arange(server.num_words, dtype=np.int64)
        healthy, _ = server.pull(1, words, 0.0)
        net.fail_node(0)   # primary of shard 0 gone
        failover, _ = server.pull(1, words, 0.0)
        assert np.array_equal(healthy, failover)
        assert any(e["kind"] == "failover_read" for e in server.events)

    def test_failover_push_applies_to_replica(self):
        server, net, _ = make_server()
        net.fail_node(0)
        words = np.arange(server.num_words, dtype=np.int64)
        delta = np.ones((6, words.size), dtype=np.int64)
        before = server.phi.sum()
        server.push(1, words, delta, 0.0)
        assert server.phi.sum() == before + delta.sum()
        assert any(e["kind"] == "failover_push" for e in server.events)

    def test_corruption_detected_and_repaired(self):
        server, _, phi = make_server()
        server.corrupt_shard(0)
        assert server.phi.sum() != phi.sum()   # corruption visible
        server.verify()
        assert np.array_equal(server.phi, phi)
        repairs = [e for e in server.events if e["kind"] == "shard_repair"]
        assert repairs and repairs[0]["from"] == "replica"

    def test_corrupt_shard_rejects_node_without_primaries(self):
        server, net, _ = make_server(num_nodes=4)
        with pytest.raises(ValueError, match="primaries"):
            server.corrupt_shard(17)

    def test_reshard_conserves_and_relocates(self):
        server, net, phi = make_server()
        net.fail_node(1)
        bytes_moved, done = server.reshard(phi, 0.0)
        assert bytes_moved > 0
        assert done > 0.0
        assert np.array_equal(server.phi, phi)
        assert 1 not in server._primary_node
        assert 1 not in server._replica_node
        assert server.bytes_resharded == bytes_moved


def small_star(corpus, hyper, **kwargs):
    kwargs.setdefault("num_workers", 4)
    kwargs.setdefault("seed", 0)
    return LDAStar(corpus, hyper, **kwargs)


class TestElasticNodeLoss:
    def test_chaos_run_matches_fault_free_bit_exactly(
        self, small_corpus, hyper8
    ):
        clean = small_star(small_corpus, hyper8).train(iterations=6)
        star = small_star(small_corpus, hyper8)
        res = star.train(
            iterations=6, recovery="elastic",
            fault_plan=cluster_chaos_plan(4),
        )
        assert np.array_equal(res.phi, clean.phi)
        assert res.phi.sum() == small_corpus.num_tokens
        assert res.repartitions == 1
        assert star.membership.dead_nodes == [2]
        kinds = {e["kind"] for e in star.server.events}
        # Workers ahead of the dead one in the round exercised failover
        # before the detector verdict aborted the iteration.
        assert {"failover_read", "reshard"} <= kinds

    def test_faulted_runs_are_deterministic(self, small_corpus, hyper8):
        runs = []
        for _ in range(2):
            star = small_star(small_corpus, hyper8)
            res = star.train(
                iterations=6, recovery="elastic",
                fault_plan=cluster_chaos_plan(4),
            )
            runs.append((res.phi, list(star.membership.timeline)))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_recovery_none_fails_with_timeline(self, small_corpus, hyper8):
        with pytest.raises(TrainingFailure) as err:
            small_star(small_corpus, hyper8).train(
                iterations=6, fault_plan=cluster_chaos_plan(4),
            )
        exc = err.value
        assert "node 2" in str(exc)
        assert isinstance(exc.cause, NodeLost)
        assert (2.0, 2, "suspect", "dead") in [
            tuple(e) for e in exc.membership_events
        ]
        assert any(e["kind"] == "node_failure" for e in exc.fault_events)

    def test_retry_mode_cannot_replace_a_node(self, small_corpus, hyper8):
        with pytest.raises(TrainingFailure, match="node 2 was lost"):
            small_star(small_corpus, hyper8).train(
                iterations=6, recovery="retry",
                fault_plan=cluster_chaos_plan(4),
            )

    def test_eth_retry_exhaustion_is_structured(self, small_corpus, hyper8):
        # More consecutive transient failures than the retry budget can
        # absorb, with rollback disabled: the transient error surfaces
        # as a TrainingFailure carrying the membership timeline.
        plan = FaultPlan(faults=(
            FaultSpec(kind="eth_link_flaky", iteration=2, link="eth[1]",
                      count=64),
        ))
        policy = ClusterRecoveryPolicy(
            mode="retry", max_transfer_retries=1, max_rollbacks=0
        )
        with pytest.raises(TrainingFailure) as err:
            small_star(small_corpus, hyper8).train(
                iterations=6, recovery=policy, fault_plan=plan,
            )
        exc = err.value
        assert isinstance(exc.cause, SyncPathError)
        assert exc.cause.transient
        assert len(exc.membership_events) == 4  # the four join entries

    def test_shard_corruption_heals_in_flight(self, small_corpus, hyper8):
        clean = small_star(small_corpus, hyper8).train(iterations=5)
        plan = FaultPlan(faults=(
            FaultSpec(kind="ps_shard_corruption", iteration=2, node=1),
        ))
        star = small_star(small_corpus, hyper8)
        res = star.train(iterations=5, recovery="retry", fault_plan=plan)
        assert np.array_equal(res.phi, clean.phi)
        assert res.rollbacks == 0   # repaired by checksums, not rollback
        assert any(
            e["kind"] == "shard_repair" for e in star.server.events
        )

    def test_elastic_run_charges_recovery_time(self, small_corpus, hyper8):
        clean = small_star(small_corpus, hyper8).train(iterations=6)
        faulted = small_star(small_corpus, hyper8).train(
            iterations=6, recovery="elastic",
            fault_plan=cluster_chaos_plan(4),
        )
        # The failure-detector lease (dead_after = 2 simulated seconds)
        # dominates; a recovered run must be visibly slower.
        assert faulted.total_sim_seconds > clean.total_sim_seconds + 1.0


class TestClusterPlanValidation:
    def test_cluster_kinds_roundtrip(self):
        plan = cluster_chaos_plan(4)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert plan.needs_cluster and not plan.needs_machine

    def test_missing_node_names_the_entry(self):
        with pytest.raises(ValueError, match=r"fault #0 \(node_failure\)"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "node_failure", "iteration": 2}]}
            )

    def test_eth_degraded_requires_scale(self):
        with pytest.raises(ValueError, match="scale"):
            FaultPlan.from_dict({"faults": [
                {"kind": "eth_link_degraded", "iteration": 1,
                 "link": "eth[0]"}
            ]})

    def test_injector_requires_cluster_for_cluster_kinds(self):
        from repro.faults.injector import FaultInjector

        with pytest.raises(ValueError, match="cluster"):
            FaultInjector(cluster_chaos_plan(4))

    def test_injector_requires_server_for_corruption(self):
        from repro.faults.injector import FaultInjector

        plan = FaultPlan(faults=(
            FaultSpec(kind="ps_shard_corruption", iteration=1, node=0),
        ))
        with pytest.raises(ValueError, match="parameter server"):
            FaultInjector(plan, cluster=ClusterNetwork(2))


class TestClusterChaosCLI:
    def _write_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(cluster_chaos_plan(4).to_dict()))
        return str(path)

    def test_elastic_run_completes(self, capsys, tmp_path):
        rc = main([
            "train", "--algo", "ldastar", "--synthetic", "nytimes",
            "--tokens", "3000", "--topics", "8", "--iterations", "6",
            "--workers", "4", "--faults", self._write_plan(tmp_path),
            "--recovery", "elastic",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 repartition(s)" in out

    def test_none_mode_names_the_dead_node(self, capsys, tmp_path):
        rc = main([
            "train", "--algo", "ldastar", "--synthetic", "nytimes",
            "--tokens", "3000", "--topics", "8", "--iterations", "6",
            "--workers", "4", "--faults", self._write_plan(tmp_path),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "node 2" in err
        assert "membership timeline" in err
        assert "suspect -> dead" in err

    def test_cluster_kinds_rejected_for_culda(self, capsys, tmp_path):
        rc = main([
            "train", "--algo", "culda", "--synthetic", "nytimes",
            "--tokens", "3000", "--iterations", "3",
            "--faults", self._write_plan(tmp_path),
            "--recovery", "elastic",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "fault #0 (node_failure)" in err
        assert "--algo ldastar" in err

    def test_gpu_kinds_rejected_for_ldastar(self, capsys, tmp_path):
        path = tmp_path / "gpu.json"
        path.write_text(json.dumps({"faults": [
            {"kind": "device_failure", "iteration": 1, "device": 0}
        ]}))
        rc = main([
            "train", "--algo", "ldastar", "--synthetic", "nytimes",
            "--tokens", "3000", "--topics", "8", "--iterations", "3",
            "--workers", "4", "--faults", str(path),
        ])
        assert rc == 2
        assert "--algo culda" in capsys.readouterr().err
