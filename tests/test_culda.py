"""End-to-end tests of the CuLDA trainer (the paper's system, Alg 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CuLDA, TrainConfig
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.gpusim.platform import pascal_platform, volta_platform


@pytest.fixture
def corpus():
    return generate_lda_corpus(
        SyntheticSpec(num_docs=80, num_words=300, avg_doc_length=80,
                      num_topics=6, name="e2e"),
        seed=21,
    )


class TestBasicTraining:
    def test_returns_consistent_result(self, corpus):
        r = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=12, iterations=5, seed=0),
        ).train()
        assert len(r.iterations) == 5
        assert r.num_tokens == corpus.num_tokens
        assert r.phi.shape == (12, corpus.num_words)
        assert r.phi.sum() == corpus.num_tokens
        assert r.theta.num_docs == corpus.num_docs
        assert r.theta.data.sum() == corpus.num_tokens
        assert r.total_sim_seconds > 0
        assert r.avg_tokens_per_sec > 0

    def test_theta_rows_sum_to_doc_lengths(self, corpus):
        r = CuLDA(
            corpus, pascal_platform(2),
            TrainConfig(num_topics=8, iterations=3, seed=1),
        ).train()
        sums = np.zeros(corpus.num_docs, dtype=np.int64)
        np.add.at(
            sums,
            np.repeat(np.arange(corpus.num_docs), r.theta.row_lengths()),
            r.theta.data,
        )
        assert np.array_equal(sums, corpus.doc_lengths)

    def test_likelihood_improves_over_training(self, corpus):
        r_short = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=12, iterations=1, seed=0),
        ).train()
        r_long = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=12, iterations=15, seed=0),
        ).train()
        assert r_long.final_log_likelihood > r_short.final_log_likelihood

    def test_likelihood_every(self, corpus):
        r = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=6, seed=0, likelihood_every=2),
        ).train()
        lls = [it.log_likelihood_per_token for it in r.iterations]
        assert lls[1] is not None and lls[3] is not None
        assert lls[0] is None
        assert lls[-1] is not None  # always recorded at the end

    def test_summary_and_top_words(self, corpus):
        r = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2, seed=0),
        ).train()
        text = r.summary()
        assert "tokens/sec" in text and "Pascal" in text
        top = r.top_words(0, n=5)
        assert len(top) == 5
        with pytest.raises(IndexError):
            r.top_words(99)

    def test_breakdown_kinds_present(self, corpus):
        r = CuLDA(
            corpus, pascal_platform(2),
            TrainConfig(num_topics=8, iterations=3, seed=0),
        ).train()
        for kind in ("sampling", "update_theta", "update_phi", "sync"):
            assert r.breakdown.get(kind, 0) > 0
        assert r.breakdown["sampling"] == max(
            r.breakdown[k] for k in ("sampling", "update_theta", "update_phi")
        )


class TestDeterminism:
    def test_same_seed_same_model(self, corpus):
        cfg = TrainConfig(num_topics=8, iterations=4, seed=7)
        a = CuLDA(corpus, pascal_platform(2), cfg).train()
        b = CuLDA(corpus, pascal_platform(2), cfg).train()
        assert np.array_equal(a.phi, b.phi)
        assert a.theta == b.theta

    def test_different_seed_different_model(self, corpus):
        a = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=8, iterations=4, seed=1)).train()
        b = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=8, iterations=4, seed=2)).train()
        assert not np.array_equal(a.phi, b.phi)

    @pytest.mark.parametrize("gpus,m", [(1, 4), (2, 2), (4, 1)])
    def test_gpu_count_invariance(self, corpus, gpus, m):
        """The paper-level correctness property: at fixed C = M × G, the
        trained model is bit-identical for any GPU count."""
        cfg = TrainConfig(num_topics=8, iterations=3, seed=3, chunks_per_gpu=m)
        r = CuLDA(corpus, pascal_platform(gpus), cfg).train()
        ref_cfg = TrainConfig(num_topics=8, iterations=3, seed=3, chunks_per_gpu=4)
        ref = CuLDA(corpus, pascal_platform(1), ref_cfg).train()
        assert np.array_equal(r.phi, ref.phi)
        assert r.theta == ref.theta


class TestScheduleSelection:
    def test_small_corpus_picks_resident(self, corpus):
        r = CuLDA(corpus, pascal_platform(2),
                  TrainConfig(num_topics=8, iterations=2, seed=0)).train()
        assert r.chunks_per_gpu == 1
        assert r.plan_chunks == 2

    def test_forced_streaming_matches_resident_model(self, corpus):
        """WorkSchedule1 and WorkSchedule2 must be statistically
        identical — only the timing differs."""
        res = CuLDA(corpus, pascal_platform(2),
                    TrainConfig(num_topics=8, iterations=3, seed=5,
                                chunks_per_gpu=1)).train()
        # Same C=2 via 1 GPU x M=2 streaming.
        stream = CuLDA(corpus, pascal_platform(1),
                       TrainConfig(num_topics=8, iterations=3, seed=5,
                                   chunks_per_gpu=2)).train()
        assert np.array_equal(res.phi, stream.phi)

    def test_no_overlap_is_slower(self, corpus):
        base = TrainConfig(num_topics=8, iterations=3, seed=0, chunks_per_gpu=3)
        with_overlap = CuLDA(corpus, pascal_platform(1), base).train()
        from dataclasses import replace

        no_overlap = CuLDA(
            corpus, pascal_platform(1), replace(base, overlap_transfers=False)
        ).train()
        assert with_overlap.total_sim_seconds < no_overlap.total_sim_seconds

    def test_cpu_gather_sync_same_model(self, corpus):
        a = CuLDA(corpus, pascal_platform(2),
                  TrainConfig(num_topics=8, iterations=3, seed=5)).train()
        from dataclasses import replace

        b = CuLDA(corpus, pascal_platform(2),
                  TrainConfig(num_topics=8, iterations=3, seed=5,
                              sync_algorithm="cpu_gather")).train()
        assert np.array_equal(a.phi, b.phi)

    def test_unknown_sync_rejected(self, corpus):
        with pytest.raises(ValueError):
            CuLDA(corpus, pascal_platform(2),
                  TrainConfig(num_topics=8, iterations=1, seed=0,
                              sync_algorithm="bogus")).train()


class TestScalingBehaviour:
    def test_more_gpus_faster_at_scale(self):
        """Multi-GPU wins once per-GPU work dwarfs the φ sync (the
        regime Fig 9 evaluates)."""
        from repro.corpus.synthetic import nytimes_like

        c = nytimes_like(num_tokens=120_000, num_topics=8, seed=4,
                         vocab_cap=2048)
        cfg = TrainConfig(num_topics=32, iterations=4, seed=0)
        t1 = CuLDA(c, pascal_platform(1), cfg).train().total_sim_seconds
        t2 = CuLDA(c, pascal_platform(2), cfg).train().total_sim_seconds
        assert t2 < t1

    def test_tiny_problem_does_not_scale(self, corpus):
        """With ~6k tokens the K×V synchronization dominates and extra
        GPUs cannot help — the honest flip side of Fig 9."""
        cfg = dict(num_topics=16, iterations=4, seed=0)
        t1 = CuLDA(corpus, pascal_platform(1),
                   TrainConfig(**cfg)).train().total_sim_seconds
        t4 = CuLDA(corpus, pascal_platform(4),
                   TrainConfig(**cfg)).train().total_sim_seconds
        assert t4 > 0.5 * t1  # nowhere near a 4x win

    def test_volta_faster_than_pascal(self, corpus):
        cfg = TrainConfig(num_topics=16, iterations=4, seed=0)
        tp = CuLDA(corpus, pascal_platform(1), cfg).train().total_sim_seconds
        tv = CuLDA(corpus, volta_platform(1), cfg).train().total_sim_seconds
        assert tv < tp

    def test_throughput_rises_with_sparsification(self):
        """Fig 7's ramp on a twin corpus: later iterations at least as
        fast as the first."""
        from repro.corpus.synthetic import nytimes_like

        c = nytimes_like(num_tokens=30_000, num_topics=8, seed=2)
        r = CuLDA(c, pascal_platform(1),
                  TrainConfig(num_topics=32, iterations=12, seed=0)).train()
        first = r.iterations[0].tokens_per_sec
        last = r.iterations[-1].tokens_per_sec
        assert last >= 0.95 * first
        assert r.iterations[-1].mean_kd <= r.iterations[0].mean_kd


class TestCompression:
    def test_compressed_and_wide_agree_statistically(self, corpus):
        from dataclasses import replace

        base = TrainConfig(num_topics=8, iterations=3, seed=9)
        a = CuLDA(corpus, pascal_platform(1), base).train()
        b = CuLDA(corpus, pascal_platform(1),
                  replace(base, compressed=False)).train()
        # Identical draws (same RNG, same math) — compression is lossless
        # at this scale.
        assert np.array_equal(a.phi, b.phi)

    def test_compression_rejects_huge_k(self, corpus):
        with pytest.raises(ValueError, match="16-bit"):
            CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=70_000, iterations=1))

    def test_machine_without_gpus_rejected(self, corpus):
        from repro.gpusim.platform import CPU_E5_2690V4, Machine

        with pytest.raises(ValueError):
            CuLDA(corpus, Machine(CPU_E5_2690V4, []), TrainConfig(num_topics=8))


class TestPeakMemory:
    def test_peak_recorded_and_bounded(self, corpus):
        m = pascal_platform(2)
        r = CuLDA(corpus, m,
                  TrainConfig(num_topics=8, iterations=2, seed=0)).train()
        assert 0 < r.peak_device_bytes <= m.gpus[0].spec.mem_capacity_bytes

    def test_streaming_peak_below_resident_total(self, corpus):
        """Streaming (M>1) holds at most ~2 chunk slots, so its peak is
        below loading the whole corpus resident in one chunk."""
        resident = CuLDA(corpus, pascal_platform(1),
                         TrainConfig(num_topics=8, iterations=1, seed=0,
                                     chunks_per_gpu=1)).train()
        streaming = CuLDA(corpus, pascal_platform(1),
                          TrainConfig(num_topics=8, iterations=1, seed=0,
                                      chunks_per_gpu=6)).train()
        assert streaming.peak_device_bytes < resident.peak_device_bytes


class TestWarmStart:
    def test_warm_start_speeds_convergence(self, corpus):
        """A warm start from a trained φ must begin at (much) higher
        likelihood than a cold start."""
        cfg = TrainConfig(num_topics=12, iterations=20, seed=0)
        first = CuLDA(corpus, pascal_platform(1), cfg).train()
        cold = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=12, iterations=1, seed=1,
                        likelihood_every=1),
        ).train()
        warm = CuLDA(
            corpus, pascal_platform(1),
            TrainConfig(num_topics=12, iterations=1, seed=1,
                        likelihood_every=1),
            warm_start_phi=first.phi,
        ).train()
        assert warm.final_log_likelihood > cold.final_log_likelihood + 0.2

    def test_warm_start_shape_validated(self, corpus):
        with pytest.raises(ValueError, match="warm_start_phi"):
            CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=12),
                  warm_start_phi=np.zeros((3, 3)))

    def test_warm_start_counts_still_consistent(self, corpus):
        base = CuLDA(corpus, pascal_platform(1),
                     TrainConfig(num_topics=8, iterations=3, seed=0)).train()
        warm = CuLDA(corpus, pascal_platform(2),
                     TrainConfig(num_topics=8, iterations=2, seed=5),
                     warm_start_phi=base.phi).train()
        assert warm.phi.sum() == corpus.num_tokens


class TestTopicsExport:
    def test_topics_in_corpus_order(self, corpus):
        """result.topics must align with the original token order: the
        per-document histograms of the exported topics match θ exactly,
        and φ recounted from (topics, words) matches the exported φ."""
        r = CuLDA(corpus, pascal_platform(2),
                  TrainConfig(num_topics=8, iterations=3, seed=0)).train()
        assert r.topics.shape == (corpus.num_tokens,)
        # φ recount from corpus-order pairs.
        phi = np.zeros_like(r.phi, dtype=np.int64)
        np.add.at(
            phi,
            (r.topics.astype(np.int64), corpus.token_word.astype(np.int64)),
            1,
        )
        assert np.array_equal(phi, r.phi.astype(np.int64))
        # θ recount per document.
        theta = np.zeros((corpus.num_docs, 8), dtype=np.int64)
        np.add.at(
            theta,
            (corpus.token_doc.astype(np.int64), r.topics.astype(np.int64)),
            1,
        )
        assert np.array_equal(theta, r.theta.to_dense())

    def test_topics_identical_across_gpu_counts(self, corpus):
        cfg = dict(num_topics=8, iterations=2, seed=3)
        a = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(**cfg, chunks_per_gpu=2)).train()
        b = CuLDA(corpus, pascal_platform(2),
                  TrainConfig(**cfg, chunks_per_gpu=1)).train()
        assert np.array_equal(a.topics, b.topics)
