"""Tests for LDA model state: hyperparameters, SparseTheta, invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import (
    LDAHyperParams,
    LDAState,
    SparseTheta,
    check_state_invariants,
)


class TestHyperParams:
    def test_paper_defaults(self):
        h = LDAHyperParams(num_topics=100)
        assert h.alpha == pytest.approx(0.5)  # 50/K (paper §2.1)
        assert h.beta == 0.01

    def test_explicit_alpha(self):
        h = LDAHyperParams(num_topics=10, alpha=0.3)
        assert h.alpha == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=1)
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=4, alpha=-0.5)
        with pytest.raises(ValueError):
            LDAHyperParams(num_topics=4, beta=0.0)

    def test_topic_dtype_compression(self):
        h = LDAHyperParams(num_topics=1024)
        assert h.topic_dtype(True) == np.uint16
        assert h.topic_dtype(False) == np.int32

    def test_compression_requires_small_k(self):
        h = LDAHyperParams(num_topics=70_000)
        with pytest.raises(ValueError, match="16-bit"):
            h.topic_dtype(True)
        assert h.topic_dtype(False) == np.int32


class TestSparseTheta:
    def test_from_assignments_counts(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        # Assign all tokens topic 2.
        topics = np.full(chunk.num_tokens, 2, dtype=np.uint16)
        theta = SparseTheta.from_assignments(chunk, topics, 8)
        dense = theta.to_dense()
        assert np.array_equal(dense[:, 2], tiny_corpus.doc_lengths)
        assert dense.sum() == tiny_corpus.num_tokens
        assert theta.nnz == tiny_corpus.num_docs

    def test_from_assignments_mixed(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        rng = np.random.default_rng(0)
        topics = rng.integers(0, 4, chunk.num_tokens).astype(np.uint16)
        theta = SparseTheta.from_assignments(chunk, topics, 4)
        # Dense recount must match a brute-force histogram.
        brute = np.zeros((chunk.num_docs, 4), dtype=np.int64)
        for pos in range(chunk.num_tokens):
            brute[chunk.token_doc[pos], topics[pos]] += 1
        assert np.array_equal(theta.to_dense(), brute)

    def test_row_view(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        topics = np.zeros(chunk.num_tokens, dtype=np.uint16)
        theta = SparseTheta.from_assignments(chunk, topics, 4)
        t, c = theta.row(0)
        assert t.tolist() == [0]
        assert c.tolist() == [4]

    def test_row_lengths_eq5(self, small_corpus):
        """Eq 5: Σ_k θ_dk = DocLen_d, and K_d <= min(DocLen_d, K)."""
        chunk = small_corpus.to_chunk()
        rng = np.random.default_rng(3)
        K = 16
        topics = rng.integers(0, K, chunk.num_tokens).astype(np.uint16)
        theta = SparseTheta.from_assignments(chunk, topics, K)
        lengths = chunk.doc_lengths
        kd = theta.row_lengths()
        assert np.all(kd <= np.minimum(lengths, K))
        sums = np.zeros(chunk.num_docs, dtype=np.int64)
        np.add.at(sums, np.repeat(np.arange(chunk.num_docs), kd), theta.data)
        assert np.array_equal(sums, lengths)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="indptr"):
            SparseTheta(np.array([1, 2]), np.array([0]), np.array([1]), 4)
        with pytest.raises(ValueError, match="align"):
            SparseTheta(np.array([0, 2]), np.array([0, 1]), np.array([1]), 4)
        with pytest.raises(ValueError, match="out of range"):
            SparseTheta(np.array([0, 1]), np.array([9]), np.array([1]), 4)
        with pytest.raises(ValueError, match="positive"):
            SparseTheta(np.array([0, 1]), np.array([0]), np.array([0]), 4)

    def test_equality(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        topics = np.ones(chunk.num_tokens, dtype=np.uint16)
        a = SparseTheta.from_assignments(chunk, topics, 4)
        b = SparseTheta.from_assignments(chunk, topics, 4)
        assert a == b
        c = SparseTheta.from_assignments(chunk, topics, 8)
        assert a != c

    def test_compressed_vs_uncompressed_same_content(self, small_corpus):
        chunk = small_corpus.to_chunk()
        rng = np.random.default_rng(5)
        topics = rng.integers(0, 8, chunk.num_tokens)
        a = SparseTheta.from_assignments(chunk, topics, 8, compressed=True)
        b = SparseTheta.from_assignments(chunk, topics, 8, compressed=False)
        assert a.indices.dtype == np.uint16
        assert b.indices.dtype == np.int32
        assert a == b  # equality compares values, not dtypes

    def test_nbytes_smaller_when_compressed(self, small_corpus):
        chunk = small_corpus.to_chunk()
        rng = np.random.default_rng(5)
        topics = rng.integers(0, 8, chunk.num_tokens)
        a = SparseTheta.from_assignments(chunk, topics, 8, compressed=True)
        b = SparseTheta.from_assignments(chunk, topics, 8, compressed=False)
        assert a.nbytes < b.nbytes


class TestLDAState:
    def test_initialize_invariants(self, small_corpus, hyper8):
        state = LDAState.initialize(small_corpus.to_chunk(), hyper8, seed=0)
        check_state_invariants(state)

    def test_initialize_deterministic(self, small_corpus, hyper8):
        c = small_corpus.to_chunk()
        a = LDAState.initialize(c, hyper8, seed=5)
        b = LDAState.initialize(c, hyper8, seed=5)
        assert np.array_equal(a.topics, b.topics)
        assert np.array_equal(a.phi, b.phi)

    def test_invariant_checker_catches_breakage(self, small_corpus, hyper8):
        state = LDAState.initialize(small_corpus.to_chunk(), hyper8, seed=0)
        state.phi[0, 0] += 1  # corrupt
        with pytest.raises(AssertionError):
            check_state_invariants(state)

    def test_invariant_checker_catches_topic_swap(self, small_corpus, hyper8):
        state = LDAState.initialize(small_corpus.to_chunk(), hyper8, seed=0)
        # Change an assignment without updating counts.
        state.topics = state.topics.copy()
        state.topics[0] = (int(state.topics[0]) + 1) % hyper8.num_topics
        with pytest.raises(AssertionError):
            check_state_invariants(state)

    def test_n_k_totals(self, small_corpus, hyper8):
        state = LDAState.initialize(small_corpus.to_chunk(), hyper8, seed=1)
        assert state.n_k.sum() == small_corpus.num_tokens
