"""Distributed-equivalence suite for multi-node CuLDA.

The central claim of the hierarchical N×G trainer is that distribution
is *invisible to the numerics*: the corpus is chunked once over all
``W = N × G`` workers (so chunk ids and RNG streams are
layout-invariant) and φ is combined in exact integer arithmetic, so
synchronous training is **bit-identical** across

- worker layouts with the same total worker count (1×4 ≡ 2×2 ≡ 4×1),
- inter-node backends (``eth_ring`` ≡ ``param_server`` ≡ ``auto``),
- checkpoint/resume splits, including resuming a single-machine
  checkpoint on a multi-node cluster and vice versa.

Bounded staleness (``staleness > 0``) relaxes the schedule but must
conserve tokens every iteration (read-your-writes) and converge to a
likelihood within tolerance of the synchronous run; a mid-window
checkpoint must resume bit-identically from its extras.

``--nodes 1`` must degenerate *exactly* to the single-machine trainer:
same plan, same simulated measurements, same checkpoint bytes.

The Hypothesis section drives the cluster sync planner over randomized
topologies (node counts, dead nodes, degraded links, payload shapes)
and checks the planner's contract: ``auto`` picks the
measured-cheapest feasible backend, predictions equal measurements
(replay-exact cost model), and no plan or message ever touches a
detector-dead node.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.cluster.network import ClusterNetwork
from repro.cluster.paramserver import ShardedParameterServer
from repro.comm import (
    ClusterSyncContext,
    cluster_collective_names,
    cluster_sync_choices,
    get_cluster_collective,
    plan_cluster_sync,
)
from repro.core import CuLDA, DistributedCuLDA, TrainConfig
from repro.corpus.synthetic import pubmed_like
from repro.engine.recovery import TrainingFailure
from repro.faults.plan import FaultPlan, FaultSpec, cluster_chaos_plan
from repro.gpusim.errors import SyncPathError
from repro.gpusim.platform import make_machine

pytestmark = pytest.mark.distributed


@pytest.fixture(scope="module")
def corpus():
    return pubmed_like(12_000, 8, seed=3)


def _trainer(corpus, nodes, gpus, **config_kwargs):
    cfg = TrainConfig(num_topics=16, iterations=4, seed=0, **config_kwargs)
    return DistributedCuLDA(
        corpus,
        [make_machine("pascal", gpus) for _ in range(nodes)],
        config=cfg,
    )


def _assert_same_model(a, b):
    assert np.array_equal(a.phi, b.phi)
    assert np.array_equal(a.topics, b.topics)
    assert a.theta.indptr.tolist() == b.theta.indptr.tolist()
    assert np.array_equal(a.theta.data, b.theta.data)


# ----------------------------------------------------------------------
# Synchronous bit-identity
# ----------------------------------------------------------------------

class TestLayoutEquivalence:
    """Same total worker count ⇒ bit-identical model, any layout."""

    def test_bit_identical_across_layouts(self, corpus):
        r14 = CuLDA(
            corpus, make_machine("pascal", 4),
            TrainConfig(num_topics=16, iterations=4, seed=0),
        ).train()
        r22 = _trainer(corpus, 2, 2).train()
        r41 = _trainer(corpus, 4, 1).train()
        _assert_same_model(r14, r22)
        _assert_same_model(r14, r41)

    @pytest.mark.parametrize("backend", cluster_collective_names())
    def test_bit_identical_across_backends(self, corpus, backend):
        reference = _trainer(corpus, 2, 2).train()  # inter_sync=auto
        forced = _trainer(corpus, 2, 2, inter_sync=backend).train()
        _assert_same_model(reference, forced)

    def test_backends_conserve_tokens(self, corpus):
        for backend in cluster_collective_names():
            result = _trainer(corpus, 2, 2, inter_sync=backend).train()
            assert result.phi.sum() == corpus.num_tokens

    def test_result_shape_metadata(self, corpus):
        result = _trainer(corpus, 2, 2).train()
        assert result.num_gpus == 4
        assert result.num_workers == 2
        assert result.machine_name.startswith("2x ")
        assert result.network_bytes > 0
        assert result.phi.sum() == corpus.num_tokens


class TestCheckpointResume:
    """Resume is bit-identical — within a layout, across layouts, and
    across the single-machine/multi-node boundary."""

    def test_resume_mid_training(self, corpus, tmp_path):
        ck = tmp_path / "ck.npz"
        full = _trainer(corpus, 2, 2).train(
            save_every=2, checkpoint_path=str(ck)
        )
        resumed = _trainer(corpus, 2, 2).train(resume=str(ck))
        _assert_same_model(full, resumed)

    @pytest.mark.parametrize("backend", cluster_collective_names())
    def test_resume_across_backends(self, corpus, tmp_path, backend):
        """A checkpoint written under one backend resumes under another:
        the backends are exact, so the run-state is backend-free."""
        ck = tmp_path / "ck.npz"
        full = _trainer(corpus, 2, 2, inter_sync="eth_ring").train(
            save_every=2, checkpoint_path=str(ck)
        )
        resumed = _trainer(corpus, 2, 2, inter_sync=backend).train(
            resume=str(ck)
        )
        _assert_same_model(full, resumed)

    def test_resume_across_layouts(self, corpus, tmp_path):
        """A 1×4 checkpoint finishes identically on a 2×2 cluster and
        a 4×1 cluster (same W ⇒ same chunk plan and RNG streams)."""
        ck = tmp_path / "ck.npz"
        full = CuLDA(
            corpus, make_machine("pascal", 4),
            TrainConfig(num_topics=16, iterations=4, seed=0),
        ).train(save_every=2, checkpoint_path=str(ck))
        r22 = _trainer(corpus, 2, 2).train(resume=str(ck))
        r41 = _trainer(corpus, 4, 1).train(resume=str(ck))
        _assert_same_model(full, r22)
        _assert_same_model(full, r41)

    def test_multinode_checkpoint_resumes_on_single_machine(
        self, corpus, tmp_path
    ):
        ck = tmp_path / "ck.npz"
        full = _trainer(corpus, 2, 2).train(
            save_every=2, checkpoint_path=str(ck)
        )
        resumed = CuLDA(
            corpus, make_machine("pascal", 4),
            TrainConfig(num_topics=16, iterations=4, seed=0),
        ).train(resume=str(ck))
        _assert_same_model(full, resumed)


# ----------------------------------------------------------------------
# Bounded staleness
# ----------------------------------------------------------------------

class TestStaleness:
    def test_conserves_tokens_every_iteration(self, corpus):
        algo = _trainer(corpus, 2, 2, staleness=2)
        state = algo.init_state()
        for _ in range(4):
            algo.run_iteration(state)
            algo.capture_state(state)
            # Read-your-writes: the global count (Σ per-node counts)
            # always accounts for every token, sync round or not.
            assert state.phi.sum() == corpus.num_tokens

    def test_async_faster_than_sync(self, corpus):
        sync = _trainer(corpus, 2, 2, staleness=0).train()
        lax = _trainer(corpus, 2, 2, staleness=3).train()
        assert lax.total_sim_seconds < sync.total_sim_seconds

    def test_async_converges_near_sync(self, corpus):
        """Bounded staleness costs bounded progress: the async run's
        final likelihood beats the synchronous trajectory at half the
        iteration count, and lands within a modest band of the
        synchronous endpoint (it samples against φ at most s rounds
        old, not against a frozen model)."""
        iters = 12
        cfg = dict(num_topics=16, seed=0, likelihood_every=1)
        sync = DistributedCuLDA(
            corpus, [make_machine("pascal", 2) for _ in range(2)],
            config=TrainConfig(staleness=0, iterations=iters, **cfg),
        ).train()
        lax = DistributedCuLDA(
            corpus, [make_machine("pascal", 2) for _ in range(2)],
            config=TrainConfig(staleness=2, iterations=iters, **cfg),
        ).train()
        sync_traj = [s.log_likelihood_per_token for s in sync.iterations]
        lax_final = lax.iterations[-1].log_likelihood_per_token
        assert lax_final > sync_traj[iters // 2 - 1]
        assert abs(lax_final - sync_traj[-1]) / abs(sync_traj[-1]) < 0.12

    def test_zero_staleness_matches_single_machine(self, corpus):
        single = CuLDA(
            corpus, make_machine("pascal", 4),
            TrainConfig(num_topics=16, iterations=4, seed=0),
        ).train()
        dist = _trainer(corpus, 2, 2, staleness=0).train()
        _assert_same_model(single, dist)

    def test_mid_window_resume_bit_identical(self, corpus, tmp_path):
        """A checkpoint taken between syncs carries the stale φ cache
        and per-node bases in its extras; resuming replays the exact
        remaining schedule."""
        ck = tmp_path / "ck.npz"
        kw = dict(num_topics=16, iterations=6, seed=0, staleness=2)
        full = DistributedCuLDA(
            corpus, [make_machine("pascal", 2) for _ in range(2)],
            config=TrainConfig(**kw),
        ).train(save_every=2, checkpoint_path=str(ck))
        resumed = DistributedCuLDA(
            corpus, [make_machine("pascal", 2) for _ in range(2)],
            config=TrainConfig(**kw),
        ).train(resume=str(ck))
        _assert_same_model(full, resumed)

    def test_negative_staleness_rejected(self, corpus):
        with pytest.raises(ValueError, match="staleness"):
            _trainer(corpus, 2, 2, staleness=-1)


# ----------------------------------------------------------------------
# --nodes 1 exact degeneration (regression: single-machine path)
# ----------------------------------------------------------------------

class TestSingleNodeDegeneration:
    """One node IS the single-machine trainer — plan, clock, bytes."""

    def test_same_model_and_measurements(self, corpus):
        cfg = TrainConfig(num_topics=16, iterations=3, seed=0)
        single = CuLDA(corpus, make_machine("pascal", 4), cfg).train()
        one_node = DistributedCuLDA(
            corpus, [make_machine("pascal", 4)], config=cfg
        ).train()
        _assert_same_model(single, one_node)
        assert one_node.total_sim_seconds == single.total_sim_seconds
        assert one_node.avg_tokens_per_sec == single.avg_tokens_per_sec
        assert one_node.plan_chunks == single.plan_chunks
        assert one_node.chunks_per_gpu == single.chunks_per_gpu
        assert one_node.breakdown == single.breakdown
        assert [s.sim_seconds for s in one_node.iterations] == [
            s.sim_seconds for s in single.iterations
        ]

    def test_same_checkpoint_bytes(self, corpus, tmp_path):
        cfg = TrainConfig(num_topics=16, iterations=2, seed=0)
        p_single = tmp_path / "single.npz"
        p_dist = tmp_path / "dist.npz"
        CuLDA(corpus, make_machine("pascal", 2), cfg).train(
            save_every=2, checkpoint_path=str(p_single)
        )
        DistributedCuLDA(
            corpus, [make_machine("pascal", 2)], config=cfg
        ).train(save_every=2, checkpoint_path=str(p_dist))
        assert p_single.read_bytes() == p_dist.read_bytes()

    def test_constructor_validation(self, corpus):
        with pytest.raises(ValueError, match="at least one machine"):
            DistributedCuLDA(corpus, [])
        with pytest.raises(ValueError, match="same GPU count"):
            DistributedCuLDA(
                corpus,
                [make_machine("pascal", 1), make_machine("pascal", 2)],
            )
        with pytest.raises(ValueError, match="unknown inter-node sync"):
            DistributedCuLDA(
                corpus, [make_machine("pascal", 1)] * 2,
                config=TrainConfig(num_topics=8, inter_sync="bogus"),
            )
        with pytest.raises(ValueError, match="network has"):
            DistributedCuLDA(
                corpus, [make_machine("pascal", 1)] * 2,
                network=ClusterNetwork(3),
            )


# ----------------------------------------------------------------------
# Hypothesis: the cluster sync planner over randomized topologies
# ----------------------------------------------------------------------

@st.composite
def cluster_cases(draw):
    """(num_nodes, dead nodes, per-node degrade scales, payload shape).

    Dead nodes are killed via ``fail_node`` (detector-visible, so the
    planner must exclude them); degraded links stay up but slow, which
    shifts the cost comparison without making anything infeasible. At
    least two nodes always survive so an inter-node exchange exists.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=5))
    dead = draw(
        st.sets(
            st.integers(min_value=0, max_value=num_nodes - 1),
            max_size=num_nodes - 2,
        )
    )
    scales = draw(
        st.lists(
            st.floats(min_value=0.25, max_value=1.0, allow_nan=False),
            min_size=num_nodes, max_size=num_nodes,
        )
    )
    shape = (
        draw(st.integers(min_value=1, max_value=8)),
        draw(st.integers(min_value=1, max_value=48)),
    )
    return num_nodes, frozenset(dead), scales, shape


def _build_network(num_nodes, dead, scales):
    net = ClusterNetwork(num_nodes)
    for n, scale in enumerate(scales):
        net.links[n].degrade(scale)
    for n in dead:
        net.fail_node(n)
    return net


def _measure(backend_name, num_nodes, dead, scales, shape, num_shards):
    """Force-execute one backend on a fresh identical network with all
    nodes ready at t=0; returns (completion time, network) or (None,
    network) when the backend has no usable path."""
    net = _build_network(num_nodes, dead, scales)
    server = ShardedParameterServer(
        np.zeros(shape, dtype=np.int64), num_shards, net
    )
    live = tuple(net.alive_nodes)
    counts = [
        np.full(shape, i + 1, dtype=np.int64) for i in range(len(live))
    ]
    ctx = ClusterSyncContext(
        network=net, nodes=live, node_counts=counts,
        pending=[c.copy() for c in counts], ready=[0.0] * len(live),
        server=server,
    )
    try:
        result = get_cluster_collective(backend_name).allreduce(ctx)
    except SyncPathError:
        return None, None, net
    return max(result.done), result.phi, net


class TestClusterPlannerProperties:
    @given(cluster_cases())
    @settings(max_examples=40, deadline=None)
    def test_auto_matches_measured_cheapest(self, case):
        num_nodes, dead, scales, shape = case
        measured = {}
        for name in cluster_collective_names():
            seconds, phi, _ = _measure(
                name, num_nodes, dead, scales, shape, num_nodes
            )
            if seconds is not None:
                measured[name] = seconds
                # Exactness holds on every topology, not just healthy ones.
                expect = sum(
                    np.full(shape, i + 1, dtype=np.int64)
                    for i in range(num_nodes - len(dead))
                )
                assert np.array_equal(phi, expect)
        assert measured, "a healthy majority must always have a path"

        net = _build_network(num_nodes, dead, scales)
        server = ShardedParameterServer(
            np.zeros(shape, dtype=np.int64), num_nodes, net
        )
        plan = plan_cluster_sync(net, shape, server=server)
        best = min(measured.values())
        # auto's pick must be measured-cheapest (ulp tolerance: the
        # estimate replays the schedule, so ties can only come from
        # float associativity, never from model error).
        assert measured[plan.algorithm] <= best * (1 + 1e-9)
        # ... and the replayed prediction equals the measurement.
        assert measured[plan.algorithm] == pytest.approx(
            plan.estimate.seconds, rel=1e-9, abs=1e-15
        )

    @given(cluster_cases())
    @settings(max_examples=40, deadline=None)
    def test_plans_and_traffic_avoid_dead_nodes(self, case):
        num_nodes, dead, scales, shape = case
        net = _build_network(num_nodes, dead, scales)
        server = ShardedParameterServer(
            np.zeros(shape, dtype=np.int64), num_nodes, net
        )
        plan = plan_cluster_sync(net, shape, server=server)
        assert not set(plan.nodes) & dead
        assert set(plan.nodes) == set(net.alive_nodes)

        for name in cluster_collective_names():
            _, _, used_net = _measure(
                name, num_nodes, dead, scales, shape, num_nodes
            )
            for op, src, dst, *_ in used_net.messages:
                assert src not in dead, f"{name}/{op} sent from dead {src}"
                assert dst not in dead, f"{name}/{op} sent to dead {dst}"

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_unreachable_alive_node_is_infeasible(self, num_nodes, which):
        """A NIC-down (but alive) node can neither be excluded nor
        reached — every backend is infeasible and the planner says so."""
        which %= num_nodes
        net = ClusterNetwork(num_nodes)
        net.links[which].set_down(True)
        with pytest.raises(SyncPathError):
            plan_cluster_sync(net, (4, 16))

    def test_forced_backend_is_forced(self):
        net = ClusterNetwork(3)
        plan = plan_cluster_sync(net, (4, 16), algorithm="param_server")
        assert plan.forced and plan.algorithm == "param_server"
        auto = plan_cluster_sync(net, (4, 16))
        assert not auto.forced

    def test_choices_list_registry(self):
        assert cluster_sync_choices() == ("auto", "eth_ring", "param_server")


# ----------------------------------------------------------------------
# Chaos: node loss, elastic recovery, migration properties
# ----------------------------------------------------------------------

def _node_plan(iteration, node):
    return FaultPlan(faults=(
        FaultSpec(kind="node_failure", iteration=iteration, node=node),
    ))


def _reference(corpus, **config_kwargs):
    cfg = TrainConfig(num_topics=16, iterations=4, seed=0, **config_kwargs)
    return CuLDA(corpus, make_machine("pascal", 4), cfg)


class TestNodeLossRecovery:
    """Elastic recovery keeps synchronous runs bit-identical to the
    fault-free run (the LDA* guarantee, extended to CuLDA's two-leg
    sync) and async runs token-conserving."""

    def test_node_death_mid_sync_bit_identical(self, corpus):
        clean = _trainer(corpus, 2, 2).train()
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=_node_plan(2, 1)
        )
        _assert_same_model(clean, chaos)
        assert chaos.repartitions == 1
        assert chaos.rollbacks == 0

    def test_chaos_plan_bit_identical(self, corpus):
        """The canonical cluster chaos plan (node death + flaky
        Ethernet) leaves the model untouched."""
        clean = _trainer(corpus, 2, 2).train()
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=cluster_chaos_plan(2)
        )
        _assert_same_model(clean, chaos)

    def test_gpu_death_inside_node_bit_identical(self, corpus):
        """A single GPU dying inside a node reuses the intra-node
        elastic re-partition; global device ids span machines."""
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=2, device=3),
        ))
        clean = _trainer(corpus, 2, 2).train()
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=plan
        )
        _assert_same_model(clean, chaos)

    def test_shard_corruption_healed_bit_identical(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="ps_shard_corruption", iteration=2, node=1),
        ))
        clean = _trainer(corpus, 2, 2).train()
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=plan
        )
        _assert_same_model(clean, chaos)

    def test_stall_charged_to_simulated_clock(self, corpus):
        clean = _trainer(corpus, 2, 2).train()
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=_node_plan(2, 1)
        )
        # Detection waits out the heartbeat lease (dead ≥ 2 s after the
        # node was last heard from), dwarfing the fault-free runtime.
        assert chaos.total_sim_seconds >= 2.0
        assert chaos.total_sim_seconds > clean.total_sim_seconds

    def test_node_death_mid_staleness_window(self, corpus):
        """Async mode: the dead node's staleness window drains
        deterministically and every token survives the migration."""
        chaos = _trainer(corpus, 2, 2, staleness=2).train(
            recovery="elastic", fault_plan=_node_plan(2, 0)
        )
        assert chaos.phi.sum() == corpus.num_tokens
        assert chaos.repartitions == 1
        assert np.isfinite(chaos.iterations[-1].log_likelihood_per_token)

    def test_recovery_none_fails_with_timeline(self, corpus):
        with pytest.raises(TrainingFailure) as err:
            _trainer(corpus, 2, 2).train(
                recovery="none", fault_plan=_node_plan(2, 1)
            )
        events = err.value.membership_events
        assert (0.5, 1, "alive", "suspect") in events
        assert (2.0, 1, "suspect", "dead") in events
        assert err.value.fault_events

    def test_checkpoint_across_recovery_resumes_cross_layout(
        self, corpus, tmp_path
    ):
        """A checkpoint written *after* a recovery (non-identity worker
        hosting in its extras) resumes bit-identically on the same
        layout, a different layout, and a single machine."""
        clean = _reference(corpus).train()
        ck = tmp_path / "ck.npz"
        chaos = _trainer(corpus, 2, 2).train(
            recovery="elastic", fault_plan=_node_plan(1, 1),
            save_every=2, checkpoint_path=str(ck),
        )
        _assert_same_model(clean, chaos)
        _assert_same_model(clean, _trainer(corpus, 2, 2).train(resume=str(ck)))
        _assert_same_model(clean, _trainer(corpus, 4, 1).train(resume=str(ck)))
        _assert_same_model(clean, _reference(corpus).train(resume=str(ck)))


@pytest.fixture(scope="module")
def small_corpus():
    return pubmed_like(2_000, 8, seed=5)


class TestMigrationProperties:
    @given(
        nodes=st.integers(min_value=2, max_value=3),
        gpus=st.integers(min_value=1, max_value=2),
        dead=st.integers(min_value=0, max_value=2),
        iteration=st.integers(min_value=1, max_value=3),
        staleness=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=10, deadline=None)
    def test_migration_conserves_tokens_avoids_dead_nodes(
        self, small_corpus, nodes, gpus, dead, iteration, staleness
    ):
        """Any elastic migration plan conserves tokens and never hosts
        a logical worker on a detector-dead node."""
        dead %= nodes
        algo = DistributedCuLDA(
            small_corpus,
            [make_machine("pascal", gpus) for _ in range(nodes)],
            config=TrainConfig(
                num_topics=8, iterations=4, seed=0, staleness=staleness
            ),
        )
        result = algo.train(
            recovery="elastic", fault_plan=_node_plan(iteration, dead)
        )
        assert result.phi.sum() == small_corpus.num_tokens
        dead_nodes = algo.membership.dead_nodes
        assert dead in dead_nodes
        assert not set(algo._worker_node) & set(dead_nodes)
        hosting = algo.server.parked("chunk_hosting")
        assert hosting is not None
        assert not set(hosting.tolist()) & set(dead_nodes)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCLIDistributed:
    ARGS = [
        "train", "--synthetic", "pubmed", "--tokens", "8000",
        "--topics", "8", "--iterations", "2", "--platform", "pascal",
    ]

    def test_multinode_train(self, capsys):
        rc = main(self.ARGS + ["--gpus", "2", "--nodes", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2x Pascal Platform" in out
        assert "(4 GPU(s))" in out

    def test_gpus_per_node_and_backend(self, capsys):
        rc = main(self.ARGS + [
            "--nodes", "2", "--gpus-per-node", "2",
            "--inter-sync", "param_server", "--staleness", "1",
        ])
        assert rc == 0
        assert "2x Pascal Platform" in capsys.readouterr().out

    def test_staleness_requires_multinode(self, capsys):
        rc = main(self.ARGS + ["--staleness", "1"])
        assert rc == 2
        assert "--nodes > 1" in capsys.readouterr().err

    def test_inter_sync_requires_multinode(self, capsys):
        rc = main(self.ARGS + ["--inter-sync", "eth_ring"])
        assert rc == 2

    def test_nodes_require_culda(self, capsys):
        rc = main(self.ARGS + ["--algo", "ldastar", "--nodes", "2"])
        assert rc == 2
        assert "--algo culda" in capsys.readouterr().err

    @staticmethod
    def _plan(tmp_path, faults):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"faults": faults}))
        return str(plan)

    def test_cluster_faults_need_cluster_substrate(self, capsys, tmp_path):
        plan = self._plan(
            tmp_path, [{"kind": "node_failure", "iteration": 1, "node": 0}]
        )
        rc = main(self.ARGS + ["--gpus", "2", "--faults", plan])
        assert rc == 2
        err = capsys.readouterr().err
        assert "fault #0 (node_failure)" in err
        assert "cluster substrate" in err

    def test_gpu_faults_need_gpu_substrate(self, capsys, tmp_path):
        plan = self._plan(
            tmp_path,
            [{"kind": "device_failure", "iteration": 1, "device": 0}],
        )
        rc = main(self.ARGS + ["--algo", "ldastar", "--faults", plan])
        assert rc == 2
        assert "fault #0 (device_failure)" in capsys.readouterr().err

    def test_multinode_gpu_fault_allowed(self, capsys, tmp_path):
        """Global device ids span machines: device 3 is node 1 GPU 1."""
        plan = self._plan(
            tmp_path,
            [{"kind": "device_failure", "iteration": 1, "device": 3}],
        )
        rc = main(self.ARGS + [
            "--nodes", "2", "--gpus-per-node", "2",
            "--faults", plan, "--recovery", "elastic",
        ])
        assert rc == 0
        assert "1 repartition(s)" in capsys.readouterr().out

    def test_multinode_elastic_node_recovery(self, capsys, tmp_path):
        plan = self._plan(
            tmp_path, [{"kind": "node_failure", "iteration": 1, "node": 1}]
        )
        rc = main(self.ARGS + [
            "--nodes", "2", "--gpus-per-node", "2",
            "--faults", plan, "--recovery", "elastic",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 fault event(s)" in out
        assert "1 repartition(s)" in out

    def test_multinode_recovery_none_prints_timeline(self, capsys, tmp_path):
        plan = self._plan(
            tmp_path, [{"kind": "node_failure", "iteration": 1, "node": 1}]
        )
        rc = main(self.ARGS + [
            "--nodes", "2", "--gpus-per-node", "2",
            "--faults", plan, "--recovery", "none",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "membership timeline" in err
        assert "suspect -> dead" in err
