"""Tests for the analysis layer: roofline (Table 1), metrics, sparsity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    speedup_table,
    steady_state_mean,
    time_to_likelihood,
    tokens_per_sec,
)
from repro.analysis.roofline import (
    average_flops_per_byte,
    format_table1,
    is_memory_bound,
    table1_rows,
)
from repro.analysis.sparsity import (
    SparsityModel,
    fit_sparsity_model,
    measure_kd_curve,
)
from repro.corpus.datasets import NYTIMES, PUBMED
from repro.gpusim.platform import CPU_E5_2690V4, GPU_V100


class TestTable1:
    def test_exact_paper_values(self):
        """Table 1: 0.33 / 0.25 / 0.30 / 0.19."""
        rows = {r.name: r.flops_per_byte for r in table1_rows()}
        assert rows["Compute S"] == pytest.approx(0.33, abs=0.005)
        assert rows["Compute Q"] == pytest.approx(0.25, abs=0.005)
        assert rows["Sampling from p1(k)"] == pytest.approx(0.30, abs=0.005)
        assert rows["Sampling from p2(k)"] == pytest.approx(0.19, abs=0.005)

    def test_average_is_027(self):
        """The paper's headline: 0.27 Flops/Byte on average."""
        assert average_flops_per_byte() == pytest.approx(0.27, abs=0.005)

    def test_memory_bound_on_all_platforms(self):
        """§3's conclusion: LDA sits far below every ridge point."""
        assert is_memory_bound(CPU_E5_2690V4)
        assert is_memory_bound(GPU_V100)

    def test_ridge_comparison_override(self):
        # A hypothetical compute-heavy workload would not be memory bound.
        assert not is_memory_bound(CPU_E5_2690V4, flops_per_byte=100.0)

    def test_format_table(self):
        text = format_table1()
        assert "Compute S" in text and "0.33" in text and "0.27" in text


class TestMetrics:
    def test_eq2(self):
        assert tokens_per_sec(1000, 10, 2.0) == 5000

    def test_eq2_rejects_zero_time(self):
        with pytest.raises(ValueError):
            tokens_per_sec(1000, 10, 0.0)

    def test_speedup_table(self):
        t = speedup_table(100.0, {"a": 730.0, "b": 50.0})
        assert t["a"] == pytest.approx(7.3)
        assert t["b"] == pytest.approx(0.5)

    def test_speedup_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            speedup_table(0.0, {})

    def test_steady_state_mean_skips_ramp(self):
        series = np.array([1.0, 1.0, 10.0, 10.0, 10.0])
        assert steady_state_mean(series, skip_fraction=0.4) == 10.0

    def test_time_to_likelihood(self):
        times = np.array([1.0, 2.0, 3.0])
        lls = np.array([-9.0, -7.0, -6.0])
        assert time_to_likelihood(times, lls, -7.0) == 2.0
        assert time_to_likelihood(times, lls, -1.0) is None


class TestSparsityModel:
    def test_kd_decays_to_floor(self):
        m = SparsityModel(kd0=100.0, kd_inf=20.0, tau=5.0)
        assert m.kd(0) == pytest.approx(100.0)
        assert m.kd(1000) == pytest.approx(20.0, abs=1e-6)
        ks = m.kd(np.arange(50))
        assert np.all(np.diff(ks) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparsityModel(kd0=10, kd_inf=20, tau=5)  # floor above start
        with pytest.raises(ValueError):
            SparsityModel(kd0=10, kd_inf=5, tau=0)

    def test_from_stats_pubmed_starts_sparser(self):
        """§7.1's explanation of Fig 7: PubMed's short documents give a
        much sparser initial θ than NYTimes'."""
        nyt = SparsityModel.from_stats(NYTIMES, 1024)
        pm = SparsityModel.from_stats(PUBMED, 1024)
        assert pm.kd0 < 0.5 * nyt.kd0

    def test_from_stats_bounded_by_doc_length(self):
        m = SparsityModel.from_stats(PUBMED, 100_000)
        assert m.kd0 <= PUBMED.avg_doc_length

    def test_measure_kd_curve_decreases(self):
        from repro.corpus.synthetic import nytimes_like

        c = nytimes_like(num_tokens=20_000, num_topics=8, seed=1)
        curve = measure_kd_curve(c, num_topics=32, iterations=12, seed=0)
        assert curve.shape == (12,)
        assert curve[-1] < curve[0]

    def test_fit_recovers_exponential(self):
        true = SparsityModel(kd0=200.0, kd_inf=50.0, tau=8.0)
        curve = np.asarray(true.kd(np.arange(40)))
        fit = fit_sparsity_model(curve)
        assert fit.kd0 == pytest.approx(200.0, rel=0.05)
        assert fit.kd_inf == pytest.approx(50.0, rel=0.1)
        assert fit.tau == pytest.approx(8.0, rel=0.25)

    def test_fit_flat_curve(self):
        fit = fit_sparsity_model(np.full(10, 42.0))
        assert fit.kd0 == pytest.approx(42.0)
        assert fit.kd_inf <= fit.kd0

    def test_fit_needs_points(self):
        with pytest.raises(ValueError):
            fit_sparsity_model(np.array([1.0, 2.0]))
