"""Tests for the WarpLDA CPU baseline (MCEM/MH, O(1) per token)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.warplda import MH_STEPS, WarpLDA, warplda_iteration_cost
from repro.core.model import LDAHyperParams
from repro.corpus.datasets import NYTIMES, PUBMED
from repro.gpusim.costmodel import CostModel
from repro.gpusim.platform import CPU_E5_2690V4


class TestFunctional:
    def test_counts_consistent(self, small_corpus, hyper16):
        w = WarpLDA(small_corpus, hyper16, seed=0)
        r = w.train(iterations=3)
        assert w.phi.sum() == small_corpus.num_tokens
        assert w.theta.sum() == small_corpus.num_tokens
        assert np.array_equal(w.n_k, w.phi.sum(axis=1))

    def test_likelihood_improves(self, medium_corpus):
        hyper = LDAHyperParams(num_topics=16)
        w = WarpLDA(medium_corpus, hyper, seed=0)
        ll0 = w.log_likelihood_per_token()
        w.train(iterations=15)
        assert w.log_likelihood_per_token() > ll0 + 0.1

    def test_deterministic(self, small_corpus, hyper8):
        a = WarpLDA(small_corpus, hyper8, seed=3)
        a.train(iterations=2)
        b = WarpLDA(small_corpus, hyper8, seed=3)
        b.train(iterations=2)
        assert np.array_equal(a.topics, b.topics)

    def test_topics_in_range(self, small_corpus, hyper8):
        w = WarpLDA(small_corpus, hyper8, seed=1)
        w.train(iterations=4)
        assert w.topics.min() >= 0
        assert w.topics.max() < 8

    def test_result_fields(self, small_corpus, hyper8):
        r = WarpLDA(small_corpus, hyper8, seed=0).train(
            iterations=4, likelihood_every=2
        )
        assert len(r.iterations) == 4
        assert r.total_sim_seconds > 0
        assert r.final_log_likelihood is not None
        assert r.iterations[1].log_likelihood_per_token is not None
        assert r.iterations[0].log_likelihood_per_token is None
        assert r.phi.sum() == small_corpus.num_tokens


class TestCostModel:
    def test_calibrated_to_table4(self):
        """The paper's Table 4 WarpLDA row: 108.0 M tokens/s (NYTimes),
        93.5 M (PubMed) on the Volta-platform host."""
        cm = CostModel()
        for stats, target in ((NYTIMES, 108.0e6), (PUBMED, 93.5e6)):
            cost = warplda_iteration_cost(
                stats.num_tokens, 1024, stats.num_words, stats.avg_doc_length
            )
            dt = cm.kernel_seconds(CPU_E5_2690V4, cost)
            throughput = stats.num_tokens / dt
            assert throughput == pytest.approx(target, rel=0.05)

    def test_cost_linear_in_tokens(self):
        a = warplda_iteration_cost(1_000_000, 64, 1000, 100.0)
        b = warplda_iteration_cost(2_000_000, 64, 1000, 100.0)
        assert b.total_bytes == pytest.approx(2 * a.total_bytes)

    def test_short_docs_cost_more_per_token(self):
        long_docs = warplda_iteration_cost(10**6, 64, 1000, 332.0)
        short_docs = warplda_iteration_cost(10**6, 64, 1000, 92.0)
        assert short_docs.total_bytes > long_docs.total_bytes

    def test_memory_bound(self):
        cost = warplda_iteration_cost(10**6, 1024, 10**5, 100.0)
        assert cost.flops_per_byte < CPU_E5_2690V4.ridge_flops_per_byte

    def test_mh_steps_constant(self):
        assert MH_STEPS >= 1
