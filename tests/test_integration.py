"""Full-pipeline integration tests: the library as a user would run it.

UCI file → preprocessing → multi-GPU training → checkpoint →
fold-in inference → topic quality — each stage's output consumed by the
next, asserting cross-module contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.topics import topic_diversity, umass_coherence
from repro.core import (
    CuLDA,
    TrainConfig,
    infer_documents,
    load_model,
    save_model,
)
from repro.corpus.preprocess import filter_short_documents, prune_vocabulary
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.corpus.uci import read_uci_bow, write_uci_bow
from repro.gpusim.platform import pascal_platform, volta_platform


@pytest.fixture(scope="module")
def raw_corpus():
    return generate_lda_corpus(
        SyntheticSpec(num_docs=250, num_words=400, avg_doc_length=70,
                      num_topics=6, alpha=0.08, name="pipeline"),
        seed=42,
    )


class TestFullPipeline:
    def test_uci_roundtrip_then_train_then_infer(self, raw_corpus, tmp_path):
        # 1. Persist and reload through the UCI interchange format.
        uci_path = tmp_path / "docword.pipeline.txt"
        write_uci_bow(raw_corpus, uci_path)
        corpus = read_uci_bow(uci_path)
        assert corpus.num_tokens == raw_corpus.num_tokens

        # 2. Preprocess.
        corpus = prune_vocabulary(corpus, min_doc_frequency=2)
        corpus = filter_short_documents(corpus, min_length=5)
        assert corpus.num_tokens > 0

        # 3. Train on 2 simulated GPUs, with early stopping available.
        result = CuLDA(
            corpus, pascal_platform(2),
            TrainConfig(num_topics=12, iterations=25, seed=0,
                        likelihood_every=5),
        ).train()
        assert result.phi.sum() == corpus.num_tokens
        assert result.final_log_likelihood is not None

        # 4. Checkpoint round trip.
        ckpt_path = tmp_path / "model.npz"
        save_model(result, ckpt_path)
        ckpt = load_model(ckpt_path)
        assert np.array_equal(ckpt.phi, result.phi)

        # 5. Fold in held-out documents from the same generator.
        held = generate_lda_corpus(
            SyntheticSpec(num_docs=30, num_words=corpus.num_words,
                          avg_doc_length=50, num_topics=6, alpha=0.08),
            seed=43,
        )
        inf = infer_documents(held, ckpt.phi, ckpt.hyper, iterations=10,
                              seed=7)
        assert np.allclose(inf.doc_topic.sum(axis=1), 1.0)
        assert np.isfinite(inf.log_likelihood_per_token)

        # 6. Topic quality on the training corpus.
        diversity = topic_diversity(result.phi, top_n=10)
        assert diversity > 0.3
        coherence = umass_coherence(result.phi, corpus, top_n=5)
        assert np.all(np.isfinite(coherence))

    def test_cross_platform_statistical_agreement(self, raw_corpus):
        """Different simulated hardware must NOT change the statistics:
        same seed + same chunk count ⇒ same model on Pascal and Volta."""
        cfg = TrainConfig(num_topics=8, iterations=5, seed=3, chunks_per_gpu=2)
        a = CuLDA(raw_corpus, pascal_platform(1), cfg).train()
        b = CuLDA(raw_corpus, volta_platform(1), cfg).train()
        assert np.array_equal(a.phi, b.phi)
        # ...while the simulated times do differ (Volta is faster).
        assert b.total_sim_seconds < a.total_sim_seconds

    def test_memory_is_returned_after_training(self, raw_corpus):
        machine = pascal_platform(2)
        before = [g.allocator.bytes_in_use for g in machine.gpus]
        CuLDA(raw_corpus, machine,
              TrainConfig(num_topics=8, iterations=2, seed=0)).train()
        after = [g.allocator.bytes_in_use for g in machine.gpus]
        assert before == after

    def test_energy_accounting_positive_and_ordered(self, raw_corpus):
        """Energy model sanity: a longer run burns more joules."""
        m_short = pascal_platform(1)
        CuLDA(raw_corpus, m_short,
              TrainConfig(num_topics=8, iterations=2, seed=0)).train()
        m_long = pascal_platform(1)
        CuLDA(raw_corpus, m_long,
              TrainConfig(num_topics=8, iterations=8, seed=0)).train()
        e_short = m_short.energy_joules()
        e_long = m_long.energy_joules()
        assert 0 < e_short < e_long
