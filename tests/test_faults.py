"""Chaos tests: fault injection and elastic fault-tolerant training.

Covers the fault plan DSL, the gpusim fault hooks, the injector, the
engine recovery layer, and end-to-end survival scenarios (GPU loss,
flaky/dead/corrupting links, kernel faults, truncated checkpoints).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CuLDA, TrainConfig
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.engine import RecoveryPolicy, TrainingFailure, validate_state
from repro.engine.loop import LoopConfig
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from repro.gpusim import DeviceLost, KernelFault, LinkDown
from repro.gpusim.platform import pascal_platform
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def corpus():
    return generate_lda_corpus(
        SyntheticSpec(num_docs=80, num_words=300, avg_doc_length=100,
                      num_topics=6, name="chaos"),
        seed=17,
    )


def _train(corpus, gpus=4, iterations=6, *, plan=None, recovery=None,
           registry=None, sync="gpu_tree", **train_kwargs):
    # Forced gpu_tree: these tests exercise the retry/fallback machinery
    # on specific links, so the sync planner must not re-route around
    # the very faults being injected (planner behaviour under fault
    # plans is covered in test_comm.py).
    trainer = CuLDA(
        corpus, pascal_platform(gpus),
        TrainConfig(num_topics=8, iterations=iterations, seed=0,
                    sync_algorithm=sync),
        registry=registry,
    )
    return trainer.train(fault_plan=plan, recovery=recovery, **train_kwargs)


def _counter(registry, name, **labels):
    metric = registry.get(name)
    assert metric is not None, f"counter {name!r} was never emitted"
    return metric.value(**labels)


# ----------------------------------------------------------------------
# Fault plan DSL
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=3, device=1),
            FaultSpec(kind="link_flaky", iteration=2, link="p2p[0-1]",
                      count=2),
            FaultSpec(kind="link_degraded", iteration=1, link="pcie[0]",
                      scale=0.25, until=4),
            FaultSpec(kind="checkpoint_truncation", at_save=1),
        ))
        p = tmp_path / "plan.json"
        plan.to_json(p)
        loaded = FaultPlan.from_json(p)
        assert loaded == plan
        assert len(loaded) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", iteration=0)

    @pytest.mark.parametrize("kind,kwargs", [
        ("device_failure", {"iteration": 1}),           # missing device
        ("link_down", {"iteration": 1}),                # missing link
        ("link_degraded", {"iteration": 1, "link": "pcie[0]"}),  # no scale
        ("kernel_fault", {"iteration": 1}),             # missing device
        ("checkpoint_truncation", {}),                  # missing at_save
        ("device_failure", {"device": 0}),              # missing iteration
    ])
    def test_missing_required_field_rejected(self, kind, kwargs):
        with pytest.raises(ValueError, match="requires"):
            FaultSpec(kind=kind, **kwargs)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(kind="device_failure", iteration=-1, device=0), "iteration"),
        (dict(kind="link_flaky", iteration=0, link="x", count=0), "count"),
        (dict(kind="link_down", iteration=3, link="x", until=2), "until"),
        (dict(kind="link_degraded", iteration=0, link="x", scale=0.0),
         "scale"),
        (dict(kind="checkpoint_truncation", at_save=0), "at_save"),
    ])
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultSpec(**kwargs)

    def test_plan_error_names_fault_index(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"faults": [
            {"kind": "device_failure", "iteration": 0, "device": 0},
            {"kind": "link_down", "iteration": 1},
        ]}))
        with pytest.raises(ValueError, match="fault #1"):
            FaultPlan.from_json(p)

    def test_unknown_field_rejected_naming_field(self):
        with pytest.raises(ValueError,
                           match=r"fault #0 \(device_failure\): unknown "
                                 r"field\(s\) 'sevrity'"):
            FaultPlan.from_dict({"faults": [
                {"kind": "device_failure", "iteration": 0, "device": 0,
                 "sevrity": 9},
            ]})

    def test_unknown_kind_rejected_naming_entry(self):
        with pytest.raises(ValueError,
                           match="fault #1: unknown fault kind "
                                 "'meteor_strike'"):
            FaultPlan.from_dict({"faults": [
                {"kind": "device_failure", "iteration": 0, "device": 0},
                {"kind": "meteor_strike", "iteration": 1},
            ]})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="fault #0 is missing the "
                                             "'kind' field"):
            FaultPlan.from_dict({"faults": [{"iteration": 0}]})

    def test_missing_required_field_named_in_from_dict(self):
        with pytest.raises(ValueError,
                           match=r"fault #0 \(link_down\): missing "
                                 r"required field\(s\) 'link'"):
            FaultPlan.from_dict({"faults": [
                {"kind": "link_down", "iteration": 1},
            ]})

    def test_faults_must_be_a_list(self):
        with pytest.raises(ValueError, match="'faults' must be a list"):
            FaultPlan.from_dict({"faults": {"kind": "device_failure"}})

    def test_entry_must_be_an_object(self):
        with pytest.raises(ValueError, match="fault #1 must be an object"):
            FaultPlan.from_dict({"faults": [
                {"kind": "device_failure", "iteration": 0, "device": 0},
                "device_failure",
            ]})

    def test_needs_machine(self):
        hw = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=0, device=0),))
        sw = FaultPlan(faults=(
            FaultSpec(kind="checkpoint_truncation", at_save=1),))
        assert hw.needs_machine
        assert not sw.needs_machine
        assert set(FAULT_KINDS) >= {f.kind for f in hw} | {f.kind for f in sw}


# ----------------------------------------------------------------------
# gpusim fault hooks
# ----------------------------------------------------------------------
class TestGpusimHooks:
    def test_link_down_raises_on_reserve(self):
        m = pascal_platform(2)
        link = m.find_link("p2p[0-1]")
        link.set_down(True)
        with pytest.raises(LinkDown):
            link.reserve(1024, 0.0)
        link.set_down(False)
        start, end = link.reserve(1024, 0.0)
        assert end > start

    def test_fail_next_is_transient(self):
        link = pascal_platform(2).find_link("p2p[0-1]")
        link.fail_next(2)
        for _ in range(2):
            with pytest.raises(LinkDown) as err:
                link.reserve(1024, 0.0)
            assert err.value.transient
        link.reserve(1024, 0.0)  # third attempt succeeds

    def test_degrade_stretches_transfers(self):
        a = pascal_platform(2).find_link("p2p[0-1]")
        b = pascal_platform(2).find_link("p2p[0-1]")
        b.degrade(0.25)
        ta = a.reserve(1 << 20, 0.0)
        tb = b.reserve(1 << 20, 0.0)
        assert (tb[1] - tb[0]) > (ta[1] - ta[0])
        with pytest.raises(ValueError):
            b.degrade(0.0)

    def test_corrupt_next_consumed_once(self):
        link = pascal_platform(2).find_link("p2p[0-1]")
        link.corrupt_next(1)
        assert link.take_corruption()
        assert not link.take_corruption()

    def test_dead_device_rejects_kernels(self):
        m = pascal_platform(2)
        m.gpus[0].fail()
        assert not m.gpus[0].alive
        assert [g.device_id for g in m.alive_gpus] == [1]
        with pytest.raises(DeviceLost):
            m.gpus[0].default_stream.enqueue(
                duration=1e-6, kind="kernel", label="nop")

    def test_kernel_fault_one_shot(self):
        m = pascal_platform(1)
        gpu = m.gpus[0]
        gpu.inject_kernel_fault("sampling")
        # A non-matching kind passes through untouched.
        gpu.default_stream.enqueue(
            duration=1e-6, kind="update_phi", label="update_phi:chunk0")
        with pytest.raises(KernelFault):
            gpu.default_stream.enqueue(
                duration=1e-6, kind="sampling", label="sampling:chunk0")
        # Consumed: the same kernel runs afterwards.
        gpu.default_stream.enqueue(
            duration=1e-6, kind="sampling", label="sampling:chunk0")


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_machine_required_for_hardware_faults(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=0, device=0),))
        with pytest.raises(ValueError, match="no machine"):
            FaultInjector(plan, machine=None)

    def test_specs_fire_once_despite_reentry(self):
        m = pascal_platform(2)
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_flaky", iteration=1, link="p2p[0-1]",
                      count=1),))
        inj = FaultInjector(plan, machine=m)
        inj.on_iteration_start(1)
        inj.on_iteration_start(1)  # recovery re-enters the iteration
        assert len(inj.events) == 1

    def test_until_bounded_outage_restored(self):
        m = pascal_platform(2)
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_down", iteration=1, link="p2p[0-1]",
                      until=3),))
        inj = FaultInjector(plan, machine=m)
        inj.on_iteration_start(1)
        assert not m.find_link("p2p[0-1]").up
        inj.on_iteration_start(2)
        assert not m.find_link("p2p[0-1]").up
        inj.on_iteration_start(3)
        assert m.find_link("p2p[0-1]").up
        kinds = [e["kind"] for e in inj.events]
        assert kinds == ["link_down", "link_down_restored"]

    def test_unknown_device_rejected(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=0, device=7),))
        inj = FaultInjector(plan, machine=pascal_platform(2))
        with pytest.raises(ValueError, match="device 7"):
            inj.on_iteration_start(0)

    def test_checkpoint_truncation(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="checkpoint_truncation", at_save=2),))
        inj = FaultInjector(plan)  # software-only plan: no machine needed
        f = tmp_path / "ck.npz"
        f.write_bytes(b"x" * 100)
        inj.on_checkpoint_saved(f)       # save 1: untouched
        assert f.stat().st_size == 100
        inj.on_checkpoint_saved(f)       # save 2: truncated to half
        assert f.stat().st_size == 50
        assert inj.events[0]["kind"] == "checkpoint_truncation"


# ----------------------------------------------------------------------
# Engine recovery layer
# ----------------------------------------------------------------------
class TestRecoveryPolicy:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="recovery mode"):
            RecoveryPolicy(mode="hope")

    def test_transfer_retry_none_when_inactive(self):
        assert RecoveryPolicy().transfer_retry() is None
        retry = RecoveryPolicy(mode="retry", max_transfer_retries=5,
                               host_fallback=False).transfer_retry()
        assert retry.max_retries == 5
        assert not retry.host_fallback

    @pytest.mark.parametrize("kwargs", [
        dict(mode="retry", max_transfer_retries=-1),
        dict(mode="retry", backoff_seconds=0.0),
        dict(mode="retry", max_rollbacks=-1),
        dict(mode="retry", validate_every=-1),
    ])
    def test_bad_budgets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)


class TestLoopConfigValidation:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(iterations=-1), "iterations"),
        (dict(iterations=2, likelihood_every=-1), "likelihood_every"),
        (dict(iterations=2, save_every=-1), "save_every"),
        (dict(iterations=2, stop_rel_tolerance=0.0), "stop_rel_tolerance"),
        (dict(iterations=2, stop_rel_tolerance=1e-3), "likelihood_every"),
        (dict(iterations=2, save_every=1), "checkpoint_path"),
    ])
    def test_invalid_configs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LoopConfig(**kwargs)


class TestValidateState:
    @staticmethod
    def _state(phi, lls=()):
        from types import SimpleNamespace

        history = [SimpleNamespace(iteration=i, log_likelihood_per_token=ll)
                   for i, ll in enumerate(lls)]
        return SimpleNamespace(phi=phi, history=history)

    def test_clean_state_passes(self):
        s = self._state(np.full((4, 5), 5, dtype=np.int64), lls=[-7.0])
        assert validate_state(s, num_tokens=100) == []

    def test_violations_reported(self):
        phi = np.full((4, 5), 5, dtype=np.int64)
        phi[0, 0] = -3
        s = self._state(phi, lls=[float("nan")])
        violations = validate_state(s, num_tokens=123)
        text = "\n".join(violations)
        assert "negative" in text
        assert "123" in text          # conservation names expected count
        assert any("likelihood" in v for v in violations)


# ----------------------------------------------------------------------
# End-to-end chaos scenarios
# ----------------------------------------------------------------------
class TestElasticRecovery:
    def test_survives_gpu_loss_on_three_gpus(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=3, device=1),))
        registry = MetricsRegistry()
        result = _train(corpus, gpus=4, plan=plan, recovery="elastic",
                        registry=registry)
        assert result.num_gpus == 3
        assert result.repartitions == 1
        assert result.rollbacks == 0
        assert [e["kind"] for e in result.fault_events] == ["device_failure"]
        assert np.isfinite(result.final_log_likelihood)
        # Model stays well-formed after migration: token conservation.
        assert result.phi.sum() == corpus.num_tokens
        assert (result.phi >= 0).all()
        assert _counter(registry, "elastic_repartitions_total") == 1
        assert _counter(registry, "faults_injected_total",
                        kind="device_failure") == 1

    def test_final_ll_close_to_failure_free_run(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=3, device=1),))
        elastic = _train(corpus, gpus=4, iterations=8, plan=plan,
                         recovery="elastic")
        clean = _train(corpus, gpus=3, iterations=8)
        rel = abs(elastic.final_log_likelihood - clean.final_log_likelihood)
        rel /= abs(clean.final_log_likelihood)
        assert rel < 0.02

    def test_recovery_none_fails_fast(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=3, device=1),))
        with pytest.raises(TrainingFailure) as err:
            _train(corpus, gpus=4, plan=plan, recovery="none")
        exc = err.value
        assert exc.iteration == 3
        assert exc.phase == "iteration"
        assert isinstance(exc.cause, DeviceLost)
        assert exc.fault_events[0]["kind"] == "device_failure"
        assert "--recovery" in str(exc)

    def test_retry_mode_cannot_survive_device_loss(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=2, device=0),))
        with pytest.raises(TrainingFailure, match="elastic"):
            _train(corpus, gpus=2, plan=plan, recovery="retry")

    def test_losing_every_gpu_is_fatal(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="device_failure", iteration=1, device=0),
            FaultSpec(kind="device_failure", iteration=1, device=1),))
        with pytest.raises(TrainingFailure):
            _train(corpus, gpus=2, plan=plan, recovery="elastic")


class TestTransientLinkFaults:
    def test_flaky_link_retried_bit_identical(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_flaky", iteration=2, link="p2p[0-1]",
                      count=2),))
        registry = MetricsRegistry()
        faulty = _train(corpus, gpus=4, plan=plan, recovery="retry",
                        registry=registry)
        clean = _train(corpus, gpus=4)
        assert np.array_equal(faulty.phi, clean.phi)
        assert faulty.rollbacks == 0
        assert _counter(registry, "transfer_retries_total",
                        link="p2p[0-1]", op="phi_reduce_copy") == 2

    def test_retry_budget_exhaustion_falls_back_to_host(self, corpus):
        # A permanently-down link outlives any retry budget; with
        # host_fallback the copy re-routes through CPU memory and the
        # model is still bit-identical to the failure-free run.
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_down", iteration=2, link="p2p[0-1]"),))
        registry = MetricsRegistry()
        degraded = _train(corpus, gpus=2, plan=plan, recovery="retry",
                          registry=registry)
        clean = _train(corpus, gpus=2)
        assert np.array_equal(degraded.phi, clean.phi)
        assert _counter(registry, "degraded_sync_total",
                        link="p2p[0-1]", op="phi_reduce_copy") > 0

    def test_degraded_link_slows_but_completes(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degraded", iteration=1, link="p2p[0-1]",
                      scale=0.1),))
        slow = _train(corpus, gpus=2, plan=plan, recovery="retry")
        clean = _train(corpus, gpus=2)
        assert np.array_equal(slow.phi, clean.phi)
        assert slow.total_sim_seconds > clean.total_sim_seconds


class TestRollbackRecovery:
    def test_corrupted_transfer_rolled_back(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="transfer_corruption", iteration=3,
                      link="p2p[0-1]"),))
        registry = MetricsRegistry()
        result = _train(corpus, gpus=2, plan=plan, recovery="retry",
                        registry=registry)
        clean = _train(corpus, gpus=2)
        assert result.rollbacks == 1
        assert np.array_equal(result.phi, clean.phi)
        assert _counter(registry, "rollbacks_total") == 1
        assert _counter(registry, "validation_failures_total") >= 1

    def test_kernel_fault_rolled_back(self, corpus):
        plan = FaultPlan(faults=(
            FaultSpec(kind="kernel_fault", iteration=2, device=1,
                      op="sampling"),))
        result = _train(corpus, gpus=2, plan=plan, recovery="retry")
        clean = _train(corpus, gpus=2)
        assert result.rollbacks == 1
        assert np.array_equal(result.phi, clean.phi)

    def test_exhausted_rollback_budget_fails_structured(self, corpus):
        # A zero rollback budget turns the first detected corruption
        # into a structured failure that names the violated invariants.
        plan = FaultPlan(faults=(
            FaultSpec(kind="transfer_corruption", iteration=2,
                      link="p2p[0-1]"),))
        policy = RecoveryPolicy(mode="retry", max_rollbacks=0)
        with pytest.raises(TrainingFailure) as err:
            _train(corpus, gpus=2, plan=plan, recovery=policy)
        assert err.value.phase == "recovery"
        assert err.value.violations
        assert "budget" in str(err.value)

    def test_retry_exhaustion_carries_cause_and_fault_events(self, corpus):
        # A permanently-down link with host fallback disabled escapes
        # every transfer retry; each iteration's failure burns one
        # rollback until the budget runs out. The resulting failure
        # must carry the final underlying fault and the injector's
        # event log — a bare "training failed" helps nobody triage.
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_down", iteration=1, link="p2p[0-1]"),))
        policy = RecoveryPolicy(mode="retry", host_fallback=False,
                                max_transfer_retries=1, max_rollbacks=2)
        with pytest.raises(TrainingFailure) as err:
            _train(corpus, gpus=2, plan=plan, recovery=policy)
        failure = err.value
        assert failure.phase == "recovery"
        assert isinstance(failure.cause, LinkDown)
        assert failure.cause is failure.__cause__
        assert failure.fault_events
        assert any(e["kind"] == "link_down" for e in failure.fault_events)
        assert "budget" in str(failure) or "rollback" in str(failure)


class TestCheckpointTruncationScenario:
    def test_truncated_checkpoint_rejected_on_load(self, corpus, tmp_path):
        from repro.core.serialization import load_run_state

        ck = tmp_path / "run.npz"
        # Save 1 fires on the save_every cadence; save 2 is the final
        # checkpoint the loop writes after training. Truncate that one
        # so the damaged file is what a later --resume would read.
        plan = FaultPlan(faults=(
            FaultSpec(kind="checkpoint_truncation", at_save=2),))
        _train(corpus, gpus=2, iterations=4, plan=plan, recovery="retry",
               save_every=4, checkpoint_path=ck)
        with pytest.raises(ValueError, match="truncated|integrity"):
            load_run_state(ck)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFaultsCli:
    CORPUS = ["--synthetic", "nytimes", "--tokens", "6000", "--topics", "8",
              "--iterations", "5", "--platform", "pascal"]

    def _plan(self, tmp_path, faults):
        p = tmp_path / "plan.json"
        p.write_text(json.dumps({"faults": faults}))
        return str(p)

    def test_train_elastic_survives(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan(tmp_path, [
            {"kind": "device_failure", "iteration": 2, "device": 1}])
        rc = main(["train", *self.CORPUS, "--gpus", "4",
                   "--faults", plan, "--recovery", "elastic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 GPU(s)" in out
        assert "1 repartition(s)" in out

    def test_train_without_recovery_fails_with_hint(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan(tmp_path, [
            {"kind": "device_failure", "iteration": 2, "device": 1}])
        rc = main(["train", *self.CORPUS, "--gpus", "4", "--faults", plan])
        err = capsys.readouterr().err
        assert rc == 1
        assert "--recovery" in err
        assert "fault event" in err

    def test_faults_gated_to_culda(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan(tmp_path, [
            {"kind": "device_failure", "iteration": 0, "device": 0}])
        rc = main(["train", "--algo", "warplda", *self.CORPUS,
                   "--faults", plan])
        assert rc == 2
        assert "culda" in capsys.readouterr().err

    def test_invalid_plan_actionable_error(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan(tmp_path, [{"kind": "bogus"}])
        rc = main(["train", *self.CORPUS, "--faults", plan])
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().err

    @pytest.mark.parametrize("flag,value", [
        ("--iterations", "0"),
        ("--iterations", "-3"),
        ("--gpus", "0"),
        ("--topics", "zero"),
        ("--likelihood-every", "-1"),
        ("--save-every", "-2"),
    ])
    def test_bad_numeric_args_rejected(self, flag, value, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["train", "--synthetic", "nytimes", flag, value])
        assert err.value.code == 2
        assert "integer" in capsys.readouterr().err

    def test_profile_reports_fault_counters(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan(tmp_path, [
            {"kind": "link_flaky", "iteration": 2, "link": "p2p[0-1]",
             "count": 2}])
        rc = main(["profile", "--tokens", "6000", "--topics", "8",
                   "--iterations", "5", "--platform", "pascal",
                   "--gpus", "2", "--sync", "gpu_tree", "--top", "20",
                   "--faults", plan, "--recovery", "retry"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "transfer_retries_total" in out
        assert "fault events" in out
