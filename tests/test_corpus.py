"""Tests for the corpus substrate: Corpus, Vocabulary, TokenChunk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import Corpus, TokenChunk, Vocabulary


# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------

class TestVocabulary:
    def test_insertion_order_ids(self):
        v = Vocabulary(["apple", "banana", "cherry"])
        assert v.id_of("apple") == 0
        assert v.id_of("cherry") == 2
        assert v.word_of(1) == "banana"

    def test_add_is_idempotent(self):
        v = Vocabulary()
        a = v.add("word")
        b = v.add("word")
        assert a == b == 0
        assert len(v) == 1

    def test_freeze_blocks_new_words(self):
        v = Vocabulary(["a"]).freeze()
        assert v.add("a") == 0  # existing word still fine
        with pytest.raises(ValueError):
            v.add("b")

    def test_contains_and_iter(self):
        v = Vocabulary(["x", "y"])
        assert "x" in v and "z" not in v
        assert list(v) == ["x", "y"]


# ----------------------------------------------------------------------
# Corpus construction and validation
# ----------------------------------------------------------------------

class TestCorpusConstruction:
    def test_from_documents_shapes(self, tiny_corpus):
        assert tiny_corpus.num_docs == 5
        assert tiny_corpus.num_tokens == 16
        assert tiny_corpus.num_words == 6
        assert list(tiny_corpus.doc_lengths) == [4, 3, 5, 1, 3]

    def test_document_view(self, tiny_corpus):
        assert list(tiny_corpus.document(0)) == [0, 1, 2, 0]
        assert list(tiny_corpus.document(3)) == [2]

    def test_token_doc_expansion(self, tiny_corpus):
        td = tiny_corpus.token_doc
        assert td.shape == (16,)
        assert list(td[:4]) == [0, 0, 0, 0]
        assert td[-1] == 4

    def test_word_frequencies(self, tiny_corpus):
        freq = tiny_corpus.word_frequencies()
        # word 0 appears in docs 0 (twice), 2, 4 -> 4 times
        assert freq[0] == 4
        assert freq[5] == 3
        assert freq.sum() == tiny_corpus.num_tokens

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValueError, match="start at 0"):
            Corpus(np.array([0, 1]), np.array([1, 2]), num_words=3)

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Corpus(np.array([0, 1, 2]), np.array([0, 2, 1, 3]), num_words=3)

    def test_rejects_out_of_range_word(self):
        with pytest.raises(ValueError, match="out of range"):
            Corpus(np.array([0, 7]), np.array([0, 2]), num_words=3)

    def test_rejects_mismatched_vocabulary(self):
        v = Vocabulary(["only-one"])
        with pytest.raises(ValueError, match="vocabulary"):
            Corpus(np.array([0, 1]), np.array([0, 2]), num_words=2, vocabulary=v)

    def test_empty_document_allowed(self):
        c = Corpus.from_documents([[0], [], [1]], num_words=2)
        assert c.num_docs == 3
        assert list(c.doc_lengths) == [1, 0, 1]

    def test_from_bow_expands_counts(self):
        c = Corpus.from_bow(
            doc_ids=np.array([0, 0, 1]),
            word_ids=np.array([2, 0, 1]),
            counts=np.array([3, 1, 2]),
            num_docs=2,
            num_words=3,
        )
        assert c.num_tokens == 6
        assert list(c.doc_lengths) == [4, 2]
        assert sorted(c.document(0).tolist()) == [0, 2, 2, 2]

    def test_from_bow_rejects_zero_count(self):
        with pytest.raises(ValueError, match="counts"):
            Corpus.from_bow(np.array([0]), np.array([0]), np.array([0]))

    def test_slice_docs(self, tiny_corpus):
        sub = tiny_corpus.slice_docs(1, 4)
        assert sub.num_docs == 3
        assert list(sub.document(0)) == [3, 3, 4]
        assert sub.num_words == tiny_corpus.num_words

    def test_slice_docs_bad_range(self, tiny_corpus):
        with pytest.raises(IndexError):
            tiny_corpus.slice_docs(3, 99)


# ----------------------------------------------------------------------
# TokenChunk (word-first layout + doc-word map, paper §6)
# ----------------------------------------------------------------------

class TestTokenChunk:
    def test_word_first_sorting(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        words = chunk.token_word_expanded()
        assert np.all(np.diff(words) >= 0), "tokens must be word-sorted"
        assert chunk.num_tokens == tiny_corpus.num_tokens

    def test_word_indptr_counts(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        counts = np.diff(chunk.word_indptr)
        assert np.array_equal(counts, tiny_corpus.word_frequencies())

    def test_doc_map_covers_all_tokens(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        assert sorted(chunk.doc_map_indices.tolist()) == list(
            range(chunk.num_tokens)
        )

    def test_doc_map_points_to_own_tokens(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        for d in range(chunk.num_docs):
            lo, hi = chunk.doc_map_indptr[d], chunk.doc_map_indptr[d + 1]
            positions = chunk.doc_map_indices[lo:hi]
            assert np.all(chunk.token_doc[positions] == d)

    def test_doc_lengths_preserved(self, tiny_corpus):
        chunk = tiny_corpus.to_chunk()
        assert np.array_equal(chunk.doc_lengths, tiny_corpus.doc_lengths)

    def test_chunk_of_doc_range_uses_local_ids(self, tiny_corpus):
        chunk = TokenChunk.from_corpus_range(tiny_corpus, 2, 5)
        assert chunk.num_docs == 3
        assert chunk.doc_offset == 2
        assert chunk.token_doc.min() == 0
        assert chunk.token_doc.max() == 2
        assert chunk.num_tokens == 9

    def test_chunk_word_multiset_matches(self, small_corpus):
        chunk = TokenChunk.from_corpus_range(small_corpus, 10, 40)
        words_chunk = np.sort(chunk.token_word_expanded())
        lo = small_corpus.doc_indptr[10]
        hi = small_corpus.doc_indptr[40]
        words_direct = np.sort(small_corpus.token_word[lo:hi])
        assert np.array_equal(words_chunk, words_direct)

    def test_words_present(self, tiny_corpus):
        chunk = TokenChunk.from_corpus_range(tiny_corpus, 1, 2)  # doc [3,3,4]
        assert chunk.words_present().tolist() == [3, 4]

    def test_nbytes_compression_halves_topics(self, small_corpus):
        chunk = small_corpus.to_chunk()
        diff = chunk.nbytes(compressed=False) - chunk.nbytes(compressed=True)
        assert diff == 2 * chunk.num_tokens

    def test_invalid_range_rejected(self, tiny_corpus):
        with pytest.raises(IndexError):
            TokenChunk.from_corpus_range(tiny_corpus, 4, 2)

    def test_stable_doc_order_within_word(self, tiny_corpus):
        # Word 0 occurs at docs [0, 0, 2, 4] in corpus order; a stable
        # sort must preserve that order within the word's segment.
        chunk = tiny_corpus.to_chunk()
        lo, hi = chunk.word_indptr[0], chunk.word_indptr[1]
        assert chunk.token_doc[lo:hi].tolist() == [0, 0, 2, 4]
