"""Tests for streams, events, and overlap semantics (CUDA timing rules)."""

from __future__ import annotations

import pytest

from repro.gpusim.costmodel import KernelCost
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.platform import pascal_platform
from repro.gpusim.stream import Event


def _kernel(seconds_bytes=1e8, label="k"):
    """A kernel whose duration is dominated by seconds_bytes of traffic."""
    return KernelLaunch(lambda: None, KernelCost(bytes_read=seconds_bytes), label)


class TestStreamOrdering:
    def test_same_stream_serializes(self, pascal1):
        gpu = pascal1.gpus[0]
        s = gpu.create_stream("a")
        t0a, t1a, _ = _kernel().launch(s)
        t0b, t1b, _ = _kernel().launch(s)
        assert t0b >= t1a
        assert t1b > t1a

    def test_different_streams_overlap(self, pascal1):
        gpu = pascal1.gpus[0]
        s1, s2 = gpu.create_stream("a"), gpu.create_stream("b")
        a0, a1, _ = _kernel(1e9).launch(s1)
        b0, b1, _ = _kernel(1e9).launch(s2)
        assert b0 < a1, "streams must overlap in simulated time"

    def test_different_devices_overlap(self, pascal4):
        s1 = pascal4.gpus[0].default_stream
        s2 = pascal4.gpus[3].default_stream
        a0, a1, _ = _kernel(1e9).launch(s1)
        b0, b1, _ = _kernel(1e9).launch(s2)
        assert b0 < a1

    def test_negative_duration_rejected(self, pascal1):
        s = pascal1.gpus[0].default_stream
        with pytest.raises(ValueError):
            s.enqueue(-1.0, "x", "x")


class TestEvents:
    def test_unrecorded_event_raises(self):
        e = Event("never")
        assert not e.recorded
        with pytest.raises(RuntimeError):
            _ = e.time

    def test_record_captures_frontier(self, pascal1):
        s = pascal1.gpus[0].default_stream
        _kernel(1e9).launch(s)
        e = s.record(label="after")
        assert e.time == s.available_at

    def test_wait_event_cross_stream(self, pascal1):
        gpu = pascal1.gpus[0]
        s1, s2 = gpu.create_stream("a"), gpu.create_stream("b")
        _, end, _ = _kernel(1e9).launch(s1)
        e = s1.record()
        s2.wait_event(e)
        b0, _, _ = _kernel().launch(s2)
        assert b0 >= end

    def test_wait_event_cross_device(self, pascal4):
        s1 = pascal4.gpus[0].default_stream
        s2 = pascal4.gpus[1].default_stream
        _, end, _ = _kernel(1e9).launch(s1)
        e = s1.record()
        s2.wait_event(e)
        b0, _, _ = _kernel().launch(s2)
        assert b0 >= end

    def test_wait_consumed_after_one_op(self, pascal1):
        """The pending dependency applies to the next op only (as an
        in-order stream's wait does)."""
        gpu = pascal1.gpus[0]
        s1, s2 = gpu.create_stream("a"), gpu.create_stream("b")
        _kernel(1e10).launch(s1)
        e = s1.record()
        s2.wait_event(e)
        _kernel(1.0).launch(s2)  # tiny kernel, gated by the event
        start3, _, _ = _kernel(1.0).launch(s2)
        # Third op starts right after the second, not re-gated.
        assert start3 == pytest.approx(s2.available_at - (
            pascal1.cost_model.kernel_seconds(gpu.spec, KernelCost(bytes_read=1.0))
        ))


class TestSynchronize:
    def test_stream_synchronize_advances_host(self, pascal1):
        s = pascal1.gpus[0].default_stream
        _, end, _ = _kernel(1e9).launch(s)
        t = s.synchronize()
        assert t == end
        assert pascal1.host_time >= end

    def test_device_synchronize_covers_all_streams(self, pascal1):
        gpu = pascal1.gpus[0]
        s1, s2 = gpu.create_stream("a"), gpu.create_stream("b")
        _kernel(1e9).launch(s1)
        _, end2, _ = _kernel(2e9).launch(s2)
        t = gpu.synchronize()
        assert t == pytest.approx(max(s1.available_at, end2))

    def test_machine_synchronize(self, pascal4):
        ends = []
        for g in pascal4.gpus:
            _, e, _ = _kernel(1e9).launch(g.default_stream)
            ends.append(e)
        t = pascal4.synchronize()
        assert t == pytest.approx(max(ends))

    def test_host_work_after_sync_starts_later(self, pascal1):
        s = pascal1.gpus[0].default_stream
        _kernel(1e9).launch(s)
        s.synchronize()
        start, _, _ = _kernel(1.0).launch(s)
        assert start >= pascal1.host_time - 1e-12
