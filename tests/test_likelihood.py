"""Tests for the collapsed joint log-likelihood (Fig 8's metric)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import gammaln

from repro.core.likelihood import (
    log_likelihood,
    log_likelihood_per_token,
    perplexity,
    word_log_likelihood,
)
from repro.core.model import LDAHyperParams, LDAState, SparseTheta


def _brute_force_ll(theta_dense, phi, hyper):
    """Direct dense evaluation of the Griffiths–Steyvers formula."""
    K, V = phi.shape
    D = theta_dense.shape[0]
    alpha, beta = hyper.alpha, hyper.beta
    n_k = phi.sum(axis=1)
    lengths = theta_dense.sum(axis=1)
    ll = K * (gammaln(V * beta) - V * gammaln(beta))
    ll += gammaln(phi + beta).sum() - gammaln(n_k + V * beta).sum()
    ll += D * (gammaln(K * alpha) - K * gammaln(alpha))
    ll += gammaln(theta_dense + alpha).sum() - gammaln(lengths + K * alpha).sum()
    return float(ll)


class TestClosedForm:
    def test_matches_brute_force(self, small_corpus, hyper8):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        sparse = log_likelihood(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper8
        )
        brute = _brute_force_ll(state.theta.to_dense(), state.phi, hyper8)
        assert sparse == pytest.approx(brute, rel=1e-10)

    def test_word_term_only_depends_on_phi(self, small_corpus, hyper8):
        chunk = small_corpus.to_chunk()
        a = LDAState.initialize(chunk, hyper8, seed=0)
        b = LDAState.initialize(chunk, hyper8, seed=1)
        assert word_log_likelihood(
            a.phi, a.n_k, hyper8, small_corpus.num_words
        ) != pytest.approx(
            word_log_likelihood(b.phi, b.n_k, hyper8, small_corpus.num_words)
        )

    def test_per_token_scaling(self, small_corpus, hyper8):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        total = log_likelihood(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper8
        )
        per = log_likelihood_per_token(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper8
        )
        assert per == pytest.approx(total / small_corpus.num_tokens)

    def test_perplexity_consistent(self, small_corpus, hyper8):
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=0)
        per = log_likelihood_per_token(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper8
        )
        assert perplexity(
            state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper8
        ) == pytest.approx(np.exp(-per))

    def test_empty_corpus_rejected(self, hyper8):
        theta = SparseTheta(np.array([0]), np.array([], dtype=np.int32),
                            np.array([], dtype=np.int32), 8)
        with pytest.raises(ValueError):
            log_likelihood_per_token(
                theta, np.zeros((8, 4), dtype=np.int64),
                np.zeros(8, dtype=np.int64), np.array([], dtype=np.int64),
                hyper8,
            )


class TestBehaviour:
    def test_concentrated_phi_beats_uniform(self, hyper8):
        """A φ where each topic owns distinct words should score higher
        than a uniform φ with the same totals."""
        K, V = 8, 16
        total = 800
        uniform = np.full((K, V), total // (K * V), dtype=np.int64)
        concentrated = np.zeros((K, V), dtype=np.int64)
        for k in range(K):
            concentrated[k, k * 2 : k * 2 + 2] = total // (K * 2)
        nk_u = uniform.sum(axis=1)
        nk_c = concentrated.sum(axis=1)
        assert word_log_likelihood(concentrated, nk_c, hyper8, V) > \
            word_log_likelihood(uniform, nk_u, hyper8, V)

    def test_training_increases_likelihood(self, medium_corpus):
        """The end-to-end Fig 8 behaviour on a scaled twin."""
        from repro.core.kernels import (
            accumulate_phi,
            gibbs_sample_chunk,
            recount_theta,
        )

        hyper = LDAHyperParams(num_topics=16)
        chunk = medium_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper, seed=0)
        rng = np.random.default_rng(1)
        lls = []
        for _ in range(10):
            new_topics, _ = gibbs_sample_chunk(
                chunk, state.topics, state.theta, state.phi, state.n_k,
                hyper, rng,
            )
            state.topics = new_topics
            state.theta = recount_theta(chunk, new_topics, 16)
            state.phi = accumulate_phi(chunk, new_topics, 16)
            state.n_k = state.phi.sum(axis=1, dtype=np.int64)
            lls.append(
                log_likelihood_per_token(
                    state.theta, state.phi, state.n_k, chunk.doc_lengths, hyper
                )
            )
        # Strictly improving on average; final well above initial.
        assert lls[-1] > lls[0]
        assert np.mean(np.diff(lls)) > 0
