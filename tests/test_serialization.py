"""Tests for model checkpointing (save/load)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CuLDA, TrainConfig
from repro.core.serialization import load_model, save_model
from repro.gpusim.platform import pascal_platform


@pytest.fixture(scope="module")
def result(request):
    from repro.corpus.synthetic import nytimes_like

    corpus = nytimes_like(num_tokens=15_000, num_topics=8, seed=9)
    return CuLDA(
        corpus, pascal_platform(1),
        TrainConfig(num_topics=12, iterations=4, seed=0),
    ).train()


class TestRoundTrip:
    def test_phi_theta_exact(self, result, tmp_path):
        p = tmp_path / "model.npz"
        save_model(result, p)
        ckpt = load_model(p)
        assert np.array_equal(ckpt.phi, result.phi)
        assert ckpt.theta == result.theta
        assert ckpt.hyper == result.hyper
        assert ckpt.corpus_name == result.corpus_name
        assert ckpt.num_topics == 12
        assert ckpt.num_words == result.phi.shape[1]

    def test_checkpoint_usable_for_inference(self, result, tmp_path):
        from repro.core.inference import infer_documents
        from repro.corpus.corpus import Corpus

        p = tmp_path / "model.npz"
        save_model(result, p)
        ckpt = load_model(p)
        doc = Corpus.from_documents([[0, 1, 2, 3, 1]], num_words=5)
        inf = infer_documents(doc, ckpt.phi, ckpt.hyper, iterations=3)
        assert np.allclose(inf.doc_topic.sum(axis=1), 1.0)

    def test_missing_field_rejected(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez(p, format_version=np.int64(1), phi=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="malformed"):
            load_model(p)

    def test_wrong_version_rejected(self, result, tmp_path):
        p = tmp_path / "model.npz"
        save_model(result, p)
        # Rewrite with a bumped version.
        with np.load(p) as data:
            fields = {k: data[k] for k in data.files}
        fields["format_version"] = np.int64(99)
        np.savez(p, **fields)
        with pytest.raises(ValueError, match="version"):
            load_model(p)


class TestVocabularyPersistence:
    def test_vocab_round_trip(self, result, tmp_path):
        from repro.corpus.corpus import Vocabulary

        V = result.phi.shape[1]
        vocab = Vocabulary(f"word{i}" for i in range(V)).freeze()
        p = tmp_path / "model_v.npz"
        save_model(result, p, vocabulary=vocab)
        ckpt = load_model(p)
        assert ckpt.vocabulary is not None
        assert len(ckpt.vocabulary) == V
        assert ckpt.vocabulary.word_of(3) == "word3"
        assert ckpt.vocabulary.frozen

    def test_vocab_size_mismatch_rejected(self, result, tmp_path):
        from repro.corpus.corpus import Vocabulary

        bad = Vocabulary(["just-one"]).freeze()
        with pytest.raises(ValueError, match="vocabulary"):
            save_model(result, tmp_path / "x.npz", vocabulary=bad)

    def test_vocab_absent_by_default(self, result, tmp_path):
        p = tmp_path / "model_nv.npz"
        save_model(result, p)
        assert load_model(p).vocabulary is None

    def test_baseline_result_keeps_vocab_and_corpus(self, tmp_path):
        from repro.baselines.warplda import WarpLDA
        from repro.core.model import LDAHyperParams
        from repro.corpus.corpus import Vocabulary
        from repro.corpus.synthetic import nytimes_like

        corpus = nytimes_like(num_tokens=3_000, num_topics=4, seed=11)
        res = WarpLDA(
            corpus, LDAHyperParams(num_topics=4), seed=0
        ).train(iterations=2)
        vocab = Vocabulary(
            f"w{i}" for i in range(corpus.num_words)
        ).freeze()
        p = tmp_path / "warplda.npz"
        save_model(res, p, vocabulary=vocab)
        ckpt = load_model(p)
        assert ckpt.algo == "warplda"
        assert ckpt.corpus_name == corpus.name
        assert ckpt.vocabulary.word_of(1) == "w1"
        assert ckpt.theta == res.theta


class TestFormatCompat:
    def test_version1_file_still_loads(self, result, tmp_path):
        """Files written before the unified engine (format 1: no algo
        field, θ mandatory) must keep loading, defaulting to culda."""
        p = tmp_path / "v1.npz"
        np.savez(
            p,
            format_version=np.int64(1),
            phi=result.phi,
            theta_indptr=result.theta.indptr,
            theta_indices=result.theta.indices,
            theta_data=result.theta.data,
            num_topics=np.int64(result.hyper.num_topics),
            alpha=np.float64(result.hyper.alpha),
            beta=np.float64(result.hyper.beta),
            corpus_name=np.array(result.corpus_name),
        )
        ckpt = load_model(p)
        assert ckpt.algo == "culda"
        assert np.array_equal(ckpt.phi, result.phi)
        assert ckpt.theta == result.theta
        assert ckpt.hyper == result.hyper

    def test_theta_optional_in_version2(self, result, tmp_path):
        from types import SimpleNamespace

        bare = SimpleNamespace(
            phi=result.phi,
            hyper=result.hyper,
            corpus_name=result.corpus_name,
            algo="scvb0",
        )
        p = tmp_path / "no_theta.npz"
        save_model(bare, p)
        ckpt = load_model(p)
        assert ckpt.theta is None
        assert ckpt.algo == "scvb0"

    def test_empty_document_theta_round_trip(self, result, tmp_path):
        from types import SimpleNamespace

        from repro.core.model import SparseTheta

        theta = SparseTheta(
            np.array([0, 2, 2, 3]),  # middle document is empty
            np.array([0, 3, 1], dtype=np.uint16),
            np.array([2, 1, 4], dtype=np.int32),
            result.hyper.num_topics,
        )
        doc = SimpleNamespace(
            phi=result.phi,
            theta=theta,
            hyper=result.hyper,
            corpus_name="tiny",
        )
        p = tmp_path / "empty_doc.npz"
        save_model(doc, p)
        ckpt = load_model(p)
        assert ckpt.theta == theta
        topics, counts = ckpt.theta.row(1)
        assert topics.size == 0 and counts.size == 0
        assert ckpt.theta.num_docs == 3


class TestIntegrity:
    """Format 3: atomic writes and SHA-256 content checksums."""

    def test_no_temp_file_left_behind(self, result, tmp_path):
        save_model(result, tmp_path / "model.npz")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "model.npz"]
        assert leftovers == []

    def test_failed_write_leaves_previous_checkpoint(self, result, tmp_path):
        """os.replace semantics: a save that dies mid-write must not
        destroy the last good checkpoint."""
        import repro.core.serialization as ser

        p = tmp_path / "model.npz"
        save_model(result, p)
        good = p.read_bytes()

        real_savez = np.savez_compressed

        def exploding_savez(fh, **fields):
            real_savez(fh, **{k: fields[k] for k in list(fields)[:2]})
            raise OSError("disk full")

        old = ser.np.savez_compressed
        ser.np.savez_compressed = exploding_savez
        try:
            with pytest.raises(OSError):
                save_model(result, p)
        finally:
            ser.np.savez_compressed = old
        assert p.read_bytes() == good
        assert [q.name for q in tmp_path.iterdir()] == ["model.npz"]

    def test_truncated_file_rejected(self, result, tmp_path):
        p = tmp_path / "model.npz"
        save_model(result, p)
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match="truncated|corrupted"):
            load_model(p)

    def test_bit_flip_rejected(self, result, tmp_path):
        p = tmp_path / "model.npz"
        save_model(result, p)
        raw = bytearray(p.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        p.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            load_model(p)

    def test_tampered_field_names_digests(self, result, tmp_path):
        """A valid archive whose contents were rewritten fails the
        checksum with an error naming expected vs actual digest."""
        p = tmp_path / "model.npz"
        save_model(result, p)
        with np.load(p) as data:
            fields = {k: data[k] for k in data.files}
        fields["phi"] = fields["phi"].copy()
        fields["phi"][0, 0] += 1
        np.savez_compressed(p, **fields)
        with pytest.raises(ValueError, match="expected digest"):
            load_model(p)

    def test_checksum_required_for_v3(self, result, tmp_path):
        p = tmp_path / "model.npz"
        save_model(result, p)
        with np.load(p) as data:
            fields = {k: data[k] for k in data.files if k != "checksum"}
        np.savez_compressed(p, **fields)
        with pytest.raises(ValueError, match="checksum"):
            load_model(p)

    def test_pre_checksum_versions_still_load(self, result, tmp_path):
        """v1/v2 files predate checksums and must load unverified."""
        p = tmp_path / "model.npz"
        save_model(result, p)
        with np.load(p) as data:
            fields = {k: data[k] for k in data.files if k != "checksum"}
        fields["format_version"] = np.int64(2)
        np.savez_compressed(p, **fields)
        ckpt = load_model(p)
        assert np.array_equal(ckpt.phi, result.phi)

    def test_run_state_checksummed_too(self, result, tmp_path):
        from repro.core.serialization import load_run_state
        from repro.corpus.synthetic import nytimes_like

        corpus = nytimes_like(num_tokens=8_000, num_topics=8, seed=9)
        trainer = CuLDA(
            corpus, pascal_platform(2),
            TrainConfig(num_topics=8, iterations=2, seed=0),
        )
        p = tmp_path / "run.npz"
        trainer.train(save_every=2, checkpoint_path=p)
        assert load_run_state(p).iteration == 2
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) - 40])
        with pytest.raises(ValueError, match="truncated|corrupted|integrity"):
            load_run_state(p)
