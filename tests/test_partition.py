"""Tests for workload partitioning (paper §4, §5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import KernelConfig
from repro.core.model import LDAHyperParams
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.gpusim.platform import GPU_TITAN_XP
from repro.sched.partition import (
    choose_chunking,
    estimate_chunk_device_bytes,
    model_device_bytes,
    partition_by_tokens,
    sync_volume_by_policy,
)


class TestPartitionByTokens:
    def test_covers_all_docs_disjointly(self, medium_corpus):
        ranges = partition_by_tokens(medium_corpus, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == medium_corpus.num_docs
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
        assert all(lo < hi for lo, hi in ranges)

    def test_token_balance(self, medium_corpus):
        """§4: chunks are even in tokens, not documents."""
        ranges = partition_by_tokens(medium_corpus, 4)
        tokens = [
            int(medium_corpus.doc_indptr[hi] - medium_corpus.doc_indptr[lo])
            for lo, hi in ranges
        ]
        mean = np.mean(tokens)
        assert max(tokens) < 1.3 * mean
        assert min(tokens) > 0.7 * mean

    def test_skewed_lengths_balanced_by_tokens_not_docs(self):
        # One giant doc + many tiny ones: doc-count partitioning would
        # be wildly unbalanced; token partitioning is not.
        docs = [[0] * 1000] + [[1]] * 100
        c = Corpus.from_documents(docs, num_words=2)
        ranges = partition_by_tokens(c, 2)
        tokens = [int(c.doc_indptr[hi] - c.doc_indptr[lo]) for lo, hi in ranges]
        # The giant doc forces its chunk to ~1000; the rest go together.
        assert ranges[0][1] - ranges[0][0] < 5
        assert tokens[0] >= 1000

    def test_single_chunk(self, tiny_corpus):
        assert partition_by_tokens(tiny_corpus, 1) == [(0, 5)]

    def test_max_chunks_one_doc_each(self, tiny_corpus):
        ranges = partition_by_tokens(tiny_corpus, 5)
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_too_many_chunks_rejected(self, tiny_corpus):
        with pytest.raises(ValueError):
            partition_by_tokens(tiny_corpus, 6)
        with pytest.raises(ValueError):
            partition_by_tokens(tiny_corpus, 0)


class TestMemoryEstimates:
    HYPER = LDAHyperParams(num_topics=32)
    CFG = KernelConfig()

    def test_chunk_bytes_positive_and_monotone(self, medium_corpus):
        small = estimate_chunk_device_bytes(
            medium_corpus, (0, 10), self.HYPER, self.CFG
        )
        large = estimate_chunk_device_bytes(
            medium_corpus, (0, 100), self.HYPER, self.CFG
        )
        assert 0 < small < large

    def test_theta_capacity_bounded_by_k(self, medium_corpus):
        """θ capacity uses min(DocLen, K): a huge K must not blow up the
        estimate beyond the doc-length bound."""
        a = estimate_chunk_device_bytes(
            medium_corpus, (0, 50), LDAHyperParams(num_topics=8), self.CFG
        )
        b = estimate_chunk_device_bytes(
            medium_corpus, (0, 50), LDAHyperParams(num_topics=60000), KernelConfig(compressed=False)
        )
        # K=60000 >> doc lengths, so capacity is doclen-bound: the
        # difference should be far less than proportional to K.
        assert b < a * 20

    def test_model_bytes_compression(self):
        comp = model_device_bytes(1024, 10_000, KernelConfig(compressed=True))
        wide = model_device_bytes(1024, 10_000, KernelConfig(compressed=False))
        assert wide == pytest.approx(2 * comp, rel=0.01)


class TestChooseChunking:
    HYPER = LDAHyperParams(num_topics=32)
    CFG = KernelConfig()

    def test_small_corpus_resident(self, medium_corpus):
        plan = choose_chunking(
            medium_corpus, 2, self.HYPER, self.CFG, GPU_TITAN_XP
        )
        assert plan.chunks_per_gpu == 1
        assert plan.num_chunks == 2

    def test_round_robin_assignment(self, medium_corpus):
        plan = choose_chunking(
            medium_corpus, 2, self.HYPER, self.CFG, GPU_TITAN_XP,
            chunks_per_gpu=3,
        )
        assert plan.num_chunks == 6
        assert [plan.gpu_of_chunk(i) for i in range(6)] == [0, 1, 0, 1, 0, 1]

    def test_explicit_m_validated(self, medium_corpus):
        with pytest.raises(ValueError):
            choose_chunking(
                medium_corpus, 1, self.HYPER, self.CFG, GPU_TITAN_XP,
                chunks_per_gpu=0,
            )

    def test_streaming_when_memory_tight(self):
        """A corpus bigger than the device must get M > 1 (paper §5.1)."""
        from repro.gpusim.device import DeviceSpec

        tiny_gpu = DeviceSpec(
            name="tiny", arch="t", num_sms=4, peak_bandwidth_gbps=100,
            peak_gflops=100,
            mem_capacity_bytes=40_000_000,
        )
        spec = SyntheticSpec(
            num_docs=3000, num_words=500, avg_doc_length=900, num_topics=4
        )
        big = generate_lda_corpus(spec, seed=0)  # ~2.7M tokens
        plan = choose_chunking(
            big, 1, LDAHyperParams(num_topics=64), self.CFG, tiny_gpu
        )
        assert plan.chunks_per_gpu > 1

    def test_model_too_big_raises(self, medium_corpus):
        from repro.gpusim.device import DeviceSpec

        nano = DeviceSpec(
            name="nano", arch="t", num_sms=1, peak_bandwidth_gbps=1,
            peak_gflops=1, mem_capacity_bytes=1000,
        )
        with pytest.raises(MemoryError, match="model alone"):
            choose_chunking(medium_corpus, 1, self.HYPER, self.CFG, nano)


class TestPolicyAnalysis:
    def test_by_document_cheaper_when_d_large(self):
        """§4's argument: D >> V makes partition-by-document the cheaper
        policy (φ sync << θ sync)."""
        vol = sync_volume_by_policy(
            num_docs=8_200_000, num_words=141_043, num_topics=1024,
            config=KernelConfig(),
        )
        assert vol["by_document"] < vol["by_word"]

    def test_by_word_cheaper_in_inverted_regime(self):
        vol = sync_volume_by_policy(
            num_docs=10, num_words=1_000_000, num_topics=64,
            config=KernelConfig(),
        )
        assert vol["by_word"] < vol["by_document"]
