"""Tests for the telemetry subsystem: registry, spans, exporters,
callback hooks, and the trainer integration."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import (
    BestPhiCheckpointer,
    CallbackList,
    JSONLEmitter,
    MetricsRegistry,
    ProgressLogger,
    TrainerCallback,
    emit_counter,
    event_to_json,
    merged_chrome_json,
    metrics_markdown,
    parse_prometheus_text,
    read_jsonl,
    span,
    telemetry_session,
    to_prometheus,
)
from repro.telemetry.spans import SPAN_KIND


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_label_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes_total", "moved", ("direction", "device"))
        c.inc(10, direction="h2d", device="0")
        c.inc(5, direction="h2d", device="0")
        c.inc(7, direction="d2h", device="1")
        assert c.value(direction="h2d", device="0") == 15
        assert c.value(direction="d2h", device="1") == 7
        # Unseen label combination reads as zero, not an error.
        assert c.value(direction="p2p", device="0") == 0.0

    def test_counter_rejects_wrong_labelset(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(1, b="oops")
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(1)  # missing the declared label

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("k",))
        b = reg.counter("x_total", labelnames=("k",))
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x_total")

    def test_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="registered with labels"):
            reg.counter("x_total", labelnames=("b",))

    def test_gauge_set_max_is_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("hw", labelnames=("device",))
        g.set_max(10, device="0")
        g.set_max(3, device="0")
        g.set_max(12, device="0")
        assert g.value(device="0") == 12

    def test_top_counters_sorts_descending(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(1)
        reg.counter("b_total").inc(100)
        reg.gauge("not_a_counter").set(1e9)
        top = reg.top_counters(5)
        assert [s.name for s in top] == ["b_total", "a_total"]


class TestHistogram:
    def test_quantiles_are_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count() == 100
        assert h.sum() == pytest.approx(5050.0)
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_without_observations_is_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert math.isnan(h.quantile(q))

    def test_quantile_single_observation(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        h.observe(0.042)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.042

    def test_quantile_out_of_range_raises(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)

    @given(
        values=st.lists(
            st.floats(min_value=1e-9, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        )
    )
    def test_quantiles_match_numpy_percentile(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, 100.0 * q)), rel=1e-9
            )

    def test_bucket_counts_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("d", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 2
        assert counts[10.0] == 3
        assert counts[float("inf")] == 4


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

class TestPrometheus:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("tokens_total", "tokens sampled").inc(123)
        c = reg.counter("bytes_total", labelnames=("direction",))
        c.inc(10, direction="h2d")
        c.inc(20, direction="d2h")
        reg.gauge("busy", labelnames=("device",)).set(0.75, device="0")
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_round_trip(self):
        reg = self._populated()
        text = to_prometheus(reg)
        parsed = parse_prometheus_text(text)
        assert parsed[("tokens_total", ())] == 123
        assert parsed[("bytes_total", (("direction", "h2d"),))] == 10
        assert parsed[("bytes_total", (("direction", "d2h"),))] == 20
        assert parsed[("busy", (("device", "0"),))] == 0.75
        assert parsed[("lat_seconds_count", ())] == 2
        assert parsed[("lat_seconds_sum", ())] == pytest.approx(0.55)
        # Cumulative buckets, +Inf included.
        assert parsed[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert parsed[("lat_seconds_bucket", (("le", "+Inf"),))] == 2

    def test_type_and_help_lines(self):
        text = to_prometheus(self._populated())
        assert "# TYPE tokens_total counter" in text
        assert "# HELP tokens_total tokens sampled" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_markdown_snapshot(self):
        md = metrics_markdown(self._populated())
        assert "| tokens_total | counter |" in md
        assert "direction=h2d" in md
        assert "| lat_seconds | histogram |" in md


class TestEventJson:
    def test_drops_unserializable_values(self):
        ev = {
            "iteration": np.int64(3),
            "tokens_per_sec": np.float64(1.5e8),
            "phi": lambda: None,
            "result": object(),
            "busy": {0: 0.5},
        }
        d = json.loads(event_to_json("iteration_end", ev))
        assert d["event"] == "iteration_end"
        assert d["iteration"] == 3
        assert d["tokens_per_sec"] == 1.5e8
        assert "phi" not in d and "result" not in d
        assert d["busy"] == {"0": 0.5}

    def test_jsonl_emitter_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        em = JSONLEmitter(path)
        em.on_train_start({"corpus": "tiny"})
        em.on_iteration_end({"iteration": 0})
        em.on_train_end({"iterations": 1})
        events = read_jsonl(path)
        assert [e["event"] for e in events] == [
            "train_start", "iteration_end", "train_end",
        ]
        assert events[0]["corpus"] == "tiny"


# ----------------------------------------------------------------------
# Sessions and spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_emit_is_noop_without_session(self):
        emit_counter("orphan_total", 1)  # must not raise

    def test_span_records_interval_and_histogram(self):
        with telemetry_session() as s:
            with span("phase", device=2):
                pass
        assert len(s.trace.intervals) == 1
        iv = s.trace.intervals[0]
        assert iv.kind == SPAN_KIND
        assert iv.label == "phase"
        assert iv.stream == "host:dev2"
        assert iv.end >= iv.start >= 0
        h = s.registry.get("span_seconds")
        assert h is not None and h.count(name="phase") == 1

    def test_span_duration_without_session(self):
        with span("bare") as sp:
            x = sum(range(100))
        assert x == 4950
        assert sp.duration >= 0

    def test_sessions_nest(self):
        with telemetry_session() as outer:
            emit_counter("n_total", 1)
            with telemetry_session() as inner:
                emit_counter("n_total", 10)
            emit_counter("n_total", 1)
        assert outer.registry.counter("n_total").value() == 2
        assert inner.registry.counter("n_total").value() == 10

    def test_merged_chrome_json_hosts_under_pid_minus_one(self):
        from repro.gpusim.trace import TraceRecorder

        sim = TraceRecorder()
        sim.add(0, "0.compute", "sampling", "k", 0.0, 1.0)
        with telemetry_session() as s:
            with span("prep"):
                pass
        doc = json.loads(merged_chrome_json(sim, s.trace))
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {0, -1}
        assert doc["traceEvents"][0]["ph"] == "X"


# ----------------------------------------------------------------------
# Callbacks
# ----------------------------------------------------------------------

class _Recorder(TrainerCallback):
    def __init__(self):
        self.calls: list[tuple[str, dict]] = []

    def on_train_start(self, event):
        self.calls.append(("train_start", event))

    def on_sync_end(self, event):
        self.calls.append(("sync_end", event))

    def on_iteration_end(self, event):
        self.calls.append(("iteration_end", event))

    def on_train_end(self, event):
        self.calls.append(("train_end", event))


class TestCallbackList:
    def test_fire_order_and_unknown_hooks(self):
        seen = []

        class A(TrainerCallback):
            def on_iteration_end(self, event):
                seen.append("a")

        class B:  # not even a TrainerCallback — duck-typed
            def on_iteration_end(self, event):
                seen.append("b")

        cbs = CallbackList([A(), B()])
        cbs.fire("on_iteration_end", {})
        cbs.fire("on_never_heard_of", {})  # silently ignored
        assert seen == ["a", "b"]

    def test_merged_does_not_mutate(self):
        base = CallbackList([TrainerCallback()])
        merged = base.merged([TrainerCallback()])
        assert len(base) == 1 and len(merged) == 2

    def test_progress_logger_writes_lines(self):
        import io

        buf = io.StringIO()
        pl = ProgressLogger(every=2, file=buf)
        pl.on_train_start({"corpus": "c", "machine": "m"})
        pl.on_iteration_end({"iteration": 0, "tokens_per_sec": 1e6})
        pl.on_iteration_end({
            "iteration": 1, "tokens_per_sec": 2e6,
            "device_busy_fraction": {0: 0.5},
        })
        pl.on_train_end({"avg_tokens_per_sec": 1.5e6, "wall_seconds": 1.0})
        out = buf.getvalue()
        assert "[train] c on m" in out
        assert "[iter    0]" not in out  # every=2 skips iteration 0
        assert "[iter    1]" in out and "busy[g0=50%]" in out
        assert "[done]" in out


# ----------------------------------------------------------------------
# Trainer integration (the acceptance criterion)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def culda_run():
    """One instrumented 3-iteration CuLDA run shared by the tests."""
    from repro.core import CuLDA, TrainConfig
    from repro.corpus.synthetic import nytimes_like
    from repro.gpusim.platform import pascal_platform

    corpus = nytimes_like(num_tokens=12_000, num_topics=8, seed=0)
    recorder = _Recorder()
    registry = MetricsRegistry()
    trainer = CuLDA(
        corpus,
        machine=pascal_platform(2),
        config=TrainConfig(
            num_topics=8, iterations=3, seed=0, likelihood_every=1,
            # Forced: the hooks below assert p2p traffic, which 'auto'
            # may legitimately avoid at this tiny payload.
            sync_algorithm="gpu_tree",
        ),
        callbacks=[recorder],
        registry=registry,
    )
    result = trainer.train()
    return trainer, result, recorder, registry


class TestCuLDAHooks:
    def test_firing_order(self, culda_run):
        _, _, rec, _ = culda_run
        names = [n for n, _ in rec.calls]
        assert names[0] == "train_start"
        assert names[-1] == "train_end"
        assert names[1:-1] == ["sync_end", "iteration_end"] * 3

    def test_every_iteration_observed_with_required_keys(self, culda_run):
        _, _, rec, _ = culda_run
        iters = [e for n, e in rec.calls if n == "iteration_end"]
        assert [e["iteration"] for e in iters] == [0, 1, 2]
        for e in iters:
            assert e["tokens_per_sec"] > 0
            busy = e["device_busy_fraction"]
            assert set(busy) == {0, 1}
            assert all(0.0 <= f <= 1.0 for f in busy.values())
            assert e["p1_draws"] + e["p2_draws"] > 0
            assert e["tree_probe_levels"] > 0
            assert e["log_likelihood_per_token"] is not None

    def test_sync_end_precedes_iteration_end(self, culda_run):
        _, _, rec, _ = culda_run
        syncs = [e for n, e in rec.calls if n == "sync_end"]
        assert len(syncs) == 3
        for e in syncs:
            assert e["sync_seconds"] >= 0
            assert e["p2p_bytes"] > 0  # gpu_tree on 2 GPUs moves bytes

    def test_train_end_payload(self, culda_run):
        _, result, rec, _ = culda_run
        end = rec.calls[-1][1]
        assert end["result"] is result
        assert end["iterations"] == 3
        assert end["avg_tokens_per_sec"] == pytest.approx(
            result.avg_tokens_per_sec
        )

    def test_kernel_counters_populate_registry(self, culda_run):
        _, result, _, reg = culda_run
        tokens = reg.counter("sampler_tokens_total").value()
        assert tokens == result.num_tokens * 3
        p1 = reg.counter("sampler_p1_draws_total").value()
        p2 = reg.counter("sampler_p2_draws_total").value()
        assert p1 + p2 == tokens
        assert reg.counter("sampler_tree_probe_levels_total").value() > 0
        xfer = reg.get("transfer_bytes_total")
        assert xfer is not None
        assert xfer.value(direction="h2d", device="0") > 0
        assert "sync_bytes_total" in reg
        assert "phi_count_high_water" in reg
        assert "span_seconds" in reg

    def test_phi_snapshot_callable_in_hook(self):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import nytimes_like
        from repro.gpusim.platform import pascal_platform

        shapes = []

        class Grab(TrainerCallback):
            def on_iteration_end(self, event):
                shapes.append(event["phi"]().shape)

        corpus = nytimes_like(num_tokens=6_000, num_topics=4, seed=1)
        CuLDA(
            corpus,
            machine=pascal_platform(1),
            config=TrainConfig(num_topics=4, iterations=2, seed=1),
            callbacks=[Grab()],
        ).train()
        assert shapes == [(4, corpus.num_words)] * 2

    def test_callbacks_do_not_change_the_model(self):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import nytimes_like
        from repro.gpusim.platform import pascal_platform

        corpus = nytimes_like(num_tokens=6_000, num_topics=4, seed=2)
        cfg = TrainConfig(num_topics=4, iterations=2, seed=2)
        plain = CuLDA(corpus, machine=pascal_platform(1), config=cfg).train()
        hooked = CuLDA(
            corpus, machine=pascal_platform(1), config=cfg,
            callbacks=[_Recorder()], registry=MetricsRegistry(),
        ).train()
        np.testing.assert_array_equal(plain.phi, hooked.phi)

    def test_best_phi_checkpointer(self, tmp_path):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import nytimes_like
        from repro.gpusim.platform import pascal_platform

        path = str(tmp_path / "best.npz")
        cp = BestPhiCheckpointer(path)
        corpus = nytimes_like(num_tokens=6_000, num_topics=4, seed=3)
        CuLDA(
            corpus,
            machine=pascal_platform(1),
            config=TrainConfig(
                num_topics=4, iterations=3, seed=3, likelihood_every=1
            ),
            callbacks=[cp],
        ).train()
        assert cp.saved
        ckpt = np.load(path)
        assert ckpt["phi"].shape == (4, corpus.num_words)
        assert math.isfinite(float(ckpt["log_likelihood_per_token"]))


class TestBaselineHooks:
    def test_warplda_hooks_and_span_timing(self, small_corpus):
        from repro.baselines.warplda import WarpLDA
        from repro.core.model import LDAHyperParams

        rec = _Recorder()
        reg = MetricsRegistry()
        trainer = WarpLDA(
            small_corpus, LDAHyperParams(num_topics=4),
            callbacks=[rec], registry=reg,
        )
        result = trainer.train(iterations=2)
        names = [n for n, _ in rec.calls]
        assert names == [
            "train_start", "iteration_end", "iteration_end", "train_end",
        ]
        assert result.wall_seconds > 0
        assert reg.get("span_seconds").count(name="train:warplda") == 1

    def test_scvb0_hooks(self, small_corpus):
        from repro.baselines.scvb0 import SCVB0
        from repro.core.model import LDAHyperParams

        rec = _Recorder()
        SCVB0(
            small_corpus, LDAHyperParams(num_topics=4), callbacks=[rec]
        ).train(iterations=2)
        iters = [e for n, e in rec.calls if n == "iteration_end"]
        assert [e["iteration"] for e in iters] == [0, 1]

    def test_ldastar_hooks(self, small_corpus):
        from repro.baselines.ldastar import LDAStar
        from repro.core.model import LDAHyperParams

        rec = _Recorder()
        result = LDAStar(
            small_corpus, LDAHyperParams(num_topics=4), num_workers=2,
            callbacks=[rec],
        ).train(iterations=2)
        iters = [e for n, e in rec.calls if n == "iteration_end"]
        assert len(iters) == 2
        assert all(e["sim_seconds"] > 0 for e in iters)
        assert result.total_sim_seconds == pytest.approx(
            sum(e["sim_seconds"] for e in iters)
        )

    def test_saberlda_forwards_callbacks(self, small_corpus):
        from repro.baselines.saberlda import SaberLDA
        from repro.core.culda import TrainConfig

        rec = _Recorder()
        sab = SaberLDA(
            small_corpus,
            config=TrainConfig(num_topics=4, iterations=2, seed=0),
            callbacks=[rec],
        )
        sab.train()
        assert [n for n, _ in rec.calls].count("iteration_end") == 2
        assert sab.registry is not None
        assert "sampler_tokens_total" in sab.registry


# ----------------------------------------------------------------------
# Report integration
# ----------------------------------------------------------------------

class TestReportMetrics:
    def test_render_markdown_includes_metrics_section(self, culda_run):
        from repro.report import render_markdown

        _, result, _, registry = culda_run
        md = render_markdown(result, registry=registry)
        assert "## Metrics" in md
        assert "sampler_tokens_total" in md
        # Without a registry the section is absent (back-compat).
        assert "## Metrics" not in render_markdown(result)
