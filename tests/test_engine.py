"""Tests for the unified training engine: loop, run state, resume."""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.baselines.warplda import WarpLDA
from repro.core import CuLDA, TrainConfig
from repro.core.model import LDAHyperParams, SparseTheta
from repro.core.serialization import (
    load_model,
    load_run_state,
    save_model,
    save_run_state,
)
from repro.engine import (
    Algorithm,
    IterationStats,
    RunState,
    freeze_rng_state,
    thaw_rng_state,
)
from repro.gpusim.platform import pascal_platform


class _CopyCheckpointAt:
    """Callback that snapshots the checkpoint file mid-run.

    The loop writes the ``save_every`` checkpoint right after firing
    ``on_iteration_end`` for the saving iteration, so copying on the
    *next* iteration's event captures the mid-run state before the final
    save overwrites it.
    """

    def __init__(self, iteration: int, src, dst):
        self.iteration = iteration
        self.src, self.dst = src, dst

    def on_iteration_end(self, event: dict) -> None:
        if event["iteration"] == self.iteration:
            shutil.copy(self.src, self.dst)


class TestRngState:
    def test_freeze_thaw_resumes_stream(self):
        rng = np.random.default_rng(42)
        rng.random(100)
        payload = freeze_rng_state(rng)
        twin = thaw_rng_state(payload)
        assert np.array_equal(rng.random(50), twin.random(50))
        assert np.array_equal(rng.integers(0, 99, 50), twin.integers(0, 99, 50))


class TestLoopValidation:
    def test_stop_tolerance_requires_cadence(self, small_corpus):
        trainer = CuLDA(
            small_corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2, stop_rel_tolerance=1e-3),
        )
        with pytest.raises(ValueError, match="likelihood_every"):
            trainer.train()

    def test_save_every_requires_path(self, small_corpus):
        trainer = CuLDA(
            small_corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2),
        )
        with pytest.raises(ValueError, match="checkpoint_path"):
            trainer.train(save_every=1)

    def test_resume_refuses_other_algorithm(self, small_corpus, hyper8,
                                            tmp_path):
        ckpt = tmp_path / "culda.npz"
        CuLDA(
            small_corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2, seed=0),
        ).train(save_every=1, checkpoint_path=ckpt)
        with pytest.raises(ValueError, match="warplda"):
            WarpLDA(small_corpus, hyper8, seed=0).train(
                iterations=4, resume=ckpt
            )

    def test_unimplemented_algorithm_surface(self):
        algo = Algorithm()
        with pytest.raises(NotImplementedError):
            algo.init_state()
        with pytest.raises(NotImplementedError):
            algo.run_iteration(RunState(algo="algorithm"))


class TestRunStateSerialization:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(5)
        rng.random(17)
        theta = SparseTheta(
            np.array([0, 2, 2, 3]),
            np.array([0, 3, 1], dtype=np.uint16),
            np.array([2, 1, 4], dtype=np.int32),
            8,
        )
        state = RunState(
            algo="culda",
            iteration=3,
            sim_seconds=1.25,
            history=[
                IterationStats(0, 0.5, 100.0, 2.0, 0.9, None),
                IterationStats(1, 0.75, 90.0, 1.5, 0.8, -7.5),
            ],
            phi=np.arange(24, dtype=np.int32).reshape(8, 3),
            topics=[np.array([1, 2, 3], dtype=np.uint16)],
            thetas=[theta],
            rngs=[rng],
            extras={"t": np.array([7], dtype=np.int64)},
        )
        p = tmp_path / "run.npz"
        save_run_state(
            state, p, hyper=LDAHyperParams(num_topics=8), corpus_name="c"
        )
        loaded = load_run_state(p)
        assert loaded.algo == "culda"
        assert loaded.iteration == 3
        assert loaded.sim_seconds == 1.25
        assert loaded.history == state.history
        assert np.array_equal(loaded.phi, state.phi)
        assert np.array_equal(loaded.topics[0], state.topics[0])
        assert loaded.thetas[0] == theta
        assert np.array_equal(loaded.extras["t"], state.extras["t"])
        # The restored RNG continues the original stream exactly.
        assert np.array_equal(loaded.rngs[0].random(9), rng.random(9))

    def test_run_state_loads_as_model(self, small_corpus, tmp_path):
        ckpt = tmp_path / "run.npz"
        CuLDA(
            small_corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2, seed=0),
        ).train(
            save_every=1, checkpoint_path=ckpt,
            vocabulary=small_corpus.vocabulary,
        )
        model = load_model(ckpt)
        assert model.algo == "culda"
        assert model.corpus_name == small_corpus.name
        assert model.phi.shape == (8, small_corpus.num_words)
        assert model.theta is None  # run states carry per-shard θ instead

    def test_plain_model_refuses_resume(self, small_corpus, tmp_path):
        p = tmp_path / "model.npz"
        result = CuLDA(
            small_corpus, pascal_platform(1),
            TrainConfig(num_topics=8, iterations=2, seed=0),
        ).train()
        save_model(result, p)
        with pytest.raises(ValueError, match="run-state"):
            load_run_state(p)


class TestResumeDeterminism:
    """ISSUE acceptance: train N iterations vs train n, checkpoint,
    resume to N — φ, θ, z, and the likelihood trace are bit-identical."""

    def test_culda_bit_identical(self, small_corpus, tmp_path):
        cfg = TrainConfig(
            num_topics=8, iterations=6, seed=3, likelihood_every=2
        )
        ckpt = tmp_path / "run.npz"
        mid = tmp_path / "mid.npz"
        full = CuLDA(small_corpus, pascal_platform(2), cfg).train(
            callbacks=[_CopyCheckpointAt(3, ckpt, mid)],
            save_every=3,
            checkpoint_path=ckpt,
        )
        assert load_run_state(mid).iteration == 3

        resumed = CuLDA(small_corpus, pascal_platform(2), cfg).train(
            resume=mid
        )
        assert np.array_equal(full.phi, resumed.phi)
        assert full.theta == resumed.theta
        assert np.array_equal(full.topics, resumed.topics)
        assert len(resumed.iterations) == 6
        assert [s.log_likelihood_per_token for s in full.iterations] == [
            s.log_likelihood_per_token for s in resumed.iterations
        ]

    def test_warplda_bit_identical(self, small_corpus, hyper8, tmp_path):
        ckpt = tmp_path / "run.npz"
        mid = tmp_path / "mid.npz"
        full = WarpLDA(small_corpus, hyper8, seed=5).train(
            iterations=6,
            likelihood_every=2,
            callbacks=[_CopyCheckpointAt(3, ckpt, mid)],
            save_every=3,
            checkpoint_path=ckpt,
        )
        resumed_trainer = WarpLDA(small_corpus, hyper8, seed=5)
        resumed = resumed_trainer.train(
            iterations=6, likelihood_every=2, resume=mid
        )
        assert np.array_equal(full.phi, resumed.phi)
        assert full.theta == resumed.theta
        assert np.array_equal(resumed_trainer.topics,
                              resumed_trainer.topics)
        assert [s.log_likelihood_per_token for s in full.iterations] == [
            s.log_likelihood_per_token for s in resumed.iterations
        ]

    def test_ldastar_bit_identical(self, small_corpus, hyper8, tmp_path):
        from repro.baselines.ldastar import LDAStar

        ckpt = tmp_path / "run.npz"
        mid = tmp_path / "mid.npz"
        kwargs = dict(num_workers=3, staleness=1, seed=2)
        full = LDAStar(small_corpus, hyper8, **kwargs).train(
            iterations=6,
            likelihood_every=2,
            callbacks=[_CopyCheckpointAt(3, ckpt, mid)],
            save_every=3,
            checkpoint_path=ckpt,
        )
        resumed = LDAStar(small_corpus, hyper8, **kwargs).train(
            iterations=6, likelihood_every=2, resume=mid
        )
        assert np.array_equal(full.phi, resumed.phi)
        assert full.theta == resumed.theta
        assert full.network_bytes == pytest.approx(resumed.network_bytes)
        assert [s.log_likelihood_per_token for s in full.iterations] == [
            s.log_likelihood_per_token for s in resumed.iterations
        ]

    def test_scvb0_bit_identical(self, small_corpus, hyper8, tmp_path):
        from repro.baselines.scvb0 import SCVB0

        ckpt = tmp_path / "run.npz"
        mid = tmp_path / "mid.npz"
        full = SCVB0(small_corpus, hyper8, seed=4).train(
            iterations=4,
            likelihood_every=2,
            callbacks=[_CopyCheckpointAt(2, ckpt, mid)],
            save_every=2,
            checkpoint_path=ckpt,
        )
        resumed = SCVB0(small_corpus, hyper8, seed=4).train(
            iterations=4, likelihood_every=2, resume=mid
        )
        assert np.array_equal(full.n_phi, resumed.n_phi)
        assert np.array_equal(full.n_theta, resumed.n_theta)
        assert [s.log_likelihood_per_token for s in full.iterations] == [
            s.log_likelihood_per_token for s in resumed.iterations
        ]

    def test_resume_fires_resumed_marker(self, small_corpus, tmp_path):
        events = []

        class Recorder:
            def on_train_start(self, event):
                events.append(event)

        cfg = TrainConfig(num_topics=8, iterations=4, seed=0)
        ckpt = tmp_path / "run.npz"
        CuLDA(small_corpus, pascal_platform(1), cfg).train(
            save_every=2, checkpoint_path=ckpt
        )
        CuLDA(small_corpus, pascal_platform(1), cfg).train(
            callbacks=[Recorder()], resume=ckpt
        )
        # The checkpoint holds the completed run; resume starts at 4.
        assert events[-1]["resumed_from_iteration"] == 4
        assert events[-1]["algo"] == "culda"


class TestUnifiedResult:
    def test_every_trainer_reports_algo(self, small_corpus, hyper8):
        from repro.baselines import LDAStar, SCVB0, SaberLDA

        results = {
            "culda": CuLDA(
                small_corpus, pascal_platform(1),
                TrainConfig(num_topics=8, iterations=2, seed=0),
            ).train(),
            "saberlda": SaberLDA(
                small_corpus,
                config=TrainConfig(num_topics=8, iterations=2, seed=0),
            ).train(),
            "warplda": WarpLDA(small_corpus, hyper8, seed=0).train(
                iterations=2
            ),
            "scvb0": SCVB0(small_corpus, hyper8, seed=0).train(iterations=2),
            "ldastar": LDAStar(
                small_corpus, hyper8, num_workers=2, seed=0
            ).train(iterations=2),
        }
        for algo, result in results.items():
            assert result.algo == algo
            assert result.phi is not None
            assert result.hyper.num_topics == 8
            assert len(result.iterations) == 2
            assert result.final_log_likelihood is not None
            assert result.summary()  # renders for every trainer

    def test_summaries_name_the_algorithm(self, small_corpus, hyper8):
        r = WarpLDA(small_corpus, hyper8, seed=0).train(iterations=2)
        assert r.summary().startswith("WarpLDA on ")

    def test_no_trainer_keeps_a_private_loop(self):
        """The tentpole invariant: iteration control lives only in the
        engine — no trainer module retains a per-algorithm train loop."""
        import inspect

        import repro.baselines.ldastar as ldastar
        import repro.baselines.scvb0 as scvb0
        import repro.baselines.warplda as warplda
        import repro.core.culda as culda

        for mod in (culda, warplda, scvb0, ldastar):
            src = inspect.getsource(mod)
            assert "_train_impl" not in src
            assert "TrainingLoop" in src
