"""Tests for topic quality metrics (coherence, diversity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.topics import (
    top_words_per_topic,
    topic_diversity,
    umass_coherence,
)
from repro.corpus.corpus import Corpus


class TestTopWords:
    def test_orders_by_count(self):
        phi = np.array([[5, 1, 9, 0], [0, 7, 1, 2]])
        tops = top_words_per_topic(phi, n=2)
        assert tops[0].tolist() == [2, 0]
        assert tops[1].tolist() == [1, 3]

    def test_validation(self):
        phi = np.zeros((2, 3))
        with pytest.raises(ValueError):
            top_words_per_topic(phi, n=0)
        with pytest.raises(ValueError):
            top_words_per_topic(phi, n=9)


class TestDiversity:
    def test_disjoint_topics_score_one(self):
        phi = np.eye(4) * 10 + 0.0
        assert topic_diversity(phi, top_n=1) == 1.0

    def test_identical_topics_score_low(self):
        phi = np.tile(np.array([9.0, 5.0, 1.0, 0.0]), (4, 1))
        assert topic_diversity(phi, top_n=2) == pytest.approx(2 / 8)


class TestCoherence:
    def _corpus_with_cooccurring_pairs(self):
        # Words 0,1 always co-occur; words 2,3 never do.
        docs = [[0, 1]] * 20 + [[2]] * 10 + [[3]] * 10
        return Corpus.from_documents(docs, num_words=4)

    def test_cooccurring_topic_more_coherent(self):
        corpus = self._corpus_with_cooccurring_pairs()
        phi = np.array(
            [
                [10, 10, 0, 0],  # topic of co-occurring words
                [0, 0, 10, 10],  # topic of never-co-occurring words
            ]
        )
        scores = umass_coherence(phi, corpus, top_n=2)
        assert scores[0] > scores[1]

    def test_trained_model_beats_shuffled(self):
        """End-to-end: a trained model's topics are more coherent than a
        label-shuffled φ on the training corpus."""
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
        from repro.gpusim.platform import pascal_platform

        corpus = generate_lda_corpus(
            SyntheticSpec(num_docs=200, num_words=120, avg_doc_length=40,
                          num_topics=4, alpha=0.05),
            seed=17,
        )
        r = CuLDA(corpus, pascal_platform(1),
                  TrainConfig(num_topics=8, iterations=25, seed=0)).train()
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(r.phi.ravel()).reshape(r.phi.shape)
        good = umass_coherence(r.phi, corpus, top_n=6).mean()
        bad = umass_coherence(shuffled, corpus, top_n=6).mean()
        assert good > bad
