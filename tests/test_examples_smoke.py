"""Smoke tests keeping the runnable examples healthy.

Each example's ``main()`` runs in-process with stdout captured. The
slow ones (convergence comparison, K sweep) are exercised through their
building blocks elsewhere; here we run the fast end-to-end ones.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExampleSmoke:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "CuLDA_CGS on Pascal Platform" in out
        assert "topic 0:" in out

    def test_news_topics_recovers_themes(self, capsys):
        _load("news_topics").main()
        out = capsys.readouterr().out
        assert "discovered topics" in out
        # At least one seeded theme word shows up among the top words.
        assert any(w in out for w in ("coach", "stock", "senate", "chef", "gene"))

    def test_profile_timeline(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["profile_timeline", str(tmp_path / "t.json")]
        )
        _load("profile_timeline").main()
        out = capsys.readouterr().out
        assert "Gantt" in out
        assert (tmp_path / "t.json").exists()

    def test_streaming_updates(self, capsys):
        _load("streaming_updates").main()
        out = capsys.readouterr().out
        assert "warm-start" in out
        assert "cold-start" in out

    def test_multi_gpu_scaling(self, capsys):
        _load("multi_gpu_scaling").main()
        out = capsys.readouterr().out
        assert "speedup x4" in out
        assert "model identical to 1-GPU run: True" in out
