"""Tests for the rejected partition-by-word policy (§4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CuLDA, TrainConfig
from repro.gpusim.platform import pascal_platform
from repro.sched.byword import (
    _word_range_chunk,
    partition_words_by_tokens,
    train_by_word,
)


class TestWordPartitioner:
    def test_covers_vocabulary(self, medium_corpus):
        ranges = partition_words_by_tokens(medium_corpus, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == medium_corpus.num_words
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
        assert all(lo < hi for lo, hi in ranges)

    def test_token_balance(self, medium_corpus):
        ranges = partition_words_by_tokens(medium_corpus, 3)
        freq = medium_corpus.word_frequencies()
        masses = [int(freq[lo:hi].sum()) for lo, hi in ranges]
        assert max(masses) < 1.6 * np.mean(masses)

    def test_validation(self, medium_corpus):
        with pytest.raises(ValueError):
            partition_words_by_tokens(medium_corpus, 0)


class TestWordRangeChunk:
    def test_chunks_partition_tokens(self, medium_corpus):
        ranges = partition_words_by_tokens(medium_corpus, 3)
        chunks = [
            _word_range_chunk(medium_corpus, lo, hi) for lo, hi in ranges
        ]
        assert sum(c.num_tokens for c in chunks) == medium_corpus.num_tokens
        # Every chunk spans all documents (the θ-replication cost).
        for c in chunks:
            assert c.num_docs == medium_corpus.num_docs

    def test_chunk_words_within_range(self, medium_corpus):
        lo, hi = partition_words_by_tokens(medium_corpus, 2)[1]
        chunk = _word_range_chunk(medium_corpus, lo, hi)
        words = chunk.token_word_expanded()
        present = words[np.isin(words, np.arange(lo, hi))]
        assert present.size == words.size


class TestTrainByWord:
    def test_converges(self, medium_corpus):
        m = pascal_platform(2)
        r = train_by_word(
            medium_corpus, m, TrainConfig(num_topics=8, iterations=8, seed=0)
        )
        assert r.phi.sum() == medium_corpus.num_tokens
        base = train_by_word(
            medium_corpus, pascal_platform(2),
            TrainConfig(num_topics=8, iterations=1, seed=0),
        )
        assert r.final_log_likelihood > base.final_log_likelihood

    def test_sync_volume_matches_policy_analysis(self, medium_corpus):
        """§4's inequality, measured end-to-end: the by-word policy's
        per-iteration sync bytes exceed the by-document policy's when
        D×K dwarfs K×V — and the analytic predictor agrees."""
        from repro.core.kernels import KernelConfig
        from repro.sched.partition import sync_volume_by_policy

        # Synthetic regime with D >> V (the paper's real-corpus regime).
        from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus

        corpus = generate_lda_corpus(
            SyntheticSpec(num_docs=800, num_words=120, avg_doc_length=20,
                          num_topics=4),
            seed=3,
        )
        cfg = TrainConfig(num_topics=16, iterations=2, seed=0,
                          compressed=False)
        m = pascal_platform(2)
        byword = train_by_word(corpus, m, cfg)

        culda_machine = pascal_platform(2)
        CuLDA(corpus, culda_machine, cfg).train()
        phi_sync_bytes = sum(
            iv.bytes_moved for iv in culda_machine.trace.intervals
            if iv.label in ("phi_reduce_copy", "phi_broadcast_copy")
        ) / cfg.iterations

        assert byword.sync_bytes_per_iteration > phi_sync_bytes
        vol = sync_volume_by_policy(
            corpus.num_docs, corpus.num_words, 16, KernelConfig(compressed=False)
        )
        assert vol["by_word"] > vol["by_document"]

    def test_slower_than_by_document_in_d_heavy_regime(self):
        """The paper's bottom line: at D >> V the chosen policy wins
        end-to-end."""
        from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus

        corpus = generate_lda_corpus(
            SyntheticSpec(num_docs=1500, num_words=100, avg_doc_length=25,
                          num_topics=4),
            seed=9,
        )
        cfg = TrainConfig(num_topics=16, iterations=3, seed=0)
        byword = train_by_word(corpus, pascal_platform(2), cfg)
        bydoc = CuLDA(corpus, pascal_platform(2), cfg).train()
        assert bydoc.total_sim_seconds < byword.total_sim_seconds
