"""Tests for the timeline recorder (Table 5 breakdowns, overlap checks)."""

from __future__ import annotations

import pytest

from repro.gpusim.trace import Interval, TraceRecorder


def _mk(rec, kind, start, end, dev=0, stream="0.s"):
    rec.add(device_id=dev, stream=stream, kind=kind, label=kind,
            start=start, end=end)


class TestRecorder:
    def test_totals_by_kind(self):
        r = TraceRecorder()
        _mk(r, "sampling", 0, 10)
        _mk(r, "sampling", 10, 15)
        _mk(r, "update_phi", 15, 16)
        totals = r.total_time_by_kind()
        assert totals["sampling"] == 15
        assert totals["update_phi"] == 1

    def test_breakdown_fractions(self):
        r = TraceRecorder()
        _mk(r, "a", 0, 9)
        _mk(r, "b", 9, 10)
        frac = r.breakdown_fractions()
        assert frac["a"] == pytest.approx(0.9)
        assert frac["b"] == pytest.approx(0.1)

    def test_breakdown_restricted_kinds(self):
        r = TraceRecorder()
        _mk(r, "a", 0, 5)
        _mk(r, "b", 5, 10)
        _mk(r, "c", 10, 30)
        frac = r.breakdown_fractions(("a", "b"))
        assert frac["a"] == pytest.approx(0.5)
        assert "c" not in frac

    def test_breakdown_empty(self):
        r = TraceRecorder()
        assert r.breakdown_fractions(("a",)) == {"a": 0.0}

    def test_rejects_inverted_interval(self):
        r = TraceRecorder()
        with pytest.raises(ValueError):
            _mk(r, "a", 5, 3)

    def test_disabled_recorder_drops(self):
        r = TraceRecorder(enabled=False)
        _mk(r, "a", 0, 1)
        assert len(r) == 0

    def test_makespan(self):
        r = TraceRecorder()
        assert r.makespan() == 0.0
        _mk(r, "a", 2, 7)
        _mk(r, "b", 1, 3)
        assert r.makespan() == 7


class TestBusyTime:
    def test_merges_overlapping_intervals(self):
        r = TraceRecorder()
        _mk(r, "a", 0, 10, dev=1)
        _mk(r, "b", 5, 15, dev=1)   # overlaps
        _mk(r, "c", 20, 25, dev=1)  # disjoint
        assert r.device_busy_time(1) == pytest.approx(20.0)

    def test_per_device_isolation(self):
        r = TraceRecorder()
        _mk(r, "a", 0, 10, dev=0)
        _mk(r, "a", 0, 4, dev=1)
        assert r.device_busy_time(0) == 10
        assert r.device_busy_time(1) == 4
        assert r.device_busy_time(7) == 0


class TestOverlap:
    def test_overlap_seconds(self):
        r = TraceRecorder()
        _mk(r, "h2d", 0, 10)
        _mk(r, "sampling", 5, 20)
        assert r.overlap_seconds("h2d", "sampling") == pytest.approx(5.0)

    def test_no_overlap(self):
        r = TraceRecorder()
        _mk(r, "h2d", 0, 5)
        _mk(r, "sampling", 5, 10)
        assert r.overlap_seconds("h2d", "sampling") == 0.0

    def test_multiple_intervals(self):
        r = TraceRecorder()
        _mk(r, "a", 0, 2)
        _mk(r, "a", 4, 6)
        _mk(r, "b", 1, 5)
        assert r.overlap_seconds("a", "b") == pytest.approx(2.0)


class TestGantt:
    def test_empty(self):
        assert "(empty" in TraceRecorder().gantt_text()

    def test_contains_streams_and_marks(self):
        r = TraceRecorder()
        _mk(r, "sampling", 0, 8, stream="0.compute")
        _mk(r, "h2d", 0, 4, stream="0.upload")
        text = r.gantt_text(width=16)
        assert "0.compute" in text and "0.upload" in text
        assert "S" in text and "H" in text


class TestInterval:
    def test_duration(self):
        iv = Interval(0, "s", "k", "l", 1.0, 3.5)
        assert iv.duration == 2.5
