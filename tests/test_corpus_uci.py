"""Tests for the UCI bag-of-words reader/writer."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.corpus.uci import read_uci_bow, read_uci_vocab, write_uci_bow


def _write(tmp_path, text, name="docword.test.txt"):
    p = tmp_path / name
    p.write_text(text)
    return p


class TestReader:
    def test_basic_parse(self, tmp_path):
        p = _write(tmp_path, "2\n3\n3\n1 1 2\n1 3 1\n2 2 4\n")
        c = read_uci_bow(p)
        assert c.num_docs == 2
        assert c.num_words == 3
        assert c.num_tokens == 7
        assert sorted(c.document(0).tolist()) == [0, 0, 2]
        assert c.document(1).tolist() == [1, 1, 1, 1]

    def test_gzip_support(self, tmp_path):
        p = tmp_path / "docword.test.txt.gz"
        with gzip.open(p, "wt") as fh:
            fh.write("1\n2\n1\n1 2 3\n")
        c = read_uci_bow(p)
        assert c.num_tokens == 3
        assert c.document(0).tolist() == [1, 1, 1]

    def test_nnz_mismatch_rejected(self, tmp_path):
        p = _write(tmp_path, "1\n2\n5\n1 1 1\n")
        with pytest.raises(ValueError, match="NNZ"):
            read_uci_bow(p)

    def test_bad_header_rejected(self, tmp_path):
        p = _write(tmp_path, "x\n2\n1\n1 1 1\n")
        with pytest.raises(ValueError, match="header"):
            read_uci_bow(p)

    def test_out_of_range_doc_rejected(self, tmp_path):
        p = _write(tmp_path, "1\n2\n1\n5 1 1\n")
        with pytest.raises(ValueError, match="document id"):
            read_uci_bow(p)

    def test_out_of_range_word_rejected(self, tmp_path):
        p = _write(tmp_path, "1\n2\n1\n1 9 1\n")
        with pytest.raises(ValueError, match="word id"):
            read_uci_bow(p)

    def test_vocab_loading(self, tmp_path):
        bow = _write(tmp_path, "1\n2\n2\n1 1 1\n1 2 1\n")
        vocab = tmp_path / "vocab.test.txt"
        vocab.write_text("alpha\nbeta\n")
        c = read_uci_bow(bow, vocab_path=vocab)
        assert c.vocabulary is not None
        assert c.vocabulary.word_of(0) == "alpha"

    def test_vocab_size_mismatch(self, tmp_path):
        bow = _write(tmp_path, "1\n3\n1\n1 1 1\n")
        vocab = tmp_path / "vocab.test.txt"
        vocab.write_text("only\n")
        with pytest.raises(ValueError, match="vocabulary"):
            read_uci_bow(bow, vocab_path=vocab)

    def test_read_vocab_is_frozen(self, tmp_path):
        vocab = tmp_path / "vocab.txt"
        vocab.write_text("a\nb\n")
        v = read_uci_vocab(vocab)
        assert v.frozen
        assert len(v) == 2


class TestRoundTrip:
    def test_write_then_read_preserves_corpus(self, small_corpus, tmp_path):
        p = tmp_path / "docword.rt.txt"
        write_uci_bow(small_corpus, p)
        back = read_uci_bow(p)
        assert back.num_docs == small_corpus.num_docs
        assert back.num_words == small_corpus.num_words
        assert back.num_tokens == small_corpus.num_tokens
        # Per-document word multisets must match (order may differ).
        for d in range(small_corpus.num_docs):
            assert sorted(back.document(d).tolist()) == sorted(
                small_corpus.document(d).tolist()
            )

    def test_round_trip_word_frequencies(self, tiny_corpus, tmp_path):
        p = tmp_path / "docword.tiny.txt"
        write_uci_bow(tiny_corpus, p)
        back = read_uci_bow(p)
        assert np.array_equal(
            back.word_frequencies(), tiny_corpus.word_frequencies()
        )
