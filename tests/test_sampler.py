"""Tests for the sparsity-aware S/Q sampler math (paper Eq 1, 6-8)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.core.model import LDAHyperParams, LDAState
from repro.core.sampler import (
    compute_pstar,
    decomposed_masses,
    dense_conditional,
    sample_token_dense,
    sample_token_sq,
)


@pytest.fixture
def toy_state():
    """A small frozen model with known counts."""
    rng = np.random.default_rng(0)
    K, V = 12, 30
    phi = rng.integers(0, 20, size=(K, V)).astype(np.int64)
    n_k = phi.sum(axis=1)
    theta_topics = np.array([1, 4, 7])
    theta_counts = np.array([3, 1, 5])
    return K, V, phi, n_k, theta_topics, theta_counts


class TestPstar:
    def test_matches_eq8(self, toy_state):
        K, V, phi, n_k, _, _ = toy_state
        beta = 0.01
        v = 3
        ps = compute_pstar(phi[:, v], n_k, beta, V)
        expected = (phi[:, v] + beta) / (n_k + beta * V)
        assert np.allclose(ps, expected)

    def test_positive(self, toy_state):
        K, V, phi, n_k, _, _ = toy_state
        ps = compute_pstar(phi[:, 0], n_k, 0.01, V)
        assert np.all(ps > 0)


class TestDecomposition:
    def test_sq_decomposition_equals_dense(self, toy_state):
        """Eq 6: p1(k) + p2(k) must equal the Eq 1 conditional."""
        K, V, phi, n_k, t_topics, t_counts = toy_state
        alpha, beta = 0.5, 0.01
        v = 7
        ps = compute_pstar(phi[:, v], n_k, beta, V)
        theta_dense = np.zeros(K)
        theta_dense[t_topics] = t_counts
        dense = dense_conditional(theta_dense, ps, alpha)
        # Reconstruct from the decomposition.
        p1 = np.zeros(K)
        p1[t_topics] = t_counts * ps[t_topics]
        p2 = alpha * ps
        assert np.allclose(p1 + p2, dense)

    def test_masses(self, toy_state):
        K, V, phi, n_k, t_topics, t_counts = toy_state
        alpha, beta = 0.5, 0.01
        ps = compute_pstar(phi[:, 2], n_k, beta, V)
        S, Q, vals = decomposed_masses(t_topics, t_counts, ps, alpha)
        assert S == pytest.approx((t_counts * ps[t_topics]).sum())
        assert Q == pytest.approx(alpha * ps.sum())
        assert vals.shape == t_topics.shape

    def test_empty_row_gives_zero_s(self, toy_state):
        K, V, phi, n_k, _, _ = toy_state
        ps = compute_pstar(phi[:, 0], n_k, 0.01, V)
        S, Q, vals = decomposed_masses(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), ps, 0.5
        )
        assert S == 0.0 and Q > 0.0


class TestScalarSamplers:
    def test_sq_and_dense_same_distribution(self, toy_state):
        """The sparse S/Q draw and the dense O(K) draw target the same
        multinomial: chi-square over many draws."""
        K, V, phi, n_k, t_topics, t_counts = toy_state
        alpha, beta = 0.5, 0.01
        v = 5
        ps = compute_pstar(phi[:, v], n_k, beta, V)
        theta_dense = np.zeros(K)
        theta_dense[t_topics] = t_counts
        p = dense_conditional(theta_dense, ps, alpha)
        p = p / p.sum()
        rng = np.random.default_rng(99)
        n = 30_000
        us = rng.random(n)
        draws = np.fromiter(
            (sample_token_sq(t_topics, t_counts, ps, alpha, u) for u in us),
            dtype=np.int64,
            count=n,
        )
        observed = np.bincount(draws, minlength=K)
        _, pvalue = chisquare(observed, p * n)
        assert pvalue > 1e-4

    def test_dense_draws_match_exact_inversion(self, toy_state):
        K, V, phi, n_k, t_topics, t_counts = toy_state
        alpha, beta = 0.5, 0.01
        ps = compute_pstar(phi[:, 1], n_k, beta, V)
        theta_dense = np.zeros(K)
        theta_dense[t_topics] = t_counts
        p = dense_conditional(theta_dense, ps, alpha)
        cdf = np.cumsum(p)
        for u in (0.0, 0.1, 0.5, 0.9, 0.999):
            k = sample_token_dense(theta_dense, ps, alpha, u)
            expected = int(np.searchsorted(cdf, u * cdf[-1], side="right"))
            assert k == min(expected, K - 1)

    def test_sq_rejects_bad_u(self, toy_state):
        K, V, phi, n_k, t_topics, t_counts = toy_state
        ps = compute_pstar(phi[:, 0], n_k, 0.01, V)
        with pytest.raises(ValueError):
            sample_token_sq(t_topics, t_counts, ps, 0.5, 1.5)

    def test_sq_with_empty_theta_row_uses_p2(self, toy_state):
        """A document with no counts (hypothetical) must fall through to
        the dense branch."""
        K, V, phi, n_k, _, _ = toy_state
        ps = compute_pstar(phi[:, 0], n_k, 0.01, V)
        k = sample_token_sq(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            ps, 0.5, 0.3,
        )
        assert 0 <= k < K

    def test_sq_matches_reference_conditional(self, small_corpus, hyper8):
        """Against the live-state conditional: with frozen counts, the
        S/Q draw of a specific token follows Eq 1 of the paper."""
        chunk = small_corpus.to_chunk()
        state = LDAState.initialize(chunk, hyper8, seed=2)
        v = int(chunk.token_word_expanded()[0])
        d = int(chunk.token_doc[0])
        ps = compute_pstar(
            state.phi[:, v].astype(np.float64), state.n_k, hyper8.beta,
            small_corpus.num_words,
        )
        t_topics, t_counts = state.theta.row(d)
        theta_dense = np.zeros(hyper8.num_topics)
        theta_dense[t_topics.astype(np.int64)] = t_counts
        p = dense_conditional(theta_dense, ps, hyper8.alpha)
        p /= p.sum()
        rng = np.random.default_rng(1)
        n = 20_000
        draws = np.fromiter(
            (
                sample_token_sq(
                    t_topics.astype(np.int64), t_counts, ps, hyper8.alpha, u
                )
                for u in rng.random(n)
            ),
            dtype=np.int64,
            count=n,
        )
        observed = np.bincount(draws, minlength=hyper8.num_topics)
        mask = p * n >= 5  # chi-square validity
        _, pvalue = chisquare(
            observed[mask], p[mask] / p[mask].sum() * observed[mask].sum()
        )
        assert pvalue > 1e-4
