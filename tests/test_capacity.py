"""Tests for the §5.1 memory-capacity planner and energy model."""

from __future__ import annotations

import pytest

from repro.corpus.datasets import NYTIMES, PUBMED
from repro.gpusim.platform import GPU_TITAN_X, GPU_TITAN_XP, GPU_V100
from repro.perfmodel.capacity import MemoryPlan, max_topics_resident, plan_memory


class TestPlanMemory:
    def test_nytimes_resident_on_every_gpu(self):
        """NYTimes (2 GB of chunk data) fits every Table 2 GPU at K=1024."""
        for spec in (GPU_TITAN_X, GPU_TITAN_XP, GPU_V100):
            plan = plan_memory(NYTIMES, spec, num_topics=1024)
            assert plan.resident, spec.name
            assert plan.chunks_per_gpu == 1
            assert 0 < plan.headroom_fraction < 1

    def test_pubmed_streams_on_single_gpu(self):
        """PubMed (~15 GB) cannot reside in a 12-16 GB GPU — the memory
        mechanism behind its Table 4 behaviour (EXPERIMENTS.md)."""
        for spec in (GPU_TITAN_X, GPU_TITAN_XP, GPU_V100):
            plan = plan_memory(PUBMED, spec, num_topics=1024)
            assert not plan.resident, spec.name
            assert plan.chunks_per_gpu >= 2
            assert plan.slots == 2

    def test_pubmed_resident_at_four_gpus(self):
        plan = plan_memory(PUBMED, GPU_TITAN_XP, num_topics=1024, num_gpus=4)
        assert plan.resident

    def test_model_too_big_raises(self):
        with pytest.raises(MemoryError, match="model"):
            plan_memory(PUBMED, GPU_TITAN_X, num_topics=30_000)

    def test_describe_readable(self):
        plan = plan_memory(NYTIMES, GPU_V100, num_topics=1024)
        text = plan.describe()
        assert "NYTimes" in text and "GiB" in text and "resident" in text

    def test_used_within_budget(self):
        for stats in (NYTIMES, PUBMED):
            plan = plan_memory(stats, GPU_V100, num_topics=1024)
            assert plan.used_bytes <= plan.budget_bytes


class TestMaxTopicsResident:
    def test_nytimes_frontier(self):
        k = max_topics_resident(NYTIMES, GPU_V100)
        assert k >= 1024          # the paper-scale run fits
        assert k & (k - 1) == 0   # power of two

    def test_pubmed_frontier_tiny_on_one_gpu(self):
        """PubMed only stays resident on a 12 GB GPU at toy K (θ capacity
        shrinks with K when K < doc length); any useful K streams."""
        k = max_topics_resident(PUBMED, GPU_TITAN_X)
        assert k < 64

    def test_more_gpus_raise_frontier(self):
        k1 = max_topics_resident(PUBMED, GPU_TITAN_XP, num_gpus=1)
        k4 = max_topics_resident(PUBMED, GPU_TITAN_XP, num_gpus=4)
        assert k4 > k1


class TestEnergyModel:
    def test_busy_device_burns_more(self):
        from repro.gpusim.costmodel import KernelCost
        from repro.gpusim.kernel import KernelLaunch
        from repro.gpusim.platform import pascal_platform

        idle = pascal_platform(1)
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e6), "k").launch(
            idle.gpus[0].default_stream
        )
        busy = pascal_platform(1)
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e9), "k").launch(
            busy.gpus[0].default_stream
        )
        assert busy.energy_joules() > idle.energy_joules() > 0

    def test_idle_gpu_draws_idle_power(self):
        from repro.gpusim.costmodel import KernelCost
        from repro.gpusim.kernel import KernelLaunch
        from repro.gpusim.platform import pascal_platform

        m = pascal_platform(2)
        # Only GPU 0 works; GPU 1 idles for the makespan.
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e9), "k").launch(
            m.gpus[0].default_stream
        )
        wall = m.trace.makespan()
        spec = m.gpus[1].spec
        expected_idle = spec.tdp_watts * spec.idle_power_fraction * wall
        # Total = host + gpu0 busy + gpu1 idle; removing gpu1's idle
        # share must reduce the estimate by exactly that amount.
        with_idle = m.energy_joules()
        single = pascal_platform(1)
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e9), "k").launch(
            single.gpus[0].default_stream
        )
        # Same host spec -> difference is gpu1's idle draw.
        assert with_idle - single.energy_joules() == pytest.approx(
            expected_idle, rel=1e-6
        )


class TestChromeTrace:
    def test_export_valid_json(self):
        import json

        from repro.gpusim.costmodel import KernelCost
        from repro.gpusim.kernel import KernelLaunch
        from repro.gpusim.platform import pascal_platform
        from repro.gpusim.trace import to_chrome_json

        m = pascal_platform(1)
        KernelLaunch(lambda: None, KernelCost(bytes_read=1e8), "sampling").launch(
            m.gpus[0].default_stream
        )
        doc = json.loads(to_chrome_json(m.trace))
        assert doc["traceEvents"]
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X"
        assert ev["name"] == "sampling"
        assert ev["dur"] > 0
