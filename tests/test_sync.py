"""Tests for φ synchronization: reduce tree + broadcast (paper §5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import KernelConfig
from repro.gpusim.memory import DeviceArray
from repro.gpusim.platform import pascal_platform
from repro.sched.sync import broadcast_phi, cpu_gather_sync, reduce_phi_tree


def _setup(machine, K=8, V=20, dtype=np.int32, seed=0):
    rng = np.random.default_rng(seed)
    G = len(machine.gpus)
    partial_data = [
        rng.integers(0, 50, size=(K, V)).astype(dtype) for _ in range(G)
    ]
    partials = [
        DeviceArray(machine.gpus[g], (K, V), dtype, fill=partial_data[g],
                    label=f"partial{g}")
        for g in range(G)
    ]
    scratch = [
        DeviceArray(machine.gpus[g], (K, V), dtype, label=f"scratch{g}")
        for g in range(G)
    ]
    fulls = [
        DeviceArray(machine.gpus[g], (K, V), dtype, label=f"full{g}")
        for g in range(G)
    ]
    streams = [machine.gpus[g].create_stream("sync") for g in range(G)]
    expected = np.sum(partial_data, axis=0)
    return partials, scratch, fulls, streams, expected


class TestReduceTree:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    def test_reduce_sums_all_replicas(self, num_gpus):
        m = pascal_platform(num_gpus)
        partials, scratch, fulls, streams, expected = _setup(m)
        root = reduce_phi_tree(m, partials, scratch, streams, KernelConfig())
        m.synchronize()
        assert np.array_equal(root.data, expected.astype(root.dtype))

    def test_log_steps_timing(self):
        """Fig 4: reductions within a step run in parallel, so 4 GPUs
        need ~2 serial transfer steps, not 3."""
        m4 = pascal_platform(4)
        p4, s4, f4, st4, _ = _setup(m4, K=64, V=50_000)
        reduce_phi_tree(m4, p4, s4, st4, KernelConfig())
        t4 = m4.synchronize()

        m2 = pascal_platform(2)
        p2, s2, f2, st2, _ = _setup(m2, K=64, V=50_000)
        reduce_phi_tree(m2, p2, s2, st2, KernelConfig())
        t2 = m2.synchronize()
        # 4 GPUs (2 steps) must cost well under 3x a single step — and
        # strictly under the serial-sum bound of 3 transfers.
        assert t4 < 2.6 * t2

    def test_mismatched_lengths_rejected(self):
        m = pascal_platform(2)
        partials, scratch, fulls, streams, _ = _setup(m)
        with pytest.raises(ValueError):
            reduce_phi_tree(m, partials, scratch[:1], streams, KernelConfig())


class TestBroadcast:
    @pytest.mark.parametrize("num_gpus", [1, 2, 4])
    def test_all_gpus_receive_result(self, num_gpus):
        m = pascal_platform(num_gpus)
        partials, scratch, fulls, streams, expected = _setup(m)
        root = reduce_phi_tree(m, partials, scratch, streams, KernelConfig())
        broadcast_phi(m, root, fulls, streams, KernelConfig())
        m.synchronize()
        for f in fulls:
            assert np.array_equal(f.data, expected.astype(f.dtype))

    def test_destination_zero_must_share_device(self):
        m = pascal_platform(2)
        partials, scratch, fulls, streams, _ = _setup(m)
        with pytest.raises(ValueError, match="source device"):
            broadcast_phi(m, partials[0], fulls[::-1], streams, KernelConfig())


class TestCpuGather:
    @pytest.mark.parametrize("num_gpus", [1, 2, 4])
    def test_same_result_as_tree(self, num_gpus):
        m = pascal_platform(num_gpus)
        partials, scratch, fulls, streams, expected = _setup(m)
        cpu_gather_sync(m, partials, fulls, streams, KernelConfig())
        m.synchronize()
        for f in fulls:
            assert np.array_equal(f.data, expected.astype(f.dtype))

    def test_tree_faster_than_cpu_gather(self):
        """The paper's §5.2 claim, measured: GPU tree beats routing the
        adds through the host."""
        cfg = KernelConfig()
        m1 = pascal_platform(4)
        p, s, f, st, _ = _setup(m1, K=256, V=100_000)
        root = reduce_phi_tree(m1, p, s, st, cfg)
        broadcast_phi(m1, root, f, st, cfg)
        t_tree = m1.synchronize()

        m2 = pascal_platform(4)
        p, s, f, st, _ = _setup(m2, K=256, V=100_000)
        cpu_gather_sync(m2, p, f, st, cfg)
        t_cpu = m2.synchronize()
        assert t_tree < t_cpu


class TestRingAllReduce:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    def test_all_gpus_hold_full_sum(self, num_gpus):
        from repro.sched.sync import ring_allreduce_phi

        m = pascal_platform(num_gpus)
        partials, scratch, fulls, streams, expected = _setup(m)
        ring_allreduce_phi(m, partials, fulls, streams, KernelConfig())
        m.synchronize()
        for f in fulls:
            assert np.array_equal(f.data, expected.astype(f.dtype))
        for p in partials:
            assert np.array_equal(p.data, expected.astype(p.dtype))

    def test_frees_staging_buffers(self):
        from repro.sched.sync import ring_allreduce_phi

        m = pascal_platform(4)
        partials, scratch, fulls, streams, _ = _setup(m)
        before = [g.allocator.bytes_in_use for g in m.gpus]
        ring_allreduce_phi(m, partials, fulls, streams, KernelConfig())
        m.synchronize()
        after = [g.allocator.bytes_in_use for g in m.gpus]
        assert before == after

    def test_mismatched_lengths_rejected(self):
        from repro.sched.sync import ring_allreduce_phi

        m = pascal_platform(2)
        partials, scratch, fulls, streams, _ = _setup(m)
        with pytest.raises(ValueError):
            ring_allreduce_phi(m, partials, fulls[:1], streams, KernelConfig())

    def test_trainer_ring_same_model_as_tree(self):
        from repro.core import CuLDA, TrainConfig
        from repro.corpus.synthetic import pubmed_like

        corpus = pubmed_like(num_tokens=15_000, num_topics=8, seed=3)
        base = dict(num_topics=16, iterations=3, seed=0)
        tree = CuLDA(corpus, pascal_platform(4),
                     TrainConfig(**base, sync_algorithm="gpu_tree")).train()
        ring = CuLDA(corpus, pascal_platform(4),
                     TrainConfig(**base, sync_algorithm="ring")).train()
        assert np.array_equal(tree.phi, ring.phi)


class TestSyncAlgorithmEquivalence:
    """Every sync algorithm is an implementation detail: at the trainer
    level the model must be bit-identical to the reduce-tree baseline
    for every GPU count (the chunk layout, not the sync path, decides
    the sampled z)."""

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.corpus.synthetic import pubmed_like

        return pubmed_like(num_tokens=12_000, num_topics=8, seed=3)

    def _phi(self, corpus, gpus, sync):
        from repro.core import CuLDA, TrainConfig

        return CuLDA(
            corpus, pascal_platform(gpus),
            TrainConfig(num_topics=16, iterations=3, seed=0,
                        sync_algorithm=sync),
        ).train().phi

    @pytest.mark.parametrize("num_gpus", [2, 3, 4])
    @pytest.mark.parametrize("sync", ["ring", "cpu_gather"])
    def test_bit_identical_to_tree(self, corpus, sync, num_gpus):
        tree = self._phi(corpus, num_gpus, "gpu_tree")
        other = self._phi(corpus, num_gpus, sync)
        assert np.array_equal(tree, other)

    def test_ring_moves_less_data_per_link_at_scale(self):
        """At G=4 with a large φ, the ring's per-link volume
        (2·3/4 replicas) undercuts the tree's (log2(4)+log2(4) = 4 × a
        full replica through the busiest link is worse)."""
        from repro.sched.sync import ring_allreduce_phi

        cfg = KernelConfig()
        m1 = pascal_platform(4)
        p, s, f, st = _setup(m1, K=256, V=100_000)[:4]
        m1.reset_clock()
        root = reduce_phi_tree(m1, p, s, st, cfg)
        broadcast_phi(m1, root, f, st, cfg)
        t_tree = m1.synchronize()

        m2 = pascal_platform(4)
        p, s, f, st = _setup(m2, K=256, V=100_000)[:4]
        m2.reset_clock()
        ring_allreduce_phi(m2, p, f, st, cfg)
        t_ring = m2.synchronize()
        # The ring should be at least competitive at G=4.
        assert t_ring < 1.5 * t_tree
