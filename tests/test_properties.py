"""Property-based tests (hypothesis) on core data structures and
invariants: corpus/chunk round trips, partitioning, θ recounts, the
sampling kernel's count conservation, and cost-model monotonicity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KernelConfig,
    SamplingStats,
    accumulate_phi,
    gibbs_sample_chunk,
    recount_theta,
    sampling_cost,
)
from repro.core.model import LDAHyperParams, SparseTheta
from repro.corpus.corpus import Corpus, TokenChunk
from repro.sched.partition import partition_by_tokens


@st.composite
def corpora(draw, max_docs=12, max_words=15, max_len=20):
    """Random small corpora (possibly with empty documents)."""
    V = draw(st.integers(min_value=2, max_value=max_words))
    docs = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=V - 1),
                min_size=0,
                max_size=max_len,
            ),
            min_size=1,
            max_size=max_docs,
        )
    )
    return Corpus.from_documents(docs, num_words=V)


@st.composite
def nonempty_corpora(draw):
    c = draw(corpora())
    if c.num_tokens == 0:
        c = Corpus.from_documents([[0, 1]], num_words=2)
    return c


class TestCorpusProperties:
    @given(corpus=corpora())
    @settings(max_examples=100, deadline=None)
    def test_chunk_preserves_token_multiset(self, corpus):
        chunk = corpus.to_chunk()
        assert chunk.num_tokens == corpus.num_tokens
        # Word multiset preserved.
        assert np.array_equal(
            np.sort(chunk.token_word_expanded()), np.sort(corpus.token_word)
        )
        # Per-document token counts preserved.
        assert np.array_equal(chunk.doc_lengths, corpus.doc_lengths)

    @given(corpus=corpora())
    @settings(max_examples=100, deadline=None)
    def test_chunk_doc_map_is_permutation(self, corpus):
        chunk = corpus.to_chunk()
        assert np.array_equal(
            np.sort(chunk.doc_map_indices), np.arange(chunk.num_tokens)
        )

    @given(corpus=corpora())
    @settings(max_examples=100, deadline=None)
    def test_chunk_word_first_order(self, corpus):
        chunk = corpus.to_chunk()
        words = chunk.token_word_expanded()
        assert np.all(np.diff(words) >= 0)

    @given(corpus=corpora(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_doc_range_chunks_compose(self, corpus, data):
        """Splitting at any document produces chunks whose token counts
        add up and whose doc maps stay valid."""
        cut = data.draw(st.integers(min_value=0, max_value=corpus.num_docs))
        left = TokenChunk.from_corpus_range(corpus, 0, cut)
        right = TokenChunk.from_corpus_range(corpus, cut, corpus.num_docs)
        assert left.num_tokens + right.num_tokens == corpus.num_tokens
        assert left.num_docs + right.num_docs == corpus.num_docs


class TestPartitionProperties:
    @given(corpus=nonempty_corpora(), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_partition_disjoint_cover(self, corpus, data):
        c = data.draw(st.integers(min_value=1, max_value=corpus.num_docs))
        ranges = partition_by_tokens(corpus, c)
        assert len(ranges) == c
        assert ranges[0][0] == 0 and ranges[-1][1] == corpus.num_docs
        for (a, b), (x, y) in zip(ranges, ranges[1:]):
            assert b == x
        assert all(lo < hi for lo, hi in ranges)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_partition_balance_bound(self, data):
        """With equal-length documents the split is near-perfect."""
        D = data.draw(st.integers(min_value=4, max_value=60))
        L = data.draw(st.integers(min_value=1, max_value=9))
        c = data.draw(st.integers(min_value=1, max_value=D))
        corpus = Corpus.from_documents([[0] * L] * D, num_words=2)
        ranges = partition_by_tokens(corpus, c)
        sizes = [(hi - lo) * L for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 2 * L


class TestModelProperties:
    @given(corpus=nonempty_corpora(), seed=st.integers(0, 2**31), k=st.integers(2, 12))
    @settings(max_examples=80, deadline=None)
    def test_recount_conserves_tokens(self, corpus, seed, k):
        chunk = corpus.to_chunk()
        rng = np.random.default_rng(seed)
        topics = rng.integers(0, k, chunk.num_tokens).astype(np.int32)
        theta = recount_theta(chunk, topics, k, compressed=False)
        phi = accumulate_phi(chunk, topics, k)
        assert theta.data.sum() == chunk.num_tokens
        assert phi.sum() == chunk.num_tokens
        # Topic marginals agree between θ and φ.
        theta_marginal = np.zeros(k, dtype=np.int64)
        np.add.at(theta_marginal, theta.indices.astype(np.int64), theta.data)
        assert np.array_equal(theta_marginal, phi.sum(axis=1))

    @given(corpus=nonempty_corpora(), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_sampling_conserves_and_stays_in_range(self, corpus, seed):
        """One kernel invocation on arbitrary data: output topics valid,
        count conservation after the update kernels."""
        k = 6
        hyper = LDAHyperParams(num_topics=k)
        chunk = corpus.to_chunk()
        rng = np.random.default_rng(seed)
        topics = rng.integers(0, k, chunk.num_tokens).astype(np.int32)
        theta = recount_theta(chunk, topics, k, compressed=False)
        phi = accumulate_phi(chunk, topics, k)
        n_k = phi.sum(axis=1, dtype=np.int64)
        new_topics, stats = gibbs_sample_chunk(
            chunk, topics, theta, phi, n_k, hyper, rng,
            KernelConfig(compressed=False),
        )
        assert new_topics.shape == topics.shape
        if chunk.num_tokens:
            assert new_topics.min() >= 0 and new_topics.max() < k
        new_phi = accumulate_phi(chunk, new_topics, k)
        assert new_phi.sum() == chunk.num_tokens
        assert stats.p1_draws <= stats.num_tokens


class TestCostProperties:
    @given(
        t=st.integers(1, 10**7),
        kd=st.floats(1.0, 500.0),
        k=st.integers(2, 4096),
        v=st.integers(10, 200_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_sampling_cost_positive_and_scales(self, t, kd, k, v):
        hyper = LDAHyperParams(num_topics=k)
        stats = SamplingStats(
            num_tokens=t, kd_sum=int(t * min(kd, k)), p1_draws=0,
            num_word_segments=max(1, v // 10), num_blocks=max(1, t // 512),
        )
        cost = sampling_cost(stats, hyper, v, KernelConfig(compressed=False))
        assert cost.total_bytes > 0
        assert cost.flops > 0
        # Memory-bound everywhere (the paper's Table 1 conclusion).
        assert cost.flops_per_byte < 2.0

    @given(
        t=st.integers(1000, 10**6),
        scale=st.integers(2, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_cost_superadditive_in_tokens(self, t, scale):
        """More tokens never cost less (fixed everything else)."""
        hyper = LDAHyperParams(num_topics=64)

        def mk(tokens):
            return sampling_cost(
                SamplingStats(tokens, tokens * 30, 0, 50, 50),
                hyper, 1000, KernelConfig(),
            )

        small = mk(t)
        big = mk(t * scale)
        assert big.total_bytes > small.total_bytes


class TestSparseThetaProperties:
    @given(corpus=nonempty_corpora(), seed=st.integers(0, 2**31), k=st.integers(2, 10))
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, corpus, seed, k):
        chunk = corpus.to_chunk()
        rng = np.random.default_rng(seed)
        topics = rng.integers(0, k, chunk.num_tokens).astype(np.int32)
        theta = SparseTheta.from_assignments(chunk, topics, k, compressed=False)
        dense = theta.to_dense()
        # Rebuild CSR from dense and compare.
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(chunk.num_docs + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        rebuilt = SparseTheta(
            indptr, cols.astype(np.int32),
            dense[rows, cols].astype(np.int32), k,
        )
        assert rebuilt == theta


class TestSyncEquivalence:
    @given(
        num_gpus=st.integers(1, 4),
        k=st.integers(2, 12),
        v=st.integers(2, 30),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_sync_algorithms_agree(self, num_gpus, k, v, seed):
        """Tree, ring, and CPU-gather must produce identical full φ on
        every GPU for arbitrary replicas."""
        from repro.core.kernels import KernelConfig
        from repro.gpusim.memory import DeviceArray
        from repro.gpusim.platform import pascal_platform
        from repro.sched.sync import (
            broadcast_phi,
            cpu_gather_sync,
            reduce_phi_tree,
            ring_allreduce_phi,
        )

        rng = np.random.default_rng(seed)
        data = [
            rng.integers(0, 100, size=(k, v)).astype(np.int32)
            for _ in range(num_gpus)
        ]
        expected = np.sum(data, axis=0)
        cfg = KernelConfig(compressed=False)

        def setup():
            m = pascal_platform(num_gpus)
            partials = [
                DeviceArray(m.gpus[g], (k, v), np.int32, fill=data[g])
                for g in range(num_gpus)
            ]
            scratch = [
                DeviceArray(m.gpus[g], (k, v), np.int32)
                for g in range(num_gpus)
            ]
            fulls = [
                DeviceArray(m.gpus[g], (k, v), np.int32)
                for g in range(num_gpus)
            ]
            streams = [m.gpus[g].create_stream("s") for g in range(num_gpus)]
            return m, partials, scratch, fulls, streams

        m, p, s, f, st_ = setup()
        root = reduce_phi_tree(m, p, s, st_, cfg)
        broadcast_phi(m, root, f, st_, cfg)
        tree_out = [x.data.copy() for x in f]

        m, p, s, f, st_ = setup()
        ring_allreduce_phi(m, p, f, st_, cfg)
        ring_out = [x.data.copy() for x in f]

        m, p, s, f, st_ = setup()
        cpu_gather_sync(m, p, f, st_, cfg)
        cpu_out = [x.data.copy() for x in f]

        for g in range(num_gpus):
            assert np.array_equal(tree_out[g], expected)
            assert np.array_equal(ring_out[g], expected)
            assert np.array_equal(cpu_out[g], expected)


class TestBuilderProperties:
    @given(
        docs=st.lists(
            st.lists(st.integers(0, 20), min_size=0, max_size=15),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_builder_round_trip(self, docs):
        from repro.corpus.builder import CorpusBuilder

        b = CorpusBuilder()
        for d in docs:
            b.add_document_ids(d)
        corpus = b.build(num_words=21)
        assert corpus.num_docs == len(docs)
        for i, d in enumerate(docs):
            assert corpus.document(i).tolist() == d
