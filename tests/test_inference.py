"""Tests for fold-in inference and held-out evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CuLDA, TrainConfig
from repro.core.inference import (
    held_out_log_likelihood,
    infer_documents,
)
from repro.core.model import LDAHyperParams
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import SyntheticSpec, generate_lda_corpus
from repro.gpusim.platform import pascal_platform


@pytest.fixture(scope="module")
def trained():
    """A trained model plus a held-out slice of the same distribution."""
    spec = SyntheticSpec(num_docs=150, num_words=250, avg_doc_length=60,
                         num_topics=5, name="ho")
    full = generate_lda_corpus(spec, seed=31)
    train = full.slice_docs(0, 120, name="train")
    held = full.slice_docs(120, 150, name="held")
    result = CuLDA(
        train, pascal_platform(1),
        TrainConfig(num_topics=10, iterations=30, seed=0),
    ).train()
    return result, train, held


class TestInferDocuments:
    def test_shapes_and_normalization(self, trained):
        result, _, held = trained
        inf = infer_documents(held, result.phi, result.hyper, iterations=10,
                              seed=1)
        assert inf.doc_topic.shape == (held.num_docs, 10)
        assert np.allclose(inf.doc_topic.sum(axis=1), 1.0)
        assert np.all(inf.doc_topic > 0)
        assert inf.theta.data.sum() == held.num_tokens

    def test_deterministic(self, trained):
        result, _, held = trained
        a = infer_documents(held, result.phi, result.hyper, iterations=6, seed=4)
        b = infer_documents(held, result.phi, result.hyper, iterations=6, seed=4)
        assert np.array_equal(a.doc_topic, b.doc_topic)

    def test_more_sweeps_beat_one(self, trained):
        """Held-out likelihood after proper fold-in exceeds a 1-sweep,
        no-burn-in estimate."""
        result, _, held = trained
        rough = infer_documents(held, result.phi, result.hyper,
                                iterations=1, burn_in=0, seed=2)
        good = infer_documents(held, result.phi, result.hyper,
                               iterations=20, seed=2)
        assert good.log_likelihood_per_token >= rough.log_likelihood_per_token - 0.05

    def test_trained_model_beats_random_phi(self, trained):
        """The trained φ must predict held-out data better than a random
        φ with the same totals — inference end-to-end sanity."""
        result, _, held = trained
        good = infer_documents(held, result.phi, result.hyper,
                               iterations=15, seed=3)
        rng = np.random.default_rng(0)
        fake_phi = rng.permutation(result.phi.ravel()).reshape(result.phi.shape)
        bad = infer_documents(held, fake_phi, result.hyper,
                              iterations=15, seed=3)
        assert good.log_likelihood_per_token > bad.log_likelihood_per_token

    def test_validation(self, trained):
        result, _, held = trained
        with pytest.raises(ValueError):
            infer_documents(held, result.phi, result.hyper, iterations=0)
        with pytest.raises(ValueError):
            infer_documents(held, result.phi, result.hyper, iterations=5,
                            burn_in=5)
        with pytest.raises(ValueError, match="topics"):
            infer_documents(held, result.phi, LDAHyperParams(num_topics=3))

    def test_vocabulary_too_large_rejected(self, trained):
        result, *_ = trained
        big = Corpus.from_documents([[result.phi.shape[1] + 3]],
                                    num_words=result.phi.shape[1] + 4)
        with pytest.raises(ValueError, match="vocabulary"):
            infer_documents(big, result.phi, result.hyper)

    def test_out_of_range_word_ids_rejected(self, trained):
        """A corpus whose *declared* vocabulary fits φ but whose actual
        ids spill past φ's columns gets a clear ValueError, not an
        IndexError from inside the sampling kernel."""
        result, *_ = trained
        V = result.phi.shape[1]
        wide = Corpus(
            np.array([0, V + 2], dtype=np.int32),
            np.array([0, 2], dtype=np.int64),
            V + 8,
        )
        with pytest.raises(ValueError, match="vocabulary|word id"):
            infer_documents(wide, result.phi, result.hyper)

    def test_one_dimensional_phi_rejected(self, trained):
        result, _, held = trained
        with pytest.raises(ValueError, match="2-D"):
            infer_documents(held, result.phi.ravel(), result.hyper)

    def test_narrower_corpus_accepted(self, trained):
        """A held-out corpus that only uses a prefix of the vocabulary
        still works (φ is wider)."""
        result, *_ = trained
        small = Corpus.from_documents([[0, 1, 2], [1, 1]], num_words=3)
        inf = infer_documents(small, result.phi, result.hyper, iterations=4)
        assert inf.doc_topic.shape[0] == 2


class TestHeldOutLikelihood:
    def test_rejects_empty(self, trained):
        result, *_ = trained
        empty = Corpus.from_documents([[]], num_words=2)
        with pytest.raises(ValueError):
            held_out_log_likelihood(
                empty, np.ones((1, 10)) / 10, result.phi,
                result.phi.sum(axis=1), result.hyper,
            )

    def test_out_of_range_word_ids_rejected(self, trained):
        """Regression: this used to raise a bare IndexError from the
        einsum gather (or return silently wrong wrapped-index scores)."""
        result, *_ = trained
        V = result.phi.shape[1]
        wide = Corpus(
            np.array([0, V + 2], dtype=np.int32),
            np.array([0, 2], dtype=np.int64),
            V + 8,
        )
        uniform = np.full((1, 10), 0.1)
        with pytest.raises(ValueError, match="word id"):
            held_out_log_likelihood(
                wide, uniform, result.phi, result.phi.sum(axis=1),
                result.hyper,
            )

    def test_one_dimensional_phi_rejected(self, trained):
        result, *_ = trained
        doc = Corpus.from_documents([[0, 1]], num_words=2)
        with pytest.raises(ValueError, match="2-D"):
            held_out_log_likelihood(
                doc, np.full((1, 10), 0.1), result.phi.ravel(),
                result.phi.sum(axis=1), result.hyper,
            )

    def test_peaked_mixture_beats_uniform_on_matching_doc(self, trained):
        result, train, _ = trained
        hyper = result.hyper
        phi = result.phi.astype(np.int64)
        n_k = phi.sum(axis=1)
        # A document of topic-0's favourite words.
        top = np.argsort(phi[0])[::-1][:20]
        doc = Corpus.from_bow(
            np.zeros(20, dtype=np.int64), top.astype(np.int32),
            np.ones(20, dtype=np.int64), num_docs=1,
            num_words=phi.shape[1],
        )
        peaked = np.full((1, hyper.num_topics), 1e-6)
        peaked[0, 0] = 1.0
        peaked /= peaked.sum()
        uniform = np.full((1, hyper.num_topics), 1.0 / hyper.num_topics)
        ll_peak = held_out_log_likelihood(doc, peaked, phi, n_k, hyper)
        ll_unif = held_out_log_likelihood(doc, uniform, phi, n_k, hyper)
        assert ll_peak > ll_unif
