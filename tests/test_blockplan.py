"""Tests for the §6.1.2 thread-block assignment and its long-tail rule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blockplan import BlockPlan, plan_blocks, simulate_block_schedule
from repro.core.kernels import BLOCK_TOKEN_CAPACITY, sampling_launch_plan


def _indptr(counts):
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


class TestPlanBlocks:
    def test_covers_all_tokens(self):
        plan = plan_blocks(_indptr([5, 0, 1200, 3]), capacity=512)
        assert plan.total_tokens == 1208
        assert plan.num_blocks == 5  # 1 + 3 (1200 = 512+512+176) + 1

    def test_heavy_words_get_lowest_ids(self):
        plan = plan_blocks(_indptr([5, 0, 1200, 3]), capacity=512)
        assert plan.block_word[0] == 2  # the 1200-token word leads
        # Its segments occupy the first block ids.
        assert set(plan.block_word[:3]) == {2}

    def test_word_order_variant(self):
        plan = plan_blocks(_indptr([5, 0, 1200, 3]), capacity=512,
                           heavy_first=False)
        assert plan.block_word[0] == 0

    def test_no_block_exceeds_capacity(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 3000, size=50)
        plan = plan_blocks(_indptr(counts), capacity=512)
        assert plan.block_tokens.max() <= 512
        assert plan.total_tokens == counts.sum()

    def test_empty_chunk(self):
        plan = plan_blocks(_indptr([0, 0]))
        assert plan.num_blocks == 0
        assert plan.load_imbalance() == 1.0

    def test_matches_launch_plan_count(self):
        counts = [5, 0, 1200, 3, 517]
        ip = _indptr(counts)
        plan = plan_blocks(ip, capacity=BLOCK_TOKEN_CAPACITY)
        blocks, _ = sampling_launch_plan(ip)
        assert plan.num_blocks == blocks

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_blocks(_indptr([3]), capacity=0)
        with pytest.raises(ValueError):
            BlockPlan(np.array([0]), np.array([0]))


class TestScheduleSimulation:
    def test_single_sm_makespan_is_total(self):
        plan = plan_blocks(_indptr([10, 20, 30]), capacity=512)
        assert simulate_block_schedule(plan, num_sms=1) == pytest.approx(60.0)

    def test_perfect_split(self):
        plan = plan_blocks(_indptr([100, 100]), capacity=512)
        assert simulate_block_schedule(plan, num_sms=2) == pytest.approx(100.0)

    def test_long_tail_avoidance_wins(self):
        """The paper's rule, measured: one giant word among many small
        ones — heavy-first scheduling shortens the makespan versus
        word-order (where the giant starts last and becomes the tail)."""
        counts = [40] * 100 + [512 * 6]  # giant word id 100, listed last
        ip = _indptr(counts)
        heavy = plan_blocks(ip, capacity=512, heavy_first=True)
        naive = plan_blocks(ip, capacity=512, heavy_first=False)
        t_heavy = simulate_block_schedule(heavy, num_sms=8)
        t_naive = simulate_block_schedule(naive, num_sms=8)
        assert t_heavy < t_naive

    def test_heavy_first_never_worse_on_random_loads(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            counts = rng.integers(1, 2000, size=64)
            ip = _indptr(counts)
            t_heavy = simulate_block_schedule(
                plan_blocks(ip, heavy_first=True), num_sms=12
            )
            t_naive = simulate_block_schedule(
                plan_blocks(ip, heavy_first=False), num_sms=12
            )
            assert t_heavy <= t_naive * 1.001

    def test_validation(self):
        plan = plan_blocks(_indptr([5]))
        with pytest.raises(ValueError):
            simulate_block_schedule(plan, num_sms=0)


class TestPlanProperties:
    @given(
        counts=st.lists(st.integers(0, 5000), min_size=1, max_size=40),
        capacity=st.sampled_from([32, 512, 1024]),
        heavy=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_invariants(self, counts, capacity, heavy):
        ip = _indptr(counts)
        plan = plan_blocks(ip, capacity=capacity, heavy_first=heavy)
        assert plan.total_tokens == sum(counts)
        if plan.num_blocks:
            assert plan.block_tokens.max() <= capacity
        # Per-word token totals preserved.
        for w, c in enumerate(counts):
            owned = plan.block_tokens[plan.block_word == w].sum()
            assert owned == c
