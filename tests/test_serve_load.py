"""Load tests for the online serving subsystem.

Seeded open-loop traces below and above the simulated machine's
capacity, checking the service's conservation invariants, latency
sanity, bounded-queue backpressure, deadline handling, and fault
behavior. Everything runs on the simulated clock, so these are fast
and exactly reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import load_model
from repro.faults import FaultPlan
from repro.gpusim.platform import make_machine
from repro.serve import (
    InferenceRequest,
    InferenceService,
    ServiceConfig,
    poisson_trace,
)


@pytest.fixture(scope="module")
def model_info(serve_checkpoints):
    ckpt = load_model(serve_checkpoints[0])
    return serve_checkpoints[0], int(ckpt.phi.shape[1])


def run(trace, config, gpus=2, platform="pascal", fault_plan=None):
    service = InferenceService(
        make_machine(platform, gpus), config, fault_plan=fault_plan
    )
    return service.run_trace(trace)


def assert_conservation(report):
    assert report.submitted == (
        report.count("completed")
        + report.count("rejected")
        + report.count("deadline_exceeded")
        + report.count("failed")
    )
    assert report.admitted == report.submitted - report.count("rejected")


class TestSubCapacity:
    """A trace the machine can absorb: everything completes, fast."""

    RATE, DURATION = 1500.0, 0.03

    @pytest.fixture(scope="class")
    def report(self, model_info):
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=self.RATE,
                              duration=self.DURATION, seed=11)
        return run(trace, ServiceConfig(max_batch_size=4,
                                        max_wait_seconds=1e-3,
                                        max_queue=256, iterations=3))

    def test_all_complete(self, report):
        assert_conservation(report)
        assert report.count("completed") == report.submitted
        assert report.count("rejected") == 0

    def test_p99_under_slo(self, report):
        # Generous SLO: batching wait bound + a few batch service times.
        assert report.latency_quantile(0.99) < 5e-3
        assert report.latency_quantile(0.5) <= report.latency_quantile(0.99)

    def test_simulated_clock_monotone(self, report):
        """arrival ≤ dispatch ≤ completion for every served request."""
        for r in report.results:
            assert r.dispatch_time >= r.request.arrival_time
            assert r.completion_time >= r.dispatch_time
            assert r.latency > 0
            assert r.queue_wait >= 0

    def test_results_in_trace_order(self, report):
        ids = [r.request.request_id for r in report.results]
        assert ids == sorted(ids)

    def test_every_request_has_payload(self, report):
        for r in report.results:
            assert r.doc_topic is not None
            assert r.doc_topic.shape == (len(r.request.docs), 8)
            assert np.allclose(r.doc_topic.sum(axis=1), 1.0)


class TestOverload:
    """Arrivals far beyond capacity: shed load, never grow the queue."""

    @pytest.fixture(scope="class")
    def setup(self, model_info):
        path, num_words = model_info
        config = ServiceConfig(max_batch_size=2, max_wait_seconds=5e-4,
                               max_queue=4, iterations=50)
        trace = poisson_trace([path], num_words, rate=50_000,
                              duration=0.004, seed=7, mean_doc_len=120)
        return run(trace, config, gpus=1), config

    def test_conservation_under_overload(self, setup):
        report, _ = setup
        assert_conservation(report)

    def test_rejections_nonzero(self, setup):
        report, _ = setup
        assert report.count("rejected") > 0
        assert 0 < report.rejection_rate < 1

    def test_queue_stays_bounded(self, setup):
        report, config = setup
        high_water = report.registry.gauge(
            "serve_queue_depth_high_water"
        ).value()
        assert 0 < high_water <= config.max_queue

    def test_admitted_requests_still_complete(self, setup):
        report, _ = setup
        assert report.count("completed") > 0
        assert report.count("failed") == 0

    def test_rejection_metric_matches_results(self, setup):
        report, _ = setup
        counted = report.registry.get(
            "serve_rejections_total"
        ).value(reason="queue_full")
        assert counted == report.count("rejected")


class TestDeadlines:
    def test_tight_deadline_sheds_requests(self, model_info):
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=20_000,
                              duration=0.005, seed=3, mean_doc_len=80)
        report = run(trace, ServiceConfig(max_batch_size=4,
                                          max_wait_seconds=1e-3,
                                          max_queue=512, iterations=40,
                                          deadline_seconds=1e-3), gpus=1)
        assert_conservation(report)
        assert report.count("deadline_exceeded") > 0
        # Every completed request met its deadline.
        for r in report.results:
            if r.status == "completed":
                assert r.latency <= 1e-3

    def test_per_request_deadline_overrides_default(self, model_info):
        path, num_words = model_info
        relaxed = InferenceRequest(0, ((0, 1, 2),), 0.0, path, seed=1,
                                   deadline_seconds=10.0)
        report = run([relaxed], ServiceConfig(deadline_seconds=1e-12))
        assert report.results[0].status == "completed"


class TestFailures:
    def test_unloadable_model_fails_request_not_service(self, model_info):
        path, num_words = model_info
        good = InferenceRequest(0, ((0, 1),), 0.0, path, seed=1)
        bad = InferenceRequest(1, ((0, 1),), 0.0, "/nonexistent/model.npz",
                               seed=1)
        report = run([good, bad], ServiceConfig(max_batch_size=1))
        assert report.results[0].status == "completed"
        assert report.results[1].status == "failed"
        assert "could not be loaded" in report.results[1].error

    def test_kernel_fault_fails_over(self, model_info):
        path, num_words = model_info
        plan = FaultPlan.from_dict({"faults": [
            {"kind": "kernel_fault", "iteration": 0, "device": 0,
             "op": "serve"},
        ]})
        trace = poisson_trace([path], num_words, rate=2000, duration=0.01,
                              seed=9)
        report = run(trace, ServiceConfig(max_batch_size=4, iterations=3),
                     gpus=2, fault_plan=plan)
        assert_conservation(report)
        assert report.count("completed") == report.submitted
        assert report.failovers > 0
        assert report.fault_events

    def test_dead_replica_is_avoided(self, model_info):
        """device_failure before dispatch: the scheduler routes around
        the dead GPU without needing the failover path."""
        path, num_words = model_info
        plan = FaultPlan.from_dict({"faults": [
            {"kind": "device_failure", "iteration": 1, "device": 0},
        ]})
        trace = poisson_trace([path], num_words, rate=2000, duration=0.01,
                              seed=9)
        report = run(trace, ServiceConfig(max_batch_size=4, iterations=3),
                     gpus=2, fault_plan=plan)
        assert report.count("completed") == report.submitted
        # Every batch after the failure ran on the surviving replica.
        late = [r.replica for r in report.results
                if r.batch_id is not None and r.batch_id >= 1]
        assert late and set(late) == {1}

    def test_all_replicas_dead_fails_cleanly(self, model_info):
        path, num_words = model_info
        plan = FaultPlan.from_dict({"faults": [
            {"kind": "device_failure", "iteration": 0, "device": 0},
        ]})
        request = InferenceRequest(0, ((0, 1, 2),), 0.0, path, seed=1)
        report = run([request], ServiceConfig(), gpus=1, fault_plan=plan)
        assert report.results[0].status == "failed"
        assert "no routable replica" in report.results[0].error


class TestThroughputScaling:
    def test_two_replicas_finish_sooner(self, model_info):
        """The same saturating trace drains faster on more GPUs."""
        path, num_words = model_info
        trace = poisson_trace([path], num_words, rate=50_000,
                              duration=0.003, seed=13, mean_doc_len=120)
        config = ServiceConfig(max_batch_size=4, max_wait_seconds=5e-4,
                               max_queue=4096, iterations=50)
        one = run(trace, config, gpus=1)
        four = run(trace, config, gpus=4)
        assert one.count("completed") == four.count("completed") == len(trace)
        assert four.makespan < one.makespan
