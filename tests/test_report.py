"""Tests for the markdown run-report generator."""

from __future__ import annotations

import pytest

from repro.core import CuLDA, TrainConfig
from repro.gpusim.platform import pascal_platform
from repro.report import render_markdown


@pytest.fixture(scope="module")
def run():
    from repro.corpus.synthetic import nytimes_like

    corpus = nytimes_like(num_tokens=12_000, num_topics=8, seed=2)
    machine = pascal_platform(2)
    result = CuLDA(
        corpus, machine,
        TrainConfig(num_topics=8, iterations=6, seed=0, likelihood_every=3),
    ).train()
    return corpus, machine, result


class TestRenderMarkdown:
    def test_contains_all_sections(self, run):
        corpus, machine, result = run
        md = render_markdown(result, machine)
        for section in ("# CuLDA_CGS run report", "## Configuration",
                        "## Outcome", "## Kernel time breakdown",
                        "## Iteration trace", "## Topics",
                        "## Timeline"):
            assert section in md

    def test_metrics_present(self, run):
        corpus, machine, result = run
        md = render_markdown(result, machine)
        assert "M tokens/s" in md
        assert "energy estimate" in md
        assert "peak device memory" in md
        assert f"{result.final_log_likelihood:.4f}" in md

    def test_without_machine_skips_timeline(self, run):
        corpus, machine, result = run
        md = render_markdown(result)
        assert "## Timeline" not in md
        assert "energy" not in md

    def test_iteration_rows_capped(self, run):
        corpus, machine, result = run
        md = render_markdown(result, max_iteration_rows=2)
        rows = [l for l in md.splitlines() if l.startswith("| ") and
                l.split("|")[1].strip().isdigit()]
        assert len(rows) <= 5

    def test_vocabulary_renders_words(self, run):
        corpus, machine, result = run
        from repro.corpus.corpus import Vocabulary

        vocab = Vocabulary(
            f"w{i}" for i in range(corpus.num_words)
        ).freeze()
        md = render_markdown(result, vocabulary=vocab, top_words=3)
        assert "w" in md and "**topic" in md
