"""Tests for Vose alias tables (the competing O(1) sampler design)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import chisquare

from repro.core.alias import AliasTable
from repro.core.index_tree import IndexTree


class TestConstruction:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([np.inf]))

    def test_uniform(self):
        t = AliasTable(np.ones(4))
        assert np.allclose(t.prob, 1.0)

    def test_implied_distribution_exact(self):
        rng = np.random.default_rng(0)
        w = rng.random(37)
        t = AliasTable(w)
        assert np.allclose(t.implied_distribution(), w / w.sum(), atol=1e-12)

    def test_implied_distribution_with_zeros(self):
        w = np.array([0.0, 3.0, 0.0, 1.0])
        t = AliasTable(w)
        assert np.allclose(t.implied_distribution(), w / w.sum(), atol=1e-12)


class TestSampling:
    def test_single_element(self):
        t = AliasTable(np.array([2.0]))
        assert t.sample(0.3, 0.9) == 0

    def test_zero_weight_never_drawn(self):
        t = AliasTable(np.array([0.0, 1.0, 0.0]))
        rng = np.random.default_rng(1)
        draws = t.sample_many(rng.random(5000), rng.random(5000))
        assert set(np.unique(draws)) == {1}

    def test_distribution_chi_square(self):
        w = np.array([0.1, 0.5, 0.15, 0.25])
        t = AliasTable(w)
        rng = np.random.default_rng(2)
        n = 40_000
        draws = t.sample_many(rng.random(n), rng.random(n))
        observed = np.bincount(draws, minlength=4)
        _, pvalue = chisquare(observed, w / w.sum() * n)
        assert pvalue > 1e-4

    def test_shape_mismatch_rejected(self):
        t = AliasTable(np.ones(3))
        with pytest.raises(ValueError):
            t.sample_many(np.zeros(2), np.zeros(3))

    def test_same_distribution_as_index_tree(self):
        """Tree and alias table encode the same multinomial: their draw
        histograms over many samples must agree (two-sample check via
        expected counts)."""
        rng = np.random.default_rng(5)
        w = rng.random(64)
        tree = IndexTree(w)
        table = AliasTable(w)
        n = 50_000
        tree_draws = tree.sample_many(rng.random(n) * tree.total)
        tbl_draws = table.sample_many(rng.random(n), rng.random(n))
        p = w / w.sum()
        for draws in (tree_draws, tbl_draws):
            observed = np.bincount(draws, minlength=64)
            mask = p * n >= 5
            _, pvalue = chisquare(
                observed[mask], p[mask] / p[mask].sum() * observed[mask].sum()
            )
            assert pvalue > 1e-4


class TestProperties:
    @given(
        n=st.integers(1, 200),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_implied_distribution_recovers_weights(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(n) + 1e-9
        t = AliasTable(w)
        assert np.allclose(t.implied_distribution(), w / w.sum(), atol=1e-9)

    @given(
        n=st.integers(1, 100),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_draws_in_range_and_positive_weight(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(n)
        w[rng.random(n) < 0.3] = 0.0
        if w.sum() == 0:
            w[0] = 1.0
        t = AliasTable(w)
        draws = t.sample_many(rng.random(200), rng.random(200))
        assert draws.min() >= 0 and draws.max() < n
        assert np.all(w[draws] > 0)
