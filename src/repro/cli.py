"""Command-line interface.

Seven subcommands::

    repro-lda train    # train CuLDA_CGS on a UCI file or synthetic twin
    repro-lda infer    # fold new documents into a saved model
    repro-lda project  # print a paper artifact (table4/table5/fig7/fig9)
    repro-lda profile  # instrumented run: breakdown, Gantt, counters
    repro-lda serve    # replay a request trace through the online service
    repro-lda loadgen  # Poisson open-loop load test of the service
    repro-lda bench    # run the benchmark suite / regression gate

Examples
--------
::

    repro-lda train --synthetic nytimes --tokens 50000 --topics 32 \
        --iterations 30 --platform pascal --gpus 2 --save model.npz
    repro-lda train --algo warplda --synthetic nytimes --tokens 50000 \
        --topics 32 --iterations 30
    repro-lda train --synthetic nytimes --iterations 40 \
        --save run.npz --save-every 10        # checkpoint every 10 iters
    repro-lda train --synthetic nytimes --iterations 40 --resume run.npz
    repro-lda infer --model model.npz --synthetic nytimes --tokens 5000
    repro-lda project table4
    repro-lda profile --platform volta --gpus 4 --iterations 5 \
        --trace out.json --metrics out.prom --events out.jsonl
    repro-lda serve --model model.npz --trace requests.jsonl --gpus 2
    repro-lda loadgen --model model.npz --rate 2000 --duration 0.05 \
        --gpus 2 --deadline 0.01 --metrics serve.prom
    repro-lda loadgen --model model.npz --smoke      # CI-sized preset
    repro-lda bench --tier quick --out BENCH_ci.json \
        --compare BENCH_6.json                # CI regression gate
    repro-lda loadgen --model model.npz --chaos --gpus 4 \
        --hedge-quantile 0.9 --request-trace-chrome spans.json
    repro-lda profile --serve-trace spans.jsonl      # request critical paths
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]

PLATFORMS = ("maxwell", "pascal", "volta", "dgx")
RECOVERY_MODES = ("none", "retry", "elastic")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _add_sync_arg(p: argparse.ArgumentParser) -> None:
    """The ``--sync`` flag shared by train and profile.

    Choices come straight from the collective registry (plus ``auto``),
    so registering a new collective surfaces it in every subcommand
    without touching a hand-kept tuple here.
    """
    from repro.comm import sync_choices

    choices = sync_choices()
    p.add_argument(
        "--sync", choices=choices, default="auto",
        help="model-sync collective: 'auto' (default) lets the "
        "topology-aware planner pick the cheapest per iteration; "
        "forcing one of " + ", ".join(choices[1:]) + " pins that plan "
        "(see docs/SYNC.md)")


def _add_internode_args(p: argparse.ArgumentParser) -> None:
    """The multi-node flags of ``train`` (DistributedCuLDA).

    ``--inter-sync`` choices come from the cluster-collective registry
    (plus ``auto``), mirroring how ``--sync`` tracks the GPU registry.
    """
    from repro.comm import cluster_sync_choices

    choices = cluster_sync_choices()
    p.add_argument("--nodes", type=_positive_int, default=1,
                   help="cluster nodes for multi-node CuLDA; each node "
                   "is one --platform machine joined by 10 GbE "
                   "(default: 1 = the single-machine paper setup; see "
                   "docs/DISTRIBUTED.md)")
    p.add_argument("--gpus-per-node", type=_positive_int, default=None,
                   metavar="G",
                   help="GPUs on each node with --nodes > 1 "
                   "(default: --gpus)")
    p.add_argument("--staleness", type=_nonneg_int, default=0,
                   metavar="S",
                   help="bounded staleness: nodes run up to S iterations "
                   "on a stale global φ between inter-node syncs "
                   "(0 = synchronous, bit-identical to one machine; "
                   "--nodes > 1 only)")
    p.add_argument(
        "--inter-sync", choices=choices, default="auto",
        help="inter-node φ-sync backend: 'auto' (default) lets the "
        "cluster planner pick the cheapest per sync; forcing one of " +
        ", ".join(choices[1:]) + " pins it (--nodes > 1 only)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lda",
        description="CuLDA_CGS reproduction: train/infer LDA on a "
        "simulated multi-GPU machine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_corpus_args(
        p: argparse.ArgumentParser, required: bool = True
    ) -> None:
        src = p.add_mutually_exclusive_group(required=required)
        src.add_argument("--uci", metavar="DOCWORD",
                         help="UCI bag-of-words file (docword.*.txt[.gz])")
        src.add_argument("--synthetic", choices=("nytimes", "pubmed"),
                         default=None if required else "nytimes",
                         help="generate a synthetic twin corpus")
        p.add_argument("--vocab", metavar="FILE",
                       help="UCI vocab file (with --uci)")
        p.add_argument("--tokens", type=_positive_int, default=50_000,
                       help="twin size in tokens (with --synthetic)")
        p.add_argument("--seed", type=int, default=0)

    t = sub.add_parser("train", help="train a model")
    add_corpus_args(t)
    t.add_argument("--algo",
                   choices=("culda", "saberlda", "warplda", "scvb0",
                            "ldastar"),
                   default="culda",
                   help="training algorithm (default: culda)")
    t.add_argument("--topics", type=_positive_int, default=128, help="K")
    t.add_argument("--iterations", type=_positive_int, default=100)
    t.add_argument("--platform", choices=PLATFORMS, default="volta",
                   help="simulated platform (culda/saberlda)")
    t.add_argument("--gpus", type=_positive_int, default=1)
    _add_internode_args(t)
    t.add_argument("--workers", type=_positive_int, default=4,
                   help="cluster size (ldastar)")
    t.add_argument("--likelihood-every", type=_nonneg_int, default=0)
    t.add_argument("--no-compression", action="store_true",
                   help="disable 16-bit compression (§6.1.3)")
    _add_sync_arg(t)
    t.add_argument("--save", metavar="FILE", help="write model checkpoint")
    t.add_argument("--save-every", type=_nonneg_int, default=0, metavar="N",
                   help="write a full run-state checkpoint to --save FILE "
                   "every N iterations (resumable with --resume)")
    t.add_argument("--resume", metavar="FILE",
                   help="resume bit-identically from a --save-every "
                   "checkpoint")
    t.add_argument("--report", metavar="FILE",
                   help="write a markdown run report")
    t.add_argument("--top-words", type=_nonneg_int, default=0,
                   help="print N top word-ids per topic")
    t.add_argument("--faults", metavar="PLAN.json",
                   help="inject the faults described in a JSON fault plan "
                   "(GPU kinds with --algo culda, cluster kinds with "
                   "--algo ldastar; see docs/ROBUSTNESS.md)")
    t.add_argument("--recovery", choices=RECOVERY_MODES, default=None,
                   help="fault-recovery policy: retry transient transfers "
                   "and roll back corrupted state ('retry'), additionally "
                   "re-partition over surviving GPUs/nodes on device or "
                   "node loss ('elastic'), or fail fast ('none', the "
                   "default; culda and ldastar)")

    i = sub.add_parser("infer", help="fold documents into a saved model")
    add_corpus_args(i)
    i.add_argument("--model", required=True, help="checkpoint from train --save")
    i.add_argument("--iterations", type=_positive_int, default=20)

    pr = sub.add_parser(
        "profile",
        help="instrumented training run: time breakdown, per-device "
        "Gantt, top counters, optional trace/metrics/event dumps",
    )
    add_corpus_args(pr, required=False)
    pr.add_argument("--topics", type=_positive_int, default=64, help="K")
    pr.add_argument("--iterations", type=_positive_int, default=5)
    pr.add_argument("--platform", choices=PLATFORMS, default="volta")
    pr.add_argument("--gpus", type=_positive_int, default=1)
    pr.add_argument("--nodes", type=_positive_int, default=1,
                    help="simulated machines; > 1 profiles the "
                    "multi-node trainer (cluster fault plans allowed)")
    pr.add_argument("--gpus-per-node", type=_positive_int, default=None,
                    help="GPUs per machine with --nodes > 1 "
                    "(default: --gpus)")
    _add_sync_arg(pr)
    pr.add_argument("--likelihood-every", type=_nonneg_int, default=0)
    pr.add_argument("--faults", metavar="PLAN.json",
                    help="inject the faults described in a JSON fault plan")
    pr.add_argument("--recovery", choices=RECOVERY_MODES, default=None,
                    help="fault-recovery policy (default: none)")
    pr.add_argument("--trace", metavar="FILE",
                    help="write a Chrome/Perfetto trace (chrome://tracing)")
    pr.add_argument("--metrics", metavar="FILE",
                    help="write a Prometheus text-format metrics snapshot")
    pr.add_argument("--events", metavar="FILE",
                    help="stream the training events as JSONL")
    pr.add_argument("--top", type=_positive_int, default=12,
                    help="counter rows to print")
    pr.add_argument("--format", choices=("text", "json"), default="text",
                    help="report format; json emits the stable "
                    "repro-profile/1 schema (see docs/BENCHMARKS.md)")
    pr.add_argument("--serve-trace", metavar="SPANS.jsonl",
                    help="instead of training, reconstruct request "
                    "critical paths from a span file written by "
                    "serve/loadgen --request-trace")
    pr.add_argument("--trace-id", metavar="ID",
                    help="focus the --serve-trace breakdown on one "
                    "request's trace ID")

    def add_service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--platform", choices=PLATFORMS, default="volta")
        p.add_argument("--gpus", type=_positive_int, default=1,
                       help="replicas (one phi replica per simulated GPU)")
        p.add_argument("--max-batch-size", type=_positive_int, default=8)
        p.add_argument("--max-wait", type=_positive_float, default=2e-3,
                       metavar="SECONDS",
                       help="micro-batcher wait bound (simulated seconds)")
        p.add_argument("--max-queue", type=_positive_int, default=64,
                       help="bounded-queue admission limit "
                       "(pending + in-flight requests)")
        p.add_argument("--cache-capacity", type=_positive_int, default=2,
                       help="resident models in the LRU cache")
        p.add_argument("--iterations", type=_positive_int, default=5,
                       help="default fold-in sweeps per request")
        p.add_argument("--deadline", type=_positive_float, default=None,
                       metavar="SECONDS",
                       help="default per-request deadline (simulated)")
        p.add_argument("--warm-spares", type=_nonneg_int, default=0,
                       help="GPUs held in reserve as respawn targets "
                       "for dead replicas")
        p.add_argument("--hedge-quantile", type=_positive_float,
                       default=None, metavar="Q",
                       help="enable hedged requests: duplicate batches "
                       "slower than this service-time quantile")
        p.add_argument("--faults", metavar="PLAN.json",
                       help="fault plan; 'iteration' fields fire per "
                       "batch sequence number")
        p.add_argument("--metrics", metavar="FILE",
                       help="write a Prometheus text-format snapshot")
        p.add_argument("--top", type=_positive_int, default=10,
                       help="counter rows to print")
        p.add_argument("--request-trace", metavar="SPANS.jsonl",
                       help="write per-request trace spans as JSONL "
                       "(inspect with 'profile --serve-trace')")
        p.add_argument("--request-trace-chrome", metavar="FILE.json",
                       help="write per-request trace spans as a "
                       "Chrome/Perfetto trace (chrome://tracing)")

    se = sub.add_parser(
        "serve",
        help="replay a JSONL request trace through the online "
        "inference service",
    )
    se.add_argument("--model", required=True,
                    help="default checkpoint for requests without a "
                    "'model' field")
    se.add_argument("--trace", required=True, metavar="FILE.jsonl",
                    help="request trace (one JSON object per line)")
    add_service_args(se)

    lg = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load test of the serving path",
    )
    lg.add_argument("--model", action="append", required=True,
                    help="checkpoint(s) to serve; repeat to spread load "
                    "over several models (exercises the cache)")
    lg.add_argument("--rate", type=_positive_float, default=2000.0,
                    help="mean arrival rate (requests/simulated second)")
    lg.add_argument("--duration", type=_positive_float, default=0.05,
                    help="trace length (simulated seconds)")
    lg.add_argument("--mean-doc-len", type=_positive_int, default=20)
    lg.add_argument("--max-docs", type=_positive_int, default=3,
                    help="documents per request (uniform in [1, N])")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--smoke", action="store_true",
                    help="CI preset: small fixed trace, fails if any "
                    "request is lost")
    lg.add_argument("--chaos", action="store_true",
                    help="run under a serving chaos plan (default plan "
                    "unless --faults is given) and check the serving "
                    "invariants instead of all-completed")
    lg.add_argument("--low-priority-fraction", type=float, default=0.0,
                    metavar="F",
                    help="share of requests tagged priority 0 "
                    "(sheddable under degraded mode)")
    lg.add_argument("--save-trace", metavar="FILE.jsonl",
                    help="also write the generated trace (replayable "
                    "with 'serve --trace')")
    add_service_args(lg)

    b = sub.add_parser(
        "bench",
        help="run the curated benchmark suite; write a BENCH_*.json "
        "snapshot and optionally gate against a baseline",
    )
    b.add_argument("--tier", choices=("quick", "full"), default="quick",
                   help="quick = the CI subset; full adds the larger "
                   "scenarios (tiers select scenarios, never shrink "
                   "workloads)")
    b.add_argument("--only", metavar="SUBSTR",
                   help="run only scenarios whose name contains SUBSTR")
    b.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list the selected scenarios and exit")
    b.add_argument("--out", metavar="FILE",
                   help="write the snapshot JSON (schema repro-bench/1)")
    b.add_argument("--compare", metavar="BASELINE.json",
                   help="compare against a baseline snapshot; exit 1 "
                   "on any gated regression")
    b.add_argument("--verbose", action="store_true",
                   help="show unchanged metrics in the --compare table")

    p = sub.add_parser("project", help="print a paper artifact")
    p.add_argument("artifact", choices=("table1", "table4", "table5",
                                        "fig7", "fig9"))
    p.add_argument("--dataset", choices=("NYTimes", "PubMed"),
                   default="NYTimes", help="for fig7")
    return parser


def _load_corpus(args: argparse.Namespace):
    from repro.corpus.synthetic import nytimes_like, pubmed_like
    from repro.corpus.uci import read_uci_bow

    if args.uci:
        return read_uci_bow(args.uci, vocab_path=args.vocab)
    maker = nytimes_like if args.synthetic == "nytimes" else pubmed_like
    return maker(num_tokens=args.tokens, seed=args.seed)


#: Sentinel returned by :func:`_load_fault_plan` for an unreadable or
#: invalid plan file (``None`` already means "no --faults given").
_BAD_PLAN = object()


def _load_fault_plan(path):
    if not path:
        return None
    from repro.faults import FaultPlan

    try:
        return FaultPlan.from_json(path)
    except (OSError, ValueError) as exc:
        print(f"error: invalid fault plan {path}: {exc}", file=sys.stderr)
        return _BAD_PLAN


def _print_training_failure(exc) -> None:
    print(f"error: training failed: {exc}", file=sys.stderr)
    if getattr(exc, "violations", ()):
        for v in exc.violations:
            print(f"  violation: {v}", file=sys.stderr)
    for event in getattr(exc, "fault_events", ()):
        print(f"  fault event: {event}", file=sys.stderr)
    timeline = getattr(exc, "membership_events", ())
    if timeline:
        print("  membership timeline:", file=sys.stderr)
        for at, node, frm, to in timeline:
            print(f"    t={at:.3f}s node {node}: {frm} -> {to}",
                  file=sys.stderr)


def _check_fault_domains(plan, algo, nodes=1):
    """Every fault kind needs a matching substrate in the run: cluster
    kinds need a cluster (``--algo ldastar`` or ``--nodes > 1``), GPU
    kinds a simulated machine (``--algo culda``/``saberlda``). Returns
    an error naming the offending plan entry, or None."""
    if plan is None or plan is _BAD_PLAN:
        return None
    has_cluster = algo == "ldastar" or (algo == "culda" and nodes > 1)
    for i, spec in enumerate(plan):
        if spec.domain == "cluster" and not has_cluster:
            return (f"fault #{i} ({spec.kind}): cluster fault kinds need a "
                    f"cluster substrate — use --algo ldastar or --algo "
                    f"culda with --nodes > 1, not {algo!r} on one node")
        if spec.domain == "gpu" and algo not in ("culda", "saberlda"):
            return (f"fault #{i} ({spec.kind}): GPU fault kinds require "
                    f"--algo culda, not {algo!r}")
    return None


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import save_model
    from repro.engine import TrainingFailure
    from repro.telemetry import MetricsRegistry

    if args.save_every and not args.save:
        print("error: --save-every requires --save FILE", file=sys.stderr)
        return 2
    if (args.faults or args.recovery) and args.algo not in (
        "culda", "ldastar"
    ):
        print("error: --faults/--recovery require --algo culda or "
              "ldastar (fault injection targets the simulated multi-GPU "
              "machine or the simulated cluster)", file=sys.stderr)
        return 2
    if args.nodes > 1 and args.algo != "culda":
        print("error: --nodes > 1 requires --algo culda (multi-node "
              "training is the DistributedCuLDA trainer; ldastar has "
              "its own --workers cluster)", file=sys.stderr)
        return 2
    if args.nodes == 1 and (args.staleness > 0 or args.inter_sync != "auto"):
        print("error: --staleness/--inter-sync only apply with "
              "--nodes > 1 (a single node has no inter-node sync leg)",
              file=sys.stderr)
        return 2
    fault_plan = _load_fault_plan(args.faults)
    if fault_plan is _BAD_PLAN:
        return 2
    domain_error = _check_fault_domains(fault_plan, args.algo, args.nodes)
    if domain_error:
        print(f"error: {domain_error}", file=sys.stderr)
        return 2
    corpus = _load_corpus(args)
    registry = MetricsRegistry()
    run_kwargs = dict(
        save_every=args.save_every,
        checkpoint_path=args.save if args.save_every else None,
        resume=args.resume,
        vocabulary=corpus.vocabulary,
    )
    machine = None
    if args.algo in ("culda", "saberlda"):
        from repro.core import CuLDA, TrainConfig
        from repro.gpusim.platform import make_machine

        if args.algo == "saberlda" and args.gpus != 1:
            print("error: saberlda supports a single GPU only",
                  file=sys.stderr)
            return 2
        config = TrainConfig(
            num_topics=args.topics,
            iterations=args.iterations,
            seed=args.seed,
            compressed=not args.no_compression,
            sync_algorithm=args.sync,
            likelihood_every=args.likelihood_every,
            inter_sync=args.inter_sync,
            staleness=args.staleness,
        )
        if args.algo == "saberlda":
            machine = make_machine(args.platform, args.gpus)
            from repro.baselines import SaberLDA

            trainer = SaberLDA(corpus, machine, config, registry=registry)
        elif args.nodes > 1:
            from repro.core import DistributedCuLDA

            gpn = args.gpus_per_node or args.gpus
            machines = [
                make_machine(args.platform, gpn) for _ in range(args.nodes)
            ]
            machine = machines[0]
            trainer = DistributedCuLDA(
                corpus, machines, config=config, registry=registry
            )
            run_kwargs.update(recovery=args.recovery,
                              fault_plan=fault_plan)
        else:
            machine = make_machine(args.platform, args.gpus)
            trainer = CuLDA(
                corpus, machine=machine, config=config, registry=registry
            )
            run_kwargs.update(recovery=args.recovery,
                              fault_plan=fault_plan)
        try:
            result = trainer.train(**run_kwargs)
        except TrainingFailure as exc:
            _print_training_failure(exc)
            return 1
    else:
        from repro.core.model import LDAHyperParams

        hyper = LDAHyperParams(num_topics=args.topics)
        if args.algo == "warplda":
            from repro.baselines import WarpLDA

            trainer = WarpLDA(corpus, hyper, seed=args.seed,
                              registry=registry)
        elif args.algo == "scvb0":
            from repro.baselines import SCVB0

            trainer = SCVB0(corpus, hyper, seed=args.seed, registry=registry)
        else:
            from repro.baselines import LDAStar

            trainer = LDAStar(corpus, hyper, num_workers=args.workers,
                              seed=args.seed, registry=registry)
            run_kwargs.update(recovery=args.recovery,
                              fault_plan=fault_plan)
        try:
            result = trainer.train(
                iterations=args.iterations,
                likelihood_every=args.likelihood_every,
                **run_kwargs,
            )
        except TrainingFailure as exc:
            _print_training_failure(exc)
            return 1
    print(result.summary())
    if args.top_words:
        vocab = corpus.vocabulary
        for k in range(result.hyper.num_topics):
            ids = result.top_words(k, n=args.top_words)
            shown = (
                " ".join(vocab.word_of(w) for w in ids) if vocab else str(ids)
            )
            print(f"topic {k:>3d}: {shown}")
    if args.save:
        if args.save_every:
            # train() already wrote the run-state file, which doubles as
            # a model checkpoint.
            print(f"run-state checkpoint saved to {args.save}")
        else:
            save_model(result, args.save, vocabulary=corpus.vocabulary)
            print(f"model saved to {args.save}")
    if args.report:
        from repro.report import render_markdown

        with open(args.report, "w") as fh:
            fh.write(
                render_markdown(
                    result, machine, corpus.vocabulary, registry=registry
                )
            )
        print(f"report written to {args.report}")
    return 0


def _cmd_profile_serve_trace(args: argparse.Namespace) -> int:
    """``profile --serve-trace``: reconstruct request critical paths."""
    import json

    from repro.telemetry.tracing import (
        format_serve_trace,
        read_spans_jsonl,
        serve_trace_json,
    )

    try:
        spans = read_spans_jsonl(args.serve_trace)
    except (OSError, ValueError) as exc:
        print(f"error: invalid span file {args.serve_trace}: {exc}",
              file=sys.stderr)
        return 2
    if not spans:
        print(f"error: {args.serve_trace} holds no spans", file=sys.stderr)
        return 2
    if args.trace_id and not any(s.trace_id == args.trace_id for s in spans):
        print(f"error: no trace {args.trace_id!r} in {args.serve_trace}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(serve_trace_json(spans), indent=2, sort_keys=True))
    else:
        print(format_serve_trace(spans, trace_id=args.trace_id,
                                 top=args.top))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.core import CuLDA, TrainConfig
    from repro.core.culda import BREAKDOWN_KINDS, _busy_fractions
    from repro.engine import TrainingFailure
    from repro.gpusim.platform import make_machine
    from repro.obs.profiling import (
        ELASTICITY_COUNTERS,
        counter_total,
        profile_json,
    )
    from repro.telemetry import JSONLEmitter, MetricsRegistry
    from repro.telemetry.exporters import merged_chrome_json, to_prometheus

    if args.serve_trace:
        return _cmd_profile_serve_trace(args)
    if args.trace_id:
        print("error: --trace-id requires --serve-trace", file=sys.stderr)
        return 2
    fault_plan = _load_fault_plan(args.faults)
    if fault_plan is _BAD_PLAN:
        return 2
    domain_error = _check_fault_domains(fault_plan, "culda", args.nodes)
    if domain_error:
        print(f"error: {domain_error}", file=sys.stderr)
        return 2
    corpus = _load_corpus(args)
    registry = MetricsRegistry()
    callbacks = [JSONLEmitter(args.events)] if args.events else []
    config = TrainConfig(
        num_topics=args.topics,
        iterations=args.iterations,
        seed=args.seed,
        sync_algorithm=args.sync,
        likelihood_every=args.likelihood_every,
    )
    if args.nodes > 1:
        from repro.core import DistributedCuLDA

        gpn = args.gpus_per_node or args.gpus
        machines = [
            make_machine(args.platform, gpn) for _ in range(args.nodes)
        ]
        machine = machines[0]
        trainer = DistributedCuLDA(
            corpus, machines, config=config,
            callbacks=callbacks, registry=registry,
        )
    else:
        machine = make_machine(args.platform, args.gpus)
        trainer = CuLDA(
            corpus,
            machine=machine,
            config=config,
            callbacks=callbacks,
            registry=registry,
        )
    try:
        result = trainer.train(recovery=args.recovery, fault_plan=fault_plan)
    except TrainingFailure as exc:
        _print_training_failure(exc)
        return 1

    if args.format == "json":
        report = profile_json(
            result, machine, registry, corpus.name, args.topics,
            top=args.top,
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.trace:
            with open(args.trace, "w") as fh:
                fh.write(merged_chrome_json(machine.trace,
                                            trainer.host_trace))
        if args.metrics:
            with open(args.metrics, "w") as fh:
                fh.write(to_prometheus(registry))
        return 0

    print(f"profile: {corpus.name} on {machine.name}, "
          f"K={args.topics}, {len(result.iterations)} iteration(s)")
    print(f"simulated time {result.total_sim_seconds * 1e3:.3f} ms, "
          f"throughput {result.avg_tokens_per_sec / 1e6:.1f} M tokens/s, "
          f"wall {result.wall_seconds:.2f} s")
    print()

    print("time breakdown (simulated clock):")
    breakdown = machine.trace.breakdown_fractions(BREAKDOWN_KINDS)
    for kind in BREAKDOWN_KINDS:
        share = breakdown.get(kind, 0.0)
        if share > 0:
            print(f"  {kind:<14s} {share * 100:5.1f}%")
    print()

    t1 = machine.trace.makespan()
    busy = _busy_fractions(
        machine.trace.intervals,
        [g.device_id for g in machine.gpus],
        0.0,
        t1,
    )
    print("device busy fractions:")
    for dev in sorted(busy):
        print(f"  gpu{dev}  {busy[dev]:.1%}")
    print()

    print(f"top counters (of {len(registry)} metric families):")
    for s in registry.top_counters(args.top):
        label_s = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
        name = f"{s.name}{{{label_s}}}" if label_s else s.name
        print(f"  {name:<56s} {s.value:>14,.0f}")
    print()

    from repro.comm import decisions_from_registry

    decisions = decisions_from_registry(registry)
    if decisions:
        print("sync planner decisions:")
        for d in decisions:
            mode = "forced" if d["forced"] else "auto"
            line = (f"  {d['algorithm']:<14s} on {d['topology']:<18s} "
                    f"x{d['count']:<4d} ({mode}")
            if "predicted_seconds" in d:
                line += f", predicted {d['predicted_seconds'] * 1e6:.1f} us"
            print(line + ")")
        print()

    if result.fault_events:
        print(f"fault events ({len(result.fault_events)} injected, "
              f"{result.rollbacks} rollback(s), "
              f"{result.repartitions} repartition(s)):")
        for event in result.fault_events:
            detail = " ".join(
                f"{k}={v}" for k, v in event.items() if k != "kind"
            )
            print(f"  {event['kind']:<24s} {detail}")
        print()

    elasticity = {
        name: counter_total(registry, name) for name in ELASTICITY_COUNTERS
    }
    if any(elasticity.values()):
        print("node recovery:")
        for name in ELASTICITY_COUNTERS:
            print(f"  {name:<40s} {elasticity[name]:>14,.3f}")
        print()

    print("timeline (text Gantt):")
    print(machine.trace.gantt_text(width=80))

    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(merged_chrome_json(machine.trace, trainer.host_trace))
        print(f"chrome trace written to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(to_prometheus(registry))
        print(f"prometheus metrics written to {args.metrics}")
    if args.events:
        print(f"event stream written to {args.events}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.core import infer_documents, load_model

    ckpt = load_model(args.model)
    corpus = _load_corpus(args)
    if corpus.num_words > ckpt.num_words:
        print(
            f"error: corpus vocabulary ({corpus.num_words}) exceeds the "
            f"model's ({ckpt.num_words})",
            file=sys.stderr,
        )
        return 2
    inf = infer_documents(
        corpus, ckpt.phi, ckpt.hyper, iterations=args.iterations,
        seed=args.seed,
    )
    print(f"folded {corpus.num_docs} documents ({corpus.num_tokens} tokens) "
          f"into {args.model}")
    print(f"held-out log-likelihood/token: {inf.log_likelihood_per_token:.4f}")
    dominant = np.argmax(inf.doc_topic, axis=1)
    hist = np.bincount(dominant, minlength=ckpt.num_topics)
    print("dominant-topic histogram:",
          " ".join(f"{k}:{c}" for k, c in enumerate(hist) if c))
    return 0


def _service_from_args(args: argparse.Namespace, fault_plan=None):
    """Build an (InferenceService, registry) pair, or None on bad input.

    *fault_plan* (e.g. the chaos default) wins over ``--faults``.
    """
    from repro.gpusim.platform import make_machine
    from repro.serve import HedgePolicy, InferenceService, ServiceConfig
    from repro.telemetry import MetricsRegistry

    if fault_plan is None:
        fault_plan = _load_fault_plan(args.faults)
        if fault_plan is _BAD_PLAN:
            return None
    if args.warm_spares >= args.gpus:
        print("error: --warm-spares must leave at least one active "
              "replica", file=sys.stderr)
        return None
    hedge = None
    if args.hedge_quantile is not None:
        if not 0.0 < args.hedge_quantile < 1.0:
            print("error: --hedge-quantile must be in (0, 1)",
                  file=sys.stderr)
            return None
        hedge = HedgePolicy(quantile=args.hedge_quantile)
    registry = MetricsRegistry()
    service = InferenceService(
        make_machine(args.platform, args.gpus),
        ServiceConfig(
            max_batch_size=args.max_batch_size,
            max_wait_seconds=args.max_wait,
            max_queue=args.max_queue,
            cache_capacity=args.cache_capacity,
            iterations=args.iterations,
            deadline_seconds=args.deadline,
            warm_spares=args.warm_spares,
            hedge=hedge,
        ),
        registry=registry,
        fault_plan=fault_plan,
    )
    return service, registry


def _print_serve_report(report, registry, machine_name: str, top: int) -> None:
    print(f"serving report ({machine_name}):")
    print(report.summary())
    if report.fault_events:
        print(f"fault events ({len(report.fault_events)} injected):")
        for event in report.fault_events:
            detail = " ".join(
                f"{k}={v}" for k, v in event.items() if k != "kind"
            )
            print(f"  {event['kind']:<24s} {detail}")
    print()
    print(f"top counters (of {len(registry)} metric families):")
    for s in registry.top_counters(top):
        label_s = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
        name = f"{s.name}{{{label_s}}}" if label_s else s.name
        print(f"  {name:<56s} {s.value:>14,.0f}")


def _write_request_traces(report, args: argparse.Namespace) -> None:
    """Honor --request-trace / --request-trace-chrome for serve/loadgen."""
    if not (args.request_trace or args.request_trace_chrome):
        return
    from repro.telemetry.tracing import spans_chrome_json, write_spans_jsonl

    if args.request_trace:
        write_spans_jsonl(report.trace_spans, args.request_trace)
        print(f"request trace spans written to {args.request_trace} "
              f"({len(report.trace_spans)} spans; inspect with "
              f"'repro-lda profile --serve-trace {args.request_trace}')")
    if args.request_trace_chrome:
        with open(args.request_trace_chrome, "w") as fh:
            fh.write(spans_chrome_json(report.trace_spans))
        print(f"request chrome trace written to {args.request_trace_chrome}")


def _write_service_metrics(registry, path: str | None) -> None:
    if not path:
        return
    from repro.telemetry.exporters import to_prometheus

    with open(path, "w") as fh:
        fh.write(to_prometheus(registry))
    print(f"prometheus metrics written to {path}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import read_trace_jsonl

    pair = _service_from_args(args)
    if pair is None:
        return 2
    service, registry = pair
    try:
        requests = read_trace_jsonl(args.trace, default_model=args.model)
    except (OSError, ValueError) as exc:
        print(f"error: invalid trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    report = service.run_trace(requests)
    _print_serve_report(report, registry, service.machine.name, args.top)
    _write_service_metrics(registry, args.metrics)
    _write_request_traces(report, args)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.core import load_model
    from repro.serve import poisson_trace, write_trace_jsonl

    if args.smoke:
        # Small fixed preset so CI exercises the whole serving path in
        # a couple of seconds regardless of the other flags.
        args.rate, args.duration = 2000.0, 0.01
        args.mean_doc_len, args.max_docs = 15, 2
    try:
        num_words = min(
            load_model(path).phi.shape[1] for path in args.model
        )
    except (OSError, ValueError) as exc:
        print(f"error: could not load model: {exc}", file=sys.stderr)
        return 2
    chaos_plan = None
    if args.chaos and not args.faults:
        from repro.serve import default_chaos_plan

        if args.gpus < 2:
            print("error: --chaos needs at least --gpus 2",
                  file=sys.stderr)
            return 2
        chaos_plan = default_chaos_plan(args.gpus)
    if not 0.0 <= args.low_priority_fraction <= 1.0:
        print("error: --low-priority-fraction must be in [0, 1]",
              file=sys.stderr)
        return 2
    pair = _service_from_args(args, fault_plan=chaos_plan)
    if pair is None:
        return 2
    service, registry = pair
    requests = poisson_trace(
        args.model, num_words,
        rate=args.rate, duration=args.duration, seed=args.seed,
        mean_doc_len=args.mean_doc_len,
        max_docs_per_request=args.max_docs,
        deadline_seconds=args.deadline,
        low_priority_fraction=args.low_priority_fraction,
    )
    if not requests:
        print("error: trace is empty; raise --rate or --duration",
              file=sys.stderr)
        return 2
    if args.save_trace:
        write_trace_jsonl(requests, args.save_trace)
        print(f"trace written to {args.save_trace}")
    print(f"loadgen: {len(requests)} requests at {args.rate:.0f} req/s "
          f"over {args.duration * 1e3:.1f} ms "
          f"({len(args.model)} model(s), {args.gpus} replica(s))")
    report = service.run_trace(requests)
    _print_serve_report(report, registry, service.machine.name, args.top)
    _write_service_metrics(registry, args.metrics)
    _write_request_traces(report, args)
    if args.chaos:
        from repro.serve import verify_report

        violations = verify_report(
            report, requests,
            default_iterations=args.iterations,
            payload_sample=64,
        )
        if violations:
            print("chaos invariant violations:", file=sys.stderr)
            for violation in violations:
                print(f"  - {violation}", file=sys.stderr)
            return 1
        print(f"chaos invariants hold: {len(requests)} requests "
              f"accounted for exactly once ({report.failovers} "
              f"failover(s), {report.respawns} respawn(s))")
        return 0
    if args.smoke and report.count("completed") != len(requests):
        print("error: smoke run lost requests (expected every request "
              "to complete)", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import (
        REGISTRY,
        compare_snapshots,
        format_deltas,
        format_snapshot,
        gate,
        load_snapshot,
        run_suite,
        write_snapshot,
    )

    if args.list_scenarios:
        import repro.obs.scenarios  # noqa: F401  (populates REGISTRY)

        scenarios = REGISTRY.select(args.tier, args.only)
        if not scenarios:
            print("no scenarios match the selection", file=sys.stderr)
            return 2
        for s in scenarios:
            print(f"{s.name:<36s} [{s.tier:<5s}] {s.description}")
        return 0

    try:
        snapshot = run_suite(
            tier=args.tier, only=args.only,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_snapshot(snapshot))
    if args.out:
        write_snapshot(snapshot, args.out)
        print(f"\nsnapshot written to {args.out}")
    if args.compare:
        try:
            baseline = load_snapshot(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        deltas = compare_snapshots(baseline, snapshot)
        print()
        print(f"comparison against {args.compare} "
              f"(git {baseline.get('git_sha', '?')[:12]}):")
        print(format_deltas(deltas, verbose=args.verbose))
        if gate(deltas):
            return 1
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    if args.artifact == "table1":
        from repro.analysis.roofline import format_table1

        print(format_table1())
        return 0
    from repro.perfmodel import (
        fig7_series,
        fig9_scaling,
        table4_throughput,
        table5_breakdown,
    )

    if args.artifact == "table4":
        t4 = table4_throughput()
        for ds, row in t4.items():
            cells = "  ".join(f"{p}={v / 1e6:.1f}M" for p, v in row.items())
            print(f"{ds:<8s} {cells}")
    elif args.artifact == "table5":
        t5 = table5_breakdown()
        for platform, row in t5.items():
            cells = "  ".join(f"{k}={v * 100:.1f}%" for k, v in row.items())
            print(f"{platform:<7s} {cells}")
    elif args.artifact == "fig7":
        series = fig7_series(args.dataset)
        for name, s in series.items():
            pts = " ".join(f"{v / 1e6:.0f}" for v in s[::10])
            print(f"{name:<8s} {pts}  (M tokens/s, every 10th iteration)")
    elif args.artifact == "fig9":
        f9 = fig9_scaling()
        for g, d in f9.items():
            print(f"{g} GPU(s): {d['speedup']:.2f}x")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "infer":
        return _cmd_infer(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_project(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
