"""SCVB0 — stochastic collapsed variational Bayes (Foulds et al., KDD'13).

The paper cites SCVB as the other family of LDA training algorithms
("various training algorithms have been proposed [13, 32]", §1). Where
CGS draws hard topic assignments, SCVB0 keeps *expected* counts and
updates them with deterministic responsibilities

.. math::

    \\gamma_k \\propto (N^\\Theta_{d,k} + \\alpha)\\,
                      \\frac{N^\\Phi_{k,v} + \\beta}{N^Z_k + \\beta V}

followed by stochastic-approximation steps with Robbins–Monro step
sizes. It typically converges in fewer passes than CGS but does more
arithmetic per token — a useful statistical comparator for Fig 8-style
studies. This implementation uses one minibatch per document (the
formulation of the original paper's Algorithm 1), fully vectorized
within each document.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import LDAHyperParams
from repro.corpus.corpus import Corpus
from repro.engine.algorithm import Algorithm, IterationOutcome
from repro.engine.loop import LoopConfig, TrainingLoop
from repro.engine.results import TrainResult
from repro.engine.state import RunState

__all__ = ["SCVB0", "SCVB0Result"]

#: Historical alias — SCVB0 now returns the unified engine result.
SCVB0Result = TrainResult


class SCVB0(Algorithm):
    """Stochastic collapsed variational Bayes zero for LDA.

    Parameters
    ----------
    corpus: input corpus.
    hyper: hyperparameters (shared with the CGS trainers).
    seed: RNG seed (initialization and document order).
    tau / kappa: Robbins–Monro schedule ρ_t = (t + τ)^(−κ) for the
        global (φ) updates; the per-document schedule is fixed-length.
    doc_burn_in: clamped-θ passes over each document before its
        statistics are committed.
    """

    name = "scvb0"

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        seed: int = 0,
        tau: float = 10.0,
        kappa: float = 0.7,
        doc_burn_in: int = 2,
        callbacks=None,
        registry=None,
    ):
        self._telemetry_init(callbacks, registry)
        if not 0.5 < kappa <= 1.0:
            raise ValueError("kappa must lie in (0.5, 1] for convergence")
        if tau <= 0 or doc_burn_in < 0:
            raise ValueError("tau must be positive, doc_burn_in >= 0")
        self.corpus = corpus
        self.hyper = hyper
        self.tau = tau
        self.kappa = kappa
        self.doc_burn_in = doc_burn_in
        self.rng = np.random.default_rng(seed)
        K, V, D = hyper.num_topics, corpus.num_words, corpus.num_docs
        # Expected counts, randomly initialized to match the totals.
        init = self.rng.random((K, V))
        self.n_phi = init / init.sum() * corpus.num_tokens
        self.n_z = self.n_phi.sum(axis=1)
        init_d = self.rng.random((D, K))
        self.n_theta = (
            init_d / init_d.sum(axis=1, keepdims=True)
            * corpus.doc_lengths[:, None]
        )
        self._t = 0  # global update counter

    # ------------------------------------------------------------------
    def _responsibilities(self, d: int, words: np.ndarray) -> np.ndarray:
        """γ for every token of document *d* (tokens × K)."""
        alpha, beta = self.hyper.alpha, self.hyper.beta
        V = self.corpus.num_words
        gamma = (self.n_theta[d] + alpha) * (
            (self.n_phi[:, words].T + beta) / (self.n_z + beta * V)
        )
        gamma /= gamma.sum(axis=1, keepdims=True)
        return gamma

    def iterate(self, num_iterations: int = 1) -> None:
        """Full passes over the corpus (one minibatch per document)."""
        C = self.corpus
        T = C.num_tokens
        for _ in range(num_iterations):
            order = self.rng.permutation(C.num_docs)
            for d in order:
                words = C.document(d).astype(np.int64)
                L = words.size
                if L == 0:
                    continue
                # Clamped burn-in on the document's θ.
                for b in range(self.doc_burn_in):
                    gamma = self._responsibilities(d, words)
                    rho_d = 1.0 / (b + 2.0)
                    self.n_theta[d] = (1 - rho_d) * self.n_theta[d] + (
                        rho_d * L * gamma.mean(axis=0)
                    )
                gamma = self._responsibilities(d, words)
                self.n_theta[d] = L * gamma.mean(axis=0)

                # Global stochastic update.
                self._t += 1
                rho = (self._t + self.tau) ** (-self.kappa)
                hat_phi = np.zeros_like(self.n_phi)
                np.add.at(hat_phi.T, words, gamma)
                hat_phi *= T / L
                self.n_phi = (1 - rho) * self.n_phi + rho * hat_phi
                self.n_z = self.n_phi.sum(axis=1)

    def log_likelihood_per_token(self) -> float:
        """Predictive score Σ log Σ_k θ̂_dk φ̂_kv / T with the current
        expected counts (comparable across iterations)."""
        alpha, beta = self.hyper.alpha, self.hyper.beta
        K, V = self.hyper.num_topics, self.corpus.num_words
        theta_hat = (self.n_theta + alpha) / (
            self.n_theta.sum(axis=1, keepdims=True) + K * alpha
        )
        phi_hat = (self.n_phi + beta) / (self.n_z + beta * V)[:, None]
        docs = self.corpus.token_doc.astype(np.int64)
        words = self.corpus.token_word.astype(np.int64)
        total = 0.0
        step = 1 << 18
        for lo in range(0, self.corpus.num_tokens, step):
            d = docs[lo : lo + step]
            w = words[lo : lo + step]
            p = np.einsum("ik,ki->i", theta_hat[d], phi_hat[:, w])
            total += float(np.log(np.maximum(p, 1e-300)).sum())
        return total / self.corpus.num_tokens

    def train(
        self,
        iterations: int = 20,
        likelihood_every: int = 0,
        callbacks=None,
        *,
        save_every: int = 0,
        checkpoint_path=None,
        resume=None,
        vocabulary=None,
    ) -> TrainResult:
        loop = TrainingLoop(
            self,
            LoopConfig(
                iterations=iterations,
                likelihood_every=likelihood_every,
                save_every=save_every,
                checkpoint_path=checkpoint_path,
                vocabulary=vocabulary,
            ),
            callbacks=callbacks,
            resume=resume,
        )
        return loop.run()

    # ------------------------------------------------------------------
    # Algorithm strategy surface
    # ------------------------------------------------------------------
    def init_state(self, resume: RunState | None = None) -> RunState:
        if resume is not None:
            if resume.phi is None or resume.phi.shape != self.n_phi.shape:
                raise ValueError("checkpoint does not match this corpus")
            self.n_phi = resume.phi.astype(np.float64, copy=False)
            self.n_theta = resume.extras["n_theta"].astype(
                np.float64, copy=False
            )
            self.n_z = self.n_phi.sum(axis=1)
            self._t = int(resume.extras["t"][0])
            self.rng = resume.rngs[0]
        state = resume if resume is not None else RunState(algo=self.name)
        self.capture_state(state)
        return state

    def run_iteration(self, state: RunState) -> IterationOutcome:
        self.iterate(1)
        # Untimed: SCVB0 carries no CPU cost model, so the outcome omits
        # sim_seconds and the iteration event stays timing-free.
        return IterationOutcome()

    def log_likelihood(self, state: RunState) -> float:
        return self.log_likelihood_per_token()

    def capture_state(self, state: RunState) -> None:
        state.phi = self.n_phi
        state.topics = []
        state.thetas = None
        state.rngs = [self.rng]
        state.extras = {
            "n_theta": self.n_theta,
            "t": np.array([self._t], dtype=np.int64),
        }

    def finalize(self, state: RunState, wall_seconds: float) -> TrainResult:
        return TrainResult(
            corpus_name=self.corpus.name,
            num_tokens=self.corpus.num_tokens,
            iterations=list(state.history),
            wall_seconds=wall_seconds,
            phi=self.n_phi.copy(),
            hyper=self.hyper,
            n_phi=self.n_phi.copy(),
            n_theta=self.n_theta.copy(),
            algo=self.name,
        )
