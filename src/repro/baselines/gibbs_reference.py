"""Exact sequential collapsed Gibbs sampling — the correctness oracle.

This is textbook CGS (Griffiths & Steyvers): for each token in document
order, *remove* the token from the counts, sample its topic from the
exact conditional

.. math::

    p(k \\mid z_{-i}, w) \\propto
      (\\theta^{-i}_{d,k} + \\alpha)\\,
      \\frac{\\phi^{-i}_{k,v} + \\beta}{n^{-i}_k + \\beta V},

and add it back. It is O(K) per token and pure Python per token — use
it only on tiny corpora. Its roles:

1. statistical oracle: the vectorized delayed-update kernel must
   converge to the same likelihood plateau;
2. distribution oracle: with counts frozen, a single exact-CGS draw and
   the S/Q decomposed draw target the *same* multinomial (tested by
   chi-square in the test suite).
"""

from __future__ import annotations

import numpy as np

from repro.corpus.corpus import Corpus
from repro.core.likelihood import log_likelihood_per_token
from repro.core.model import LDAHyperParams, SparseTheta

__all__ = ["ReferenceCGS"]


class ReferenceCGS:
    """Sequential exact collapsed Gibbs sampler.

    Parameters
    ----------
    corpus: the input corpus (keep it tiny: this is O(T·K) per iteration
        in interpreted Python).
    hyper: LDA hyperparameters.
    seed: RNG seed.
    exclude_self: if True (default) the sampled token's own count is
        removed before computing the conditional — exact CGS. False
        reproduces the delayed-update approximation the GPU kernels use.
    """

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        seed: int = 0,
        exclude_self: bool = True,
    ):
        self.corpus = corpus
        self.hyper = hyper
        self.exclude_self = exclude_self
        self.rng = np.random.default_rng(seed)
        K, V, D = hyper.num_topics, corpus.num_words, corpus.num_docs
        self.topics = self.rng.integers(0, K, size=corpus.num_tokens)
        self.theta = np.zeros((D, K), dtype=np.int64)
        self.phi = np.zeros((K, V), dtype=np.int64)
        self.n_k = np.zeros(K, dtype=np.int64)
        docs = corpus.token_doc.astype(np.int64)
        words = corpus.token_word.astype(np.int64)
        np.add.at(self.theta, (docs, self.topics), 1)
        np.add.at(self.phi, (self.topics, words), 1)
        np.add.at(self.n_k, self.topics, 1)
        self._docs = docs
        self._words = words

    def iterate(self, num_iterations: int = 1) -> None:
        """Run full Gibbs sweeps over all tokens."""
        K = self.hyper.num_topics
        alpha, beta = self.hyper.alpha, self.hyper.beta
        V = self.corpus.num_words
        betaV = beta * V
        for _ in range(num_iterations):
            us = self.rng.random(self.corpus.num_tokens)
            for i in range(self.corpus.num_tokens):
                d, v, z = self._docs[i], self._words[i], self.topics[i]
                if self.exclude_self:
                    self.theta[d, z] -= 1
                    self.phi[z, v] -= 1
                    self.n_k[z] -= 1
                p = (self.theta[d] + alpha) * (self.phi[:, v] + beta) / (
                    self.n_k + betaV
                )
                cdf = np.cumsum(p)
                z_new = int(np.searchsorted(cdf, us[i] * cdf[-1], side="right"))
                z_new = min(z_new, K - 1)
                if self.exclude_self:
                    self.theta[d, z_new] += 1
                    self.phi[z_new, v] += 1
                    self.n_k[z_new] += 1
                elif z_new != z:
                    self.theta[d, z] -= 1
                    self.phi[z, v] -= 1
                    self.n_k[z] -= 1
                    self.theta[d, z_new] += 1
                    self.phi[z_new, v] += 1
                    self.n_k[z_new] += 1
                self.topics[i] = z_new

    def conditional(self, token_index: int) -> np.ndarray:
        """The exact (normalized) conditional of one token, with the
        token's own count removed — the distribution oracle."""
        d, v, z = (
            self._docs[token_index],
            self._words[token_index],
            self.topics[token_index],
        )
        theta_row = self.theta[d].astype(np.float64).copy()
        phi_col = self.phi[:, v].astype(np.float64).copy()
        n_k = self.n_k.astype(np.float64).copy()
        if self.exclude_self:
            theta_row[z] -= 1
            phi_col[z] -= 1
            n_k[z] -= 1
        p = (theta_row + self.hyper.alpha) * (phi_col + self.hyper.beta) / (
            n_k + self.hyper.beta * self.corpus.num_words
        )
        return p / p.sum()

    def log_likelihood_per_token(self) -> float:
        theta_csr = self._theta_csr()
        return log_likelihood_per_token(
            theta_csr,
            self.phi,
            self.n_k,
            self.corpus.doc_lengths,
            self.hyper,
        )

    def _theta_csr(self) -> SparseTheta:
        """CSR view of the dense θ."""
        D, K = self.theta.shape
        rows, cols = np.nonzero(self.theta)
        indptr = np.zeros(D + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return SparseTheta(
            indptr, cols.astype(np.int32), self.theta[rows, cols].astype(np.int32), K
        )
