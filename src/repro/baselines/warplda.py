"""WarpLDA — the paper's CPU comparator (Chen et al., VLDB 2016).

WarpLDA reformulates CGS as Monte-Carlo EM with Metropolis–Hastings
proposals, reducing per-token cost from O(K_d) to O(1): counts are
frozen for an iteration (delayed update), and each token's topic is
refreshed by two MH phases —

- **document phase**: propose from q_d(k) ∝ θ_{d,k} + α. Drawing from
  q_d is O(1): with probability αK/(L_d + αK) pick a uniform topic,
  otherwise copy the topic of a uniformly chosen token of the same
  document. The θ terms cancel in the acceptance ratio, leaving
  ``π = [(φ_{k',v}+β)(n_k+βV)] / [(φ_{k,v}+β)(n_{k'}+βV)]``.
- **word phase**: propose from q_w(k) ∝ φ_{k,v} + β the same way
  (uniform with probability βV/(F_v + βV), else copy a random token of
  the word); the φ terms cancel, leaving
  ``π = (θ_{d,k'}+α) / (θ_{d,k}+α)``.

Both phases vectorize over all tokens because the counts are frozen.
The implementation is a faithful working sampler — it converges on real
data — plus a CPU cost model calibrated to the throughput the paper
measured for WarpLDA on its Volta-platform host (Table 4: 108.0 M
tokens/s on NYTimes, 93.5 M on PubMed).

Iteration control lives in :mod:`repro.engine`; this module implements
the :class:`~repro.engine.algorithm.Algorithm` surface for the MCEM
sampler, which buys it likelihood cadences, callbacks, and
checkpoint/resume for free.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.corpus import Corpus
from repro.core.likelihood import log_likelihood_per_token
from repro.core.model import LDAHyperParams, SparseTheta
from repro.engine.algorithm import Algorithm, IterationOutcome
from repro.engine.loop import LoopConfig, TrainingLoop
from repro.engine.results import TrainResult
from repro.engine.state import RunState
from repro.gpusim.costmodel import KernelCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.platform import CPU_E5_2690V4

__all__ = ["WarpLDA", "WarpLDAResult", "warplda_iteration_cost"]

#: MH proposal/acceptance rounds per phase per iteration.
MH_STEPS = 2

#: Historical alias — WarpLDA now returns the unified engine result.
WarpLDAResult = TrainResult


def warplda_iteration_cost(
    num_tokens: int, num_topics: int, num_words: int, avg_doc_len: float
) -> KernelCost:
    """Memory traffic of one WarpLDA iteration on a CPU.

    WarpLDA's design point is O(1) bytes per token, but the accesses are
    cache-unfriendly gathers: per MH step a token reads its own topic,
    one proposal topic (a random other token's), two φ entries, and two
    n_k entries, then writes its topic; the per-iteration count rebuild
    streams the token arrays. Calibrated against the paper's Table 4
    (WarpLDA on the Volta host: 108.0 M tokens/s on NYTimes, 93.5 M on
    PubMed), the effective traffic is ≈ 312 B/token plus a short-document
    penalty (the doc-phase loses cache reuse when documents are short):
    ``bytes/token = 312 + 6500 / avg_doc_len``.
    """
    bytes_per_token = 312.0 + 6500.0 / max(avg_doc_len, 1.0)
    bytes_total = num_tokens * bytes_per_token
    return KernelCost(
        bytes_read=0.8 * bytes_total,
        bytes_written=0.2 * bytes_total,
        flops=num_tokens * 2 * MH_STEPS * 12.0,
        num_blocks=1,
    )


class WarpLDA(Algorithm):
    """The MCEM/MH CPU trainer.

    Parameters
    ----------
    corpus: input corpus.
    hyper: hyperparameters.
    cpu_spec: host processor model (defaults to the paper's E5-2690 v4).
    seed: RNG seed.
    callbacks / registry: telemetry hooks and metrics sink (see
        ``docs/OBSERVABILITY.md``); the same protocol CuLDA speaks.
    """

    name = "warplda"

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        cpu_spec: DeviceSpec = CPU_E5_2690V4,
        seed: int = 0,
        callbacks=None,
        registry=None,
    ):
        self._telemetry_init(callbacks, registry)
        self.corpus = corpus
        self.hyper = hyper
        self.cpu_spec = cpu_spec
        self.rng = np.random.default_rng(seed)
        K = hyper.num_topics
        self.topics = self.rng.integers(0, K, size=corpus.num_tokens, dtype=np.int64)
        self._docs = corpus.token_doc.astype(np.int64)
        self._words = corpus.token_word.astype(np.int64)
        self._doc_indptr = corpus.doc_indptr
        # Word-grouped token positions (for the word-phase proposal).
        order = np.argsort(self._words, kind="stable")
        self._word_order = order
        wc = np.bincount(self._words, minlength=corpus.num_words)
        self._word_indptr = np.zeros(corpus.num_words + 1, dtype=np.int64)
        np.cumsum(wc, out=self._word_indptr[1:])
        self._rebuild_counts()

    # ------------------------------------------------------------------
    def _rebuild_counts(self) -> None:
        """MCEM delayed update: freeze counts for the next iteration."""
        K, V, D = self.hyper.num_topics, self.corpus.num_words, self.corpus.num_docs
        self.theta = np.zeros((D, K), dtype=np.int64)
        self.phi = np.zeros((K, V), dtype=np.int64)
        np.add.at(self.theta, (self._docs, self.topics), 1)
        np.add.at(self.phi, (self.topics, self._words), 1)
        self.n_k = self.phi.sum(axis=1)

    def _doc_phase(self) -> None:
        """MH with the document proposal (θ cancels in the ratio)."""
        T = self.corpus.num_tokens
        alpha, beta = self.hyper.alpha, self.hyper.beta
        K = self.hyper.num_topics
        betaV = beta * self.corpus.num_words
        L = self.corpus.doc_lengths[self._docs].astype(np.float64)
        p_uniform = alpha * K / (L + alpha * K)
        for _ in range(MH_STEPS):
            uniform = self.rng.random(T) < p_uniform
            # "Copy a random token of my document" — O(1) draw from q_d.
            pos = self._doc_indptr[self._docs] + (
                self.rng.random(T) * L
            ).astype(np.int64)
            proposal = np.where(
                uniform,
                self.rng.integers(0, K, size=T),
                self.topics[np.minimum(pos, self._doc_indptr[self._docs + 1] - 1)],
            )
            z = self.topics
            num = (self.phi[proposal, self._words] + beta) * (self.n_k[z] + betaV)
            den = (self.phi[z, self._words] + beta) * (self.n_k[proposal] + betaV)
            accept = self.rng.random(T) * den < num
            self.topics = np.where(accept, proposal, z)

    def _word_phase(self) -> None:
        """MH with the word proposal (φ cancels in the ratio)."""
        T = self.corpus.num_tokens
        alpha, beta = self.hyper.alpha, self.hyper.beta
        K = self.hyper.num_topics
        F = np.diff(self._word_indptr)[self._words].astype(np.float64)
        p_uniform = beta * self.corpus.num_words / (F + beta * self.corpus.num_words)
        for _ in range(MH_STEPS):
            uniform = self.rng.random(T) < p_uniform
            pos = self._word_indptr[self._words] + (
                self.rng.random(T) * F
            ).astype(np.int64)
            pos = np.minimum(pos, self._word_indptr[self._words + 1] - 1)
            proposal = np.where(
                uniform,
                self.rng.integers(0, K, size=T),
                self.topics[self._word_order[pos]],
            )
            z = self.topics
            num = self.theta[self._docs, proposal] + alpha
            den = self.theta[self._docs, z] + alpha
            accept = self.rng.random(T) * den < num
            self.topics = np.where(accept, proposal, z)

    # ------------------------------------------------------------------
    def train(
        self,
        iterations: int = 100,
        likelihood_every: int = 0,
        callbacks=None,
        *,
        save_every: int = 0,
        checkpoint_path=None,
        resume=None,
        vocabulary=None,
    ) -> TrainResult:
        """Run MCEM iterations; returns simulated-CPU-timed results."""
        loop = TrainingLoop(
            self,
            LoopConfig(
                iterations=iterations,
                likelihood_every=likelihood_every,
                save_every=save_every,
                checkpoint_path=checkpoint_path,
                vocabulary=vocabulary,
            ),
            callbacks=callbacks,
            resume=resume,
        )
        return loop.run()

    # ------------------------------------------------------------------
    # Algorithm strategy surface
    # ------------------------------------------------------------------
    def init_state(self, resume: RunState | None = None) -> RunState:
        from repro.gpusim.costmodel import CostModel

        cost = warplda_iteration_cost(
            self.corpus.num_tokens,
            self.hyper.num_topics,
            self.corpus.num_words,
            self.corpus.num_tokens / max(1, self.corpus.num_docs),
        )
        self._dt = CostModel().kernel_seconds(self.cpu_spec, cost)
        if resume is not None:
            topics = resume.topics[0]
            if topics.size != self.corpus.num_tokens:
                raise ValueError("checkpoint does not match this corpus")
            self.topics = topics.astype(np.int64, copy=False)
            self.rng = resume.rngs[0]
            self._rebuild_counts()
        state = resume if resume is not None else RunState(algo=self.name)
        self.capture_state(state)
        return state

    def start_event(self, state: RunState) -> dict:
        return {"machine": self.cpu_spec.name}

    def run_iteration(self, state: RunState) -> IterationOutcome:
        self._doc_phase()
        self._word_phase()
        self._rebuild_counts()
        return IterationOutcome(
            sim_seconds=self._dt,
            tokens_per_sec=self.corpus.num_tokens / self._dt,
        )

    def log_likelihood(self, state: RunState) -> float:
        return self.log_likelihood_per_token()

    def capture_state(self, state: RunState) -> None:
        state.phi = self.phi
        state.topics = [self.topics]
        state.thetas = None
        state.rngs = [self.rng]

    def finalize(self, state: RunState, wall_seconds: float) -> TrainResult:
        return TrainResult(
            corpus_name=self.corpus.name,
            cpu_name=self.cpu_spec.name,
            num_tokens=self.corpus.num_tokens,
            iterations=list(state.history),
            total_sim_seconds=state.sim_seconds,
            wall_seconds=wall_seconds,
            phi=self.phi.astype(np.int32),
            theta=SparseTheta.from_dense(self.theta, self.hyper.num_topics),
            hyper=self.hyper,
            algo=self.name,
        )

    # ------------------------------------------------------------------
    def log_likelihood_per_token(self) -> float:
        theta_csr = SparseTheta.from_dense(self.theta, self.hyper.num_topics)
        return log_likelihood_per_token(
            theta_csr, self.phi, self.n_k, self.corpus.doc_lengths, self.hyper
        )
