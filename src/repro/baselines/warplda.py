"""WarpLDA — the paper's CPU comparator (Chen et al., VLDB 2016).

WarpLDA reformulates CGS as Monte-Carlo EM with Metropolis–Hastings
proposals, reducing per-token cost from O(K_d) to O(1): counts are
frozen for an iteration (delayed update), and each token's topic is
refreshed by two MH phases —

- **document phase**: propose from q_d(k) ∝ θ_{d,k} + α. Drawing from
  q_d is O(1): with probability αK/(L_d + αK) pick a uniform topic,
  otherwise copy the topic of a uniformly chosen token of the same
  document. The θ terms cancel in the acceptance ratio, leaving
  ``π = [(φ_{k',v}+β)(n_k+βV)] / [(φ_{k,v}+β)(n_{k'}+βV)]``.
- **word phase**: propose from q_w(k) ∝ φ_{k,v} + β the same way
  (uniform with probability βV/(F_v + βV), else copy a random token of
  the word); the φ terms cancel, leaving
  ``π = (θ_{d,k'}+α) / (θ_{d,k}+α)``.

Both phases vectorize over all tokens because the counts are frozen.
The implementation is a faithful working sampler — it converges on real
data — plus a CPU cost model calibrated to the throughput the paper
measured for WarpLDA on its Volta-platform host (Table 4: 108.0 M
tokens/s on NYTimes, 93.5 M on PubMed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.core.likelihood import log_likelihood_per_token
from repro.core.model import LDAHyperParams, SparseTheta
from repro.gpusim.costmodel import KernelCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.platform import CPU_E5_2690V4
from repro.telemetry.mixin import TelemetryMixin
from repro.telemetry.spans import span

__all__ = ["WarpLDA", "WarpLDAResult", "warplda_iteration_cost"]

#: MH proposal/acceptance rounds per phase per iteration.
MH_STEPS = 2


def warplda_iteration_cost(
    num_tokens: int, num_topics: int, num_words: int, avg_doc_len: float
) -> KernelCost:
    """Memory traffic of one WarpLDA iteration on a CPU.

    WarpLDA's design point is O(1) bytes per token, but the accesses are
    cache-unfriendly gathers: per MH step a token reads its own topic,
    one proposal topic (a random other token's), two φ entries, and two
    n_k entries, then writes its topic; the per-iteration count rebuild
    streams the token arrays. Calibrated against the paper's Table 4
    (WarpLDA on the Volta host: 108.0 M tokens/s on NYTimes, 93.5 M on
    PubMed), the effective traffic is ≈ 312 B/token plus a short-document
    penalty (the doc-phase loses cache reuse when documents are short):
    ``bytes/token = 312 + 6500 / avg_doc_len``.
    """
    bytes_per_token = 312.0 + 6500.0 / max(avg_doc_len, 1.0)
    bytes_total = num_tokens * bytes_per_token
    return KernelCost(
        bytes_read=0.8 * bytes_total,
        bytes_written=0.2 * bytes_total,
        flops=num_tokens * 2 * MH_STEPS * 12.0,
        num_blocks=1,
    )


@dataclass(frozen=True)
class WarpLDAIteration:
    iteration: int
    sim_seconds: float
    tokens_per_sec: float
    log_likelihood_per_token: float | None


@dataclass
class WarpLDAResult:
    corpus_name: str
    cpu_name: str
    iterations: list[WarpLDAIteration]
    total_sim_seconds: float
    wall_seconds: float
    phi: np.ndarray
    hyper: LDAHyperParams

    @property
    def avg_tokens_per_sec(self) -> float:
        iters = len(self.iterations)
        if self.total_sim_seconds == 0:
            return 0.0
        tokens = self.iterations[0].tokens_per_sec * self.iterations[0].sim_seconds
        return tokens * iters / self.total_sim_seconds

    @property
    def final_log_likelihood(self) -> float | None:
        for it in reversed(self.iterations):
            if it.log_likelihood_per_token is not None:
                return it.log_likelihood_per_token
        return None


class WarpLDA(TelemetryMixin):
    """The MCEM/MH CPU trainer.

    Parameters
    ----------
    corpus: input corpus.
    hyper: hyperparameters.
    cpu_spec: host processor model (defaults to the paper's E5-2690 v4).
    seed: RNG seed.
    callbacks / registry: telemetry hooks and metrics sink (see
        ``docs/OBSERVABILITY.md``); the same protocol CuLDA speaks.
    """

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        cpu_spec: DeviceSpec = CPU_E5_2690V4,
        seed: int = 0,
        callbacks=None,
        registry=None,
    ):
        self._telemetry_init(callbacks, registry)
        self.corpus = corpus
        self.hyper = hyper
        self.cpu_spec = cpu_spec
        self.rng = np.random.default_rng(seed)
        K = hyper.num_topics
        self.topics = self.rng.integers(0, K, size=corpus.num_tokens, dtype=np.int64)
        self._docs = corpus.token_doc.astype(np.int64)
        self._words = corpus.token_word.astype(np.int64)
        self._doc_indptr = corpus.doc_indptr
        # Word-grouped token positions (for the word-phase proposal).
        order = np.argsort(self._words, kind="stable")
        self._word_order = order
        wc = np.bincount(self._words, minlength=corpus.num_words)
        self._word_indptr = np.zeros(corpus.num_words + 1, dtype=np.int64)
        np.cumsum(wc, out=self._word_indptr[1:])
        self._rebuild_counts()

    # ------------------------------------------------------------------
    def _rebuild_counts(self) -> None:
        """MCEM delayed update: freeze counts for the next iteration."""
        K, V, D = self.hyper.num_topics, self.corpus.num_words, self.corpus.num_docs
        self.theta = np.zeros((D, K), dtype=np.int64)
        self.phi = np.zeros((K, V), dtype=np.int64)
        np.add.at(self.theta, (self._docs, self.topics), 1)
        np.add.at(self.phi, (self.topics, self._words), 1)
        self.n_k = self.phi.sum(axis=1)

    def _doc_phase(self) -> None:
        """MH with the document proposal (θ cancels in the ratio)."""
        T = self.corpus.num_tokens
        alpha, beta = self.hyper.alpha, self.hyper.beta
        K = self.hyper.num_topics
        betaV = beta * self.corpus.num_words
        L = self.corpus.doc_lengths[self._docs].astype(np.float64)
        p_uniform = alpha * K / (L + alpha * K)
        for _ in range(MH_STEPS):
            uniform = self.rng.random(T) < p_uniform
            # "Copy a random token of my document" — O(1) draw from q_d.
            pos = self._doc_indptr[self._docs] + (
                self.rng.random(T) * L
            ).astype(np.int64)
            proposal = np.where(
                uniform,
                self.rng.integers(0, K, size=T),
                self.topics[np.minimum(pos, self._doc_indptr[self._docs + 1] - 1)],
            )
            z = self.topics
            num = (self.phi[proposal, self._words] + beta) * (self.n_k[z] + betaV)
            den = (self.phi[z, self._words] + beta) * (self.n_k[proposal] + betaV)
            accept = self.rng.random(T) * den < num
            self.topics = np.where(accept, proposal, z)

    def _word_phase(self) -> None:
        """MH with the word proposal (φ cancels in the ratio)."""
        T = self.corpus.num_tokens
        alpha, beta = self.hyper.alpha, self.hyper.beta
        K = self.hyper.num_topics
        F = np.diff(self._word_indptr)[self._words].astype(np.float64)
        p_uniform = beta * self.corpus.num_words / (F + beta * self.corpus.num_words)
        for _ in range(MH_STEPS):
            uniform = self.rng.random(T) < p_uniform
            pos = self._word_indptr[self._words] + (
                self.rng.random(T) * F
            ).astype(np.int64)
            pos = np.minimum(pos, self._word_indptr[self._words + 1] - 1)
            proposal = np.where(
                uniform,
                self.rng.integers(0, K, size=T),
                self.topics[self._word_order[pos]],
            )
            z = self.topics
            num = self.theta[self._docs, proposal] + alpha
            den = self.theta[self._docs, z] + alpha
            accept = self.rng.random(T) * den < num
            self.topics = np.where(accept, proposal, z)

    # ------------------------------------------------------------------
    def train(
        self, iterations: int = 100, likelihood_every: int = 0, callbacks=None
    ) -> WarpLDAResult:
        """Run MCEM iterations; returns simulated-CPU-timed results."""
        with self._telemetry_run(callbacks):
            return self._train_impl(iterations, likelihood_every)

    def _train_impl(self, iterations: int, likelihood_every: int) -> WarpLDAResult:
        from repro.gpusim.costmodel import CostModel

        cm = CostModel()
        cost = warplda_iteration_cost(
            self.corpus.num_tokens,
            self.hyper.num_topics,
            self.corpus.num_words,
            self.corpus.num_tokens / max(1, self.corpus.num_docs),
        )
        dt = cm.kernel_seconds(self.cpu_spec, cost)
        self._fire(
            "on_train_start",
            {
                "corpus": self.corpus.name,
                "machine": self.cpu_spec.name,
                "num_tokens": self.corpus.num_tokens,
                "num_topics": self.hyper.num_topics,
                "iterations_planned": iterations,
            },
        )
        history: list[WarpLDAIteration] = []
        sim_t = 0.0
        with span("train:warplda") as sp:
            for it in range(iterations):
                self._doc_phase()
                self._word_phase()
                self._rebuild_counts()
                sim_t += dt
                ll = None
                if (likelihood_every and (it + 1) % likelihood_every == 0) or (
                    it == iterations - 1
                ):
                    ll = self.log_likelihood_per_token()
                history.append(
                    WarpLDAIteration(
                        it, dt, self.corpus.num_tokens / dt, ll
                    )
                )
                self._fire(
                    "on_iteration_end",
                    {
                        "iteration": it,
                        "sim_seconds": dt,
                        "tokens_per_sec": self.corpus.num_tokens / dt,
                        "log_likelihood_per_token": ll,
                    },
                )
        result = WarpLDAResult(
            corpus_name=self.corpus.name,
            cpu_name=self.cpu_spec.name,
            iterations=history,
            total_sim_seconds=sim_t,
            wall_seconds=sp.duration,
            phi=self.phi.astype(np.int32),
            hyper=self.hyper,
        )
        self._fire(
            "on_train_end",
            {
                "iterations": len(history),
                "total_sim_seconds": sim_t,
                "wall_seconds": result.wall_seconds,
                "avg_tokens_per_sec": result.avg_tokens_per_sec,
                "result": result,
            },
        )
        return result

    def log_likelihood_per_token(self) -> float:
        D, K = self.theta.shape
        rows, cols = np.nonzero(self.theta)
        indptr = np.zeros(D + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        theta_csr = SparseTheta(
            indptr, cols.astype(np.int32), self.theta[rows, cols].astype(np.int32), K
        )
        return log_likelihood_per_token(
            theta_csr, self.phi, self.n_k, self.corpus.doc_lengths, self.hyper
        )
