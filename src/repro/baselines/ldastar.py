"""LDA* — the distributed comparator (Yu et al., VLDB 2017).

LDA* trains LDA on a CPU cluster with a sharded parameter server over
10 Gb/s Ethernet. The paper's argument (§3, §7.2): per-iteration model
synchronization makes the network the bottleneck, so a single multi-GPU
node with PCIe/NVLink beats the cluster.

This implementation is a working system on the simulated substrate:

- documents are token-balanced across workers (same partitioner as
  CuLDA);
- each iteration every worker pulls the φ columns for its own words
  from the sharded server, samples its partition with the same
  sparsity-aware CGS used by the GPU kernels (run at CPU speed), and
  pushes its count deltas;
- the iteration clock is the max over workers of
  pull → compute → push, with all messages contending on the per-node
  Ethernet links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import ClusterNetwork
from repro.cluster.paramserver import ShardedParameterServer
from repro.corpus.corpus import Corpus, TokenChunk
from repro.core.kernels import (
    KernelConfig,
    accumulate_phi,
    gibbs_sample_chunk,
    recount_theta,
    sampling_cost,
    sampling_launch_plan,
    SamplingStats,
)
from repro.core.likelihood import _doc_log_likelihood, word_log_likelihood
from repro.core.model import LDAHyperParams, SparseTheta
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec
from repro.gpusim.platform import CPU_E5_2690V4
from repro.sched.partition import partition_by_tokens
from repro.telemetry.mixin import TelemetryMixin
from repro.telemetry.spans import span

__all__ = ["LDAStar", "LDAStarResult"]


@dataclass(frozen=True)
class LDAStarIteration:
    iteration: int
    sim_seconds: float
    tokens_per_sec: float
    network_seconds: float
    compute_seconds: float
    log_likelihood_per_token: float | None


@dataclass
class LDAStarResult:
    corpus_name: str
    num_workers: int
    iterations: list[LDAStarIteration]
    total_sim_seconds: float
    wall_seconds: float
    network_bytes: float
    phi: np.ndarray
    hyper: LDAHyperParams

    @property
    def avg_tokens_per_sec(self) -> float:
        if self.total_sim_seconds == 0 or not self.iterations:
            return 0.0
        T = self.iterations[0].tokens_per_sec * self.iterations[0].sim_seconds
        return T * len(self.iterations) / self.total_sim_seconds

    @property
    def final_log_likelihood(self) -> float | None:
        for it in reversed(self.iterations):
            if it.log_likelihood_per_token is not None:
                return it.log_likelihood_per_token
        return None


class _Worker:
    """One cluster node's partition and sampler state."""

    def __init__(
        self,
        worker_id: int,
        chunk: TokenChunk,
        hyper: LDAHyperParams,
        rng: np.random.Generator,
    ):
        self.worker_id = worker_id
        self.chunk = chunk
        self.rng = rng
        self.topics = rng.integers(
            0, hyper.num_topics, size=chunk.num_tokens
        ).astype(np.int32)
        self.theta = SparseTheta.from_assignments(
            chunk, self.topics, hyper.num_topics, compressed=False
        )
        self.words = chunk.words_present().astype(np.int64)
        self.local_counts = accumulate_phi(chunk, self.topics, hyper.num_topics)


class LDAStar(TelemetryMixin):
    """The parameter-server distributed LDA trainer.

    Parameters
    ----------
    corpus: input corpus.
    hyper: hyperparameters.
    num_workers: cluster size (the paper's PubMed comparison uses 20).
    cpu_spec: per-node processor model.
    link_gbps: per-node network bandwidth (default 10 GbE = 1.25 GB/s).
    staleness: bounded staleness — workers synchronize with the server
        only every ``staleness + 1`` iterations, sampling from their
        (self-updated) cached φ in between. 0 = fully synchronous (the
        default, the paper's per-iteration sync); larger values trade
        statistical freshness for network traffic, the knob
        parameter-server systems actually turn.
    seed: RNG seed.
    """

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        num_workers: int = 20,
        cpu_spec: DeviceSpec = CPU_E5_2690V4,
        link_gbps: float = 1.25,
        staleness: int = 0,
        seed: int = 0,
        callbacks=None,
        registry=None,
    ):
        self._telemetry_init(callbacks, registry)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.staleness = staleness
        self.corpus = corpus
        self.hyper = hyper
        self.cpu_spec = cpu_spec
        self.network = ClusterNetwork(num_workers, link_gbps)
        master = np.random.default_rng(seed)
        ranges = partition_by_tokens(corpus, num_workers)
        rngs = master.spawn(num_workers)
        self.workers = [
            _Worker(
                i,
                TokenChunk.from_corpus_range(corpus, lo, hi),
                hyper,
                rngs[i],
            )
            for i, (lo, hi) in enumerate(ranges)
        ]
        phi0 = np.zeros((hyper.num_topics, corpus.num_words), dtype=np.int64)
        for w in self.workers:
            phi0 += w.local_counts
        self.server = ShardedParameterServer(phi0, num_workers, self.network)
        self._config = KernelConfig(compressed=False)
        self._cost_model = CostModel()
        # Per-worker stale φ caches (populated at each sync round).
        self._phi_cache: dict[int, np.ndarray] = {}
        self._pending_delta: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _compute_seconds(self, worker: _Worker) -> float:
        """CPU roofline time for one worker's sampling pass."""
        ch = worker.chunk
        row_len = np.diff(worker.theta.indptr)
        kd_sum = int(row_len[ch.token_doc].sum())
        nb, ns = sampling_launch_plan(ch.word_indptr)
        stats = SamplingStats(ch.num_tokens, kd_sum, 0, ns, nb)
        cost = sampling_cost(stats, self.hyper, ch.num_words, self._config)
        # CPUs have no shared-memory constraint; drop the launch geometry.
        from repro.gpusim.costmodel import KernelCost

        cost = KernelCost(
            bytes_read=cost.bytes_read,
            bytes_written=cost.bytes_written,
            flops=cost.flops,
            num_blocks=1,
        )
        return self._cost_model.kernel_seconds(self.cpu_spec, cost)

    def train(
        self, iterations: int = 50, likelihood_every: int = 0, callbacks=None
    ) -> LDAStarResult:
        with self._telemetry_run(callbacks):
            return self._train_impl(iterations, likelihood_every)

    def _train_impl(self, iterations: int, likelihood_every: int) -> LDAStarResult:
        history: list[LDAStarIteration] = []
        clock = 0.0
        K = self.hyper.num_topics
        self._fire(
            "on_train_start",
            {
                "corpus": self.corpus.name,
                "machine": f"{len(self.workers)}x {self.cpu_spec.name}",
                "num_tokens": self.corpus.num_tokens,
                "num_topics": K,
                "iterations_planned": iterations,
            },
        )
        with span("train:ldastar") as sp:
            for it in range(iterations):
                prev_clock = clock
                clock, net_time, cmp_time = self._iterate_once(it, clock)
                dt = clock - prev_clock
                ll = None
                if (likelihood_every and (it + 1) % likelihood_every == 0) or (
                    it == iterations - 1
                ):
                    ll = self.log_likelihood_per_token()
                tps = self.corpus.num_tokens / dt if dt > 0 else 0.0
                history.append(
                    LDAStarIteration(it, dt, tps, net_time, cmp_time, ll)
                )
                self._fire(
                    "on_iteration_end",
                    {
                        "iteration": it,
                        "sim_seconds": dt,
                        "tokens_per_sec": tps,
                        "network_seconds": net_time,
                        "compute_seconds": cmp_time,
                        "log_likelihood_per_token": ll,
                    },
                )
        result = LDAStarResult(
            corpus_name=self.corpus.name,
            num_workers=len(self.workers),
            iterations=history,
            total_sim_seconds=clock,
            wall_seconds=sp.duration,
            network_bytes=self.network.total_bytes(),
            phi=self.server.phi.astype(np.int32),
            hyper=self.hyper,
        )
        self._fire(
            "on_train_end",
            {
                "iterations": len(history),
                "total_sim_seconds": clock,
                "wall_seconds": result.wall_seconds,
                "avg_tokens_per_sec": result.avg_tokens_per_sec,
                "network_bytes": result.network_bytes,
                "result": result,
            },
        )
        return result

    def _iterate_once(self, it: int, clock: float) -> tuple[float, float, float]:
        """One synchronous parameter-server round; returns the advanced
        cluster clock and the round's (network, compute) critical paths."""
        K, V = self.hyper.num_topics, self.corpus.num_words
        worker_done = []
        net_time = 0.0
        cmp_time = 0.0
        sync_round = (it % (self.staleness + 1)) == 0
        n_k = self.server.n_k
        for w in self.workers:
            if w.worker_id not in self._pending_delta:
                self._pending_delta[w.worker_id] = np.zeros(
                    (K, w.words.size), dtype=np.int64
                )
            if sync_round or w.worker_id not in self._phi_cache:
                phi_slice, t_pull = self.server.pull(
                    w.worker_id, w.words, clock
                )
                # Worker-local φ view (zeros for absent words — its
                # tokens never touch those columns). The pull happens
                # before this round's push, so the view excludes the
                # worker's still-pending deltas; re-apply them to keep
                # its own updates visible (read-your-writes).
                phi_local = np.zeros((K, V), dtype=np.int64)
                phi_local[:, w.words] = phi_slice
                phi_local[:, w.words] += self._pending_delta[w.worker_id]
                self._phi_cache[w.worker_id] = phi_local
            else:
                phi_local = self._phi_cache[w.worker_id]
                t_pull = clock
            new_topics, _ = gibbs_sample_chunk(
                w.chunk, w.topics, w.theta, phi_local, n_k,
                self.hyper, w.rng, self._config,
            )
            w.topics = new_topics
            w.theta = recount_theta(w.chunk, new_topics, K, compressed=False)
            new_counts = accumulate_phi(w.chunk, new_topics, K)
            delta = (
                new_counts.astype(np.int64) - w.local_counts.astype(np.int64)
            )[:, w.words]
            w.local_counts = new_counts
            # The worker always sees its own updates immediately.
            phi_local[:, w.words] += delta
            self._pending_delta[w.worker_id] += delta
            t_cmp = self._compute_seconds(w)
            if sync_round:
                t_push = self.server.push(
                    w.worker_id, w.words,
                    self._pending_delta[w.worker_id],
                    t_pull + t_cmp,
                )
                self._pending_delta[w.worker_id][...] = 0
            else:
                t_push = t_pull + t_cmp
            worker_done.append(t_push)
            net_time = max(net_time, (t_pull - clock) + (t_push - t_pull - t_cmp))
            cmp_time = max(cmp_time, t_cmp)
        return max(worker_done), net_time, cmp_time

    def log_likelihood_per_token(self) -> float:
        phi = self.server.phi
        ll = word_log_likelihood(
            phi, phi.sum(axis=1), self.hyper, self.corpus.num_words
        )
        for w in self.workers:
            ll += _doc_log_likelihood(w.theta, w.chunk.doc_lengths, self.hyper)
        return ll / self.corpus.num_tokens
