"""LDA* — the distributed comparator (Yu et al., VLDB 2017).

LDA* trains LDA on a CPU cluster with a sharded parameter server over
10 Gb/s Ethernet. The paper's argument (§3, §7.2): per-iteration model
synchronization makes the network the bottleneck, so a single multi-GPU
node with PCIe/NVLink beats the cluster.

This implementation is a working system on the simulated substrate:

- documents are token-balanced across workers (same partitioner as
  CuLDA);
- each iteration every worker pulls the φ columns for its own words
  from the sharded server, samples its partition with the same
  sparsity-aware CGS used by the GPU kernels (run at CPU speed), and
  pushes its count deltas;
- the iteration clock is the max over workers of
  pull → compute → push, with all messages contending on the per-node
  Ethernet links.

Iteration control lives in :mod:`repro.engine`; checkpoints carry each
worker's assignments/θ/RNG plus the parameter-server φ, the pending
push deltas and stale φ caches, so bounded-staleness runs resume
bit-identically mid-window.

Fault domain (docs/ROBUSTNESS.md §8). The cluster is LDA*'s unit of
failure: a heartbeat :class:`~repro.cluster.membership.MembershipMonitor`
watches every node, Ethernet transfers retry transient faults under a
:class:`~repro.engine.recovery.ClusterRecoveryPolicy`, pulls/pushes
against an unreachable shard primary fail over to its chained replica,
and a worker blocked on a silent peer stalls until the detector rules —
raising :class:`~repro.gpusim.errors.NodeLost` on a dead verdict. Under
``--recovery elastic`` the engine then calls
:meth:`LDAStar.handle_device_loss`: the dead node's logical workers
migrate *intact* (chunk, assignments, θ, RNG) to the token-lightest
survivors, φ is recounted exactly from the assignments, and the server
re-shards over the survivors — so the recovered run's φ is
bit-identical to the fault-free run's, not merely statistically close.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cluster.membership import HeartbeatConfig, MembershipMonitor
from repro.cluster.network import ClusterNetwork
from repro.cluster.paramserver import ShardedParameterServer
from repro.corpus.corpus import Corpus, TokenChunk
from repro.core.kernels import (
    KernelConfig,
    accumulate_phi,
    gibbs_sample_chunk,
    recount_theta,
    sampling_cost,
    sampling_launch_plan,
    SamplingStats,
)
from repro.core.likelihood import _doc_log_likelihood, word_log_likelihood
from repro.core.model import LDAHyperParams, SparseTheta
from repro.engine.algorithm import Algorithm, IterationOutcome
from repro.engine.loop import LoopConfig, TrainingLoop
from repro.engine.recovery import ClusterRecoveryPolicy, RecoveryPolicy
from repro.engine.results import TrainResult
from repro.engine.state import RunState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.errors import NodeLost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.platform import CPU_E5_2690V4
from repro.sched.partition import partition_by_tokens
from repro.telemetry.context import emit_counter

__all__ = ["LDAStar", "LDAStarResult"]

#: Historical alias — LDA* now returns the unified engine result.
LDAStarResult = TrainResult


class _Worker:
    """One cluster node's partition and sampler state."""

    def __init__(
        self,
        worker_id: int,
        chunk: TokenChunk,
        hyper: LDAHyperParams,
        rng: np.random.Generator,
    ):
        self.worker_id = worker_id
        self.chunk = chunk
        self.rng = rng
        self.topics = rng.integers(
            0, hyper.num_topics, size=chunk.num_tokens
        ).astype(np.int32)
        self.theta = SparseTheta.from_assignments(
            chunk, self.topics, hyper.num_topics, compressed=False
        )
        self.words = chunk.words_present().astype(np.int64)
        self.local_counts = accumulate_phi(chunk, self.topics, hyper.num_topics)


class LDAStar(Algorithm):
    """The parameter-server distributed LDA trainer.

    Parameters
    ----------
    corpus: input corpus.
    hyper: hyperparameters.
    num_workers: cluster size (the paper's PubMed comparison uses 20).
    cpu_spec: per-node processor model.
    link_gbps: per-node network bandwidth (default 10 GbE = 1.25 GB/s).
    staleness: bounded staleness — workers synchronize with the server
        only every ``staleness + 1`` iterations, sampling from their
        (self-updated) cached φ in between. 0 = fully synchronous (the
        default, the paper's per-iteration sync); larger values trade
        statistical freshness for network traffic, the knob
        parameter-server systems actually turn.
    seed: RNG seed.
    """

    name = "ldastar"

    def __init__(
        self,
        corpus: Corpus,
        hyper: LDAHyperParams,
        num_workers: int = 20,
        cpu_spec: DeviceSpec = CPU_E5_2690V4,
        link_gbps: float = 1.25,
        staleness: int = 0,
        seed: int = 0,
        callbacks=None,
        registry=None,
    ):
        self._telemetry_init(callbacks, registry)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.staleness = staleness
        self.corpus = corpus
        self.hyper = hyper
        self.cpu_spec = cpu_spec
        self.network = ClusterNetwork(num_workers, link_gbps)
        master = np.random.default_rng(seed)
        ranges = partition_by_tokens(corpus, num_workers)
        rngs = master.spawn(num_workers)
        self.workers = [
            _Worker(
                i,
                TokenChunk.from_corpus_range(corpus, lo, hi),
                hyper,
                rngs[i],
            )
            for i, (lo, hi) in enumerate(ranges)
        ]
        phi0 = np.zeros((hyper.num_topics, corpus.num_words), dtype=np.int64)
        for w in self.workers:
            phi0 += w.local_counts
        self.server = ShardedParameterServer(phi0, num_workers, self.network)
        #: Which cluster node hosts each logical worker. Starts as the
        #: identity map; elastic recovery re-homes a dead node's workers
        #: onto survivors without touching their partitions.
        self._node_of = {i: i for i in range(num_workers)}
        self.membership = MembershipMonitor(self.network)
        self._config = KernelConfig(compressed=False)
        self._cost_model = CostModel()
        # Per-worker stale φ caches (populated at each sync round).
        self._phi_cache: dict[int, np.ndarray] = {}
        self._pending_delta: dict[int, np.ndarray] = {}
        self._clock = 0.0
        #: Clock up to which sim_seconds has been reported. Recovery
        #: stalls (failure-detector leases, re-shard traffic) advance
        #: _clock inside aborted iterations; the gap is charged to the
        #: next completed iteration so recovery time shows up in
        #: sim_seconds instead of silently vanishing.
        self._charged = 0.0
        #: Network bytes accumulated before this process's ClusterNetwork
        #: existed (carried over a checkpoint/resume boundary).
        self._net_base = 0.0

    # ------------------------------------------------------------------
    def _compute_seconds(self, worker: _Worker) -> float:
        """CPU roofline time for one worker's sampling pass."""
        ch = worker.chunk
        row_len = np.diff(worker.theta.indptr)
        kd_sum = int(row_len[ch.token_doc].sum())
        nb, ns = sampling_launch_plan(ch.word_indptr)
        stats = SamplingStats(ch.num_tokens, kd_sum, 0, ns, nb)
        cost = sampling_cost(stats, self.hyper, ch.num_words, self._config)
        # CPUs have no shared-memory constraint; drop the launch geometry.
        from repro.gpusim.costmodel import KernelCost

        cost = KernelCost(
            bytes_read=cost.bytes_read,
            bytes_written=cost.bytes_written,
            flops=cost.flops,
            num_blocks=1,
        )
        return self._cost_model.kernel_seconds(self.cpu_spec, cost)

    def train(
        self,
        iterations: int = 50,
        likelihood_every: int = 0,
        callbacks=None,
        *,
        save_every: int = 0,
        checkpoint_path=None,
        resume=None,
        vocabulary=None,
        recovery: str | RecoveryPolicy | None = None,
        fault_plan=None,
    ) -> TrainResult:
        if isinstance(recovery, str):
            recovery = ClusterRecoveryPolicy(mode=recovery)
        if isinstance(fault_plan, (str, Path)):
            from repro.faults.plan import FaultPlan

            fault_plan = FaultPlan.from_json(fault_plan)
        loop = TrainingLoop(
            self,
            LoopConfig(
                iterations=iterations,
                likelihood_every=likelihood_every,
                save_every=save_every,
                checkpoint_path=checkpoint_path,
                vocabulary=vocabulary,
                recovery=recovery,
                fault_plan=fault_plan,
            ),
            callbacks=callbacks,
            resume=resume,
        )
        return loop.run()

    # ------------------------------------------------------------------
    # Algorithm strategy surface
    # ------------------------------------------------------------------
    def init_state(self, resume: RunState | None = None) -> RunState:
        self._clock = 0.0
        self._charged = 0.0
        # The loop sets recovery_policy before init_state, so the
        # failure detector picks up the policy's heartbeat thresholds.
        policy = getattr(self, "recovery_policy", None)
        heartbeat: HeartbeatConfig | None = None
        if policy is not None and hasattr(policy, "heartbeat_config"):
            heartbeat = policy.heartbeat_config()
        self.membership = MembershipMonitor(self.network, heartbeat)
        if resume is not None:
            self._restore(resume)
        state = resume if resume is not None else RunState(algo=self.name)
        self.capture_state(state)
        return state

    def _restore(self, state: RunState) -> None:
        if len(state.topics) != len(self.workers) or state.thetas is None:
            raise ValueError(
                f"checkpoint has {len(state.topics)} worker(s), this run "
                f"has {len(self.workers)}; match num_workers to resume"
            )
        K = self.hyper.num_topics
        for i, w in enumerate(self.workers):
            topics = state.topics[i]
            if topics.size != w.chunk.num_tokens:
                raise ValueError(
                    "checkpoint partition sizes do not match this corpus"
                )
            w.topics = topics.astype(np.int32, copy=False)
            w.theta = state.thetas[i]
            w.rng = state.rngs[i]
            w.local_counts = accumulate_phi(w.chunk, w.topics, K)
        hosting = state.extras.get("node_hosting")
        if hosting is not None:
            self._node_of = {i: int(n) for i, n in enumerate(hosting)}
        else:
            self._node_of = {i: i for i in range(len(self.workers))}
        dead = state.extras.get("dead_nodes")
        if dead is not None and len(dead):
            # Re-bury nodes the checkpointed run had already lost: fail
            # them on the (possibly fresh) network, tell the detector,
            # and re-home φ shards over the survivors so placement
            # matches the run that wrote the checkpoint.
            for n in dead:
                n = int(n)
                if self.network.node_alive(n):
                    self.network.fail_node(n)
                self.membership.force_dead(n, self._clock)
            self.server.rehome([
                n for n in range(self.network.num_nodes)
                if self.network.node_up(n)
            ])
        self.server.phi = state.phi.astype(np.int64).copy()
        self._phi_cache = {}
        self._pending_delta = {}
        for i in range(len(self.workers)):
            pd = state.extras.get(f"pending_delta_{i}")
            if pd is not None:
                self._pending_delta[i] = pd.astype(np.int64).copy()
            pc = state.extras.get(f"phi_cache_{i}")
            if pc is not None:
                self._phi_cache[i] = pc.astype(np.int64).copy()
        nb = state.extras.get("network_bytes")
        self._net_base = float(nb[0]) if nb is not None else 0.0

    def start_event(self, state: RunState) -> dict:
        return {"machine": f"{len(self.workers)}x {self.cpu_spec.name}"}

    def run_iteration(self, state: RunState) -> IterationOutcome:
        prev = self._charged
        self._clock, net_time, cmp_time = self._iterate_once(
            state.iteration, self._clock
        )
        self._charged = self._clock
        dt = self._clock - prev
        tps = self.corpus.num_tokens / dt if dt > 0 else 0.0
        extras = {"network_seconds": net_time, "compute_seconds": cmp_time}
        return IterationOutcome(
            sim_seconds=dt,
            tokens_per_sec=tps,
            stats=dict(extras),
            event=dict(extras),
        )

    def log_likelihood(self, state: RunState) -> float:
        return self.log_likelihood_per_token()

    def capture_state(self, state: RunState) -> None:
        state.phi = self.server.phi.copy()
        state.topics = [w.topics for w in self.workers]
        state.thetas = [w.theta for w in self.workers]
        state.rngs = [w.rng for w in self.workers]
        extras = {
            "network_bytes": np.array(
                [self._net_base + self.network.total_bytes()]
            ),
            "node_hosting": np.array(
                [self._node_of[i] for i in range(len(self.workers))],
                dtype=np.int64,
            ),
            "dead_nodes": np.array(self.membership.dead_nodes, dtype=np.int64),
        }
        for i, delta in self._pending_delta.items():
            extras[f"pending_delta_{i}"] = delta
        for i, cache in self._phi_cache.items():
            extras[f"phi_cache_{i}"] = cache
        state.extras = extras

    def finalize(self, state: RunState, wall_seconds: float) -> TrainResult:
        return TrainResult(
            corpus_name=self.corpus.name,
            num_tokens=self.corpus.num_tokens,
            iterations=list(state.history),
            total_sim_seconds=state.sim_seconds,
            wall_seconds=wall_seconds,
            phi=self.server.phi.astype(np.int32),
            theta=SparseTheta.concatenate(
                [w.theta for w in self.workers], self.hyper.num_topics
            ),
            hyper=self.hyper,
            algo=self.name,
            cpu_name=self.cpu_spec.name,
            num_workers=len(self.workers),
            network_bytes=self._net_base + self.network.total_bytes(),
        )

    def end_event(self, state: RunState, result: TrainResult) -> dict:
        return {"network_bytes": result.network_bytes}

    # ------------------------------------------------------------------
    # Recovery surface (driven by the engine loop)
    # ------------------------------------------------------------------
    def rollback(self, state: RunState) -> None:
        """Reinstall a known-good snapshot; the cluster clock stays
        monotonic (recovery time is real time)."""
        self._restore(state)

    def _recounted_phi(self) -> np.ndarray:
        """Exact dense φ from the workers' current assignments minus
        their pending (unpushed) deltas — the server's logical content,
        reconstructed from ground truth rather than copied from
        possibly-lost shards."""
        K, V = self.hyper.num_topics, self.corpus.num_words
        dense = np.zeros((K, V), dtype=np.int64)
        for w in self.workers:
            dense += w.local_counts.astype(np.int64)
        for i, delta in self._pending_delta.items():
            dense[:, self.workers[i].words] -= delta
        return dense

    def handle_device_loss(self, state: RunState) -> None:
        """Elastic node-loss recovery: migrate the dead nodes' logical
        workers intact to the token-lightest survivors and re-shard φ.

        Migrating whole workers (chunk, assignments, θ, RNG) instead of
        re-chunking keeps every token's RNG stream identical to the
        fault-free run, so the recovered φ is bit-identical — only the
        wire placement changes. Placement is token-balanced across
        survivors with ties broken by node id, so recovery itself is
        deterministic.
        """
        self._restore(state)
        dead = set(self.membership.dead_nodes)
        survivors = [
            n for n in range(self.network.num_nodes)
            if n not in dead and self.network.node_up(n)
        ]
        if not survivors:
            raise NodeLost(
                min(dead) if dead else 0,
                "no surviving nodes to migrate work to",
            )
        load = {n: 0 for n in survivors}
        for w in self.workers:
            host = self._node_of[w.worker_id]
            if host in load:
                load[host] += w.chunk.num_tokens
        for w in self.workers:
            host = self._node_of[w.worker_id]
            if host in survivors:
                continue
            target = min(survivors, key=lambda n: (load[n], n))
            self._node_of[w.worker_id] = target
            load[target] += w.chunk.num_tokens
            emit_counter(
                "node_migrations_total", 1,
                help="Logical workers migrated off dead cluster nodes.",
                worker=w.worker_id, to_node=target,
            )
        _, done = self.server.reshard(self._recounted_phi(), self._clock)
        self._clock = max(self._clock, done)
        # Refresh the state the engine will snapshot: φ now reflects the
        # re-shard and extras carry the new hosting map / dead set.
        self.capture_state(state)

    # ------------------------------------------------------------------
    def _iterate_once(self, it: int, clock: float) -> tuple[float, float, float]:
        """One synchronous parameter-server round; returns the advanced
        cluster clock and the round's (network, compute) critical paths."""
        K, V = self.hyper.num_topics, self.corpus.num_words
        policy = getattr(self, "recovery_policy", None)
        retry = (
            policy.transfer_retry()
            if policy is not None and policy.active
            else None
        )
        self.membership.observe(clock)
        self.server.verify()
        worker_done = []
        net_time = 0.0
        cmp_time = 0.0
        sync_round = (it % (self.staleness + 1)) == 0
        n_k = self.server.n_k
        for w in self.workers:
            node = self._node_of[w.worker_id]
            t0 = clock
            if not self.network.node_up(node):
                # The node hosting this worker is silent. The barrier
                # stalls until the failure detector rules; the stall
                # stays on the clock even though the iteration is
                # aborted and re-run after recovery.
                verdict_at = self.membership.await_verdict(node, t0)
                self._clock = max(self._clock, verdict_at)
                if self.membership.is_dead(node):
                    raise NodeLost(node)
                t0 = verdict_at  # the NIC came back during the stall
            if w.worker_id not in self._pending_delta:
                self._pending_delta[w.worker_id] = np.zeros(
                    (K, w.words.size), dtype=np.int64
                )
            if sync_round or w.worker_id not in self._phi_cache:
                phi_slice, t_pull = self.server.pull(
                    node, w.words, t0, retry=retry
                )
                # Worker-local φ view (zeros for absent words — its
                # tokens never touch those columns). The pull happens
                # before this round's push, so the view excludes the
                # worker's still-pending deltas; re-apply them to keep
                # its own updates visible (read-your-writes).
                phi_local = np.zeros((K, V), dtype=np.int64)
                phi_local[:, w.words] = phi_slice
                phi_local[:, w.words] += self._pending_delta[w.worker_id]
                self._phi_cache[w.worker_id] = phi_local
            else:
                phi_local = self._phi_cache[w.worker_id]
                t_pull = t0
            new_topics, _ = gibbs_sample_chunk(
                w.chunk, w.topics, w.theta, phi_local, n_k,
                self.hyper, w.rng, self._config,
            )
            w.topics = new_topics
            w.theta = recount_theta(w.chunk, new_topics, K, compressed=False)
            new_counts = accumulate_phi(w.chunk, new_topics, K)
            delta = (
                new_counts.astype(np.int64) - w.local_counts.astype(np.int64)
            )[:, w.words]
            w.local_counts = new_counts
            # The worker always sees its own updates immediately.
            phi_local[:, w.words] += delta
            self._pending_delta[w.worker_id] += delta
            t_cmp = self._compute_seconds(w)
            if sync_round:
                t_push = self.server.push(
                    node, w.words,
                    self._pending_delta[w.worker_id],
                    t_pull + t_cmp,
                    retry=retry,
                )
                self._pending_delta[w.worker_id][...] = 0
            else:
                t_push = t_pull + t_cmp
            worker_done.append(t_push)
            net_time = max(net_time, (t_pull - t0) + (t_push - t_pull - t_cmp))
            cmp_time = max(cmp_time, t_cmp)
        return max(worker_done), net_time, cmp_time

    def log_likelihood_per_token(self) -> float:
        phi = self.server.phi
        ll = word_log_likelihood(
            phi, phi.sum(axis=1), self.hyper, self.corpus.num_words
        )
        for w in self.workers:
            ll += _doc_log_likelihood(w.theta, w.chunk.doc_lengths, self.hyper)
        return ll / self.corpus.num_tokens
