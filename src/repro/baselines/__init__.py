"""Comparator systems from the paper's evaluation (§7.2).

- :mod:`repro.baselines.gibbs_reference` — an exact sequential collapsed
  Gibbs sampler (with self-exclusion). Not in the paper's evaluation;
  it is this repo's correctness oracle for the vectorized kernels.
- :mod:`repro.baselines.warplda` — the CPU comparator: WarpLDA's
  Metropolis–Hastings/MCEM O(1)-per-token algorithm with a CPU cost
  model (paper cites Chen et al., VLDB 2016).
- :mod:`repro.baselines.saberlda` — the prior-GPU comparator: a
  sparsity-aware single-GPU LDA without CuLDA's block-shared p₂ tree,
  sub-expression reuse, or 16-bit compression (SaberLDA's code is not
  public; see DESIGN.md §2 for the substitution argument).
- :mod:`repro.baselines.ldastar` — the distributed comparator: a
  parameter-server CGS over a simulated 10 Gb/s Ethernet cluster
  (LDA*, Yu et al., VLDB 2017).
"""

from repro.baselines.gibbs_reference import ReferenceCGS
from repro.baselines.ldastar import LDAStar, LDAStarResult
from repro.baselines.saberlda import SaberLDA
from repro.baselines.scvb0 import SCVB0, SCVB0Result
from repro.baselines.warplda import WarpLDA, WarpLDAResult

__all__ = [
    "ReferenceCGS",
    "WarpLDA",
    "WarpLDAResult",
    "SaberLDA",
    "SCVB0",
    "SCVB0Result",
    "LDAStar",
    "LDAStarResult",
]
