r"""SaberLDA-like prior-GPU baseline (Li et al., ASPLOS 2017).

SaberLDA is the GPU LDA system the paper compares against (§7.2). Its
code is not public — the paper cites its published number (120 M
tokens/s for NYTimes on a GTX 1080). We substitute a *measurable*
stand-in: CuLDA's own sampling pipeline with the paper's novel
optimizations disabled —

- no block-shared p₂ index tree (every warp stages its own dense data),
- no sub-expression (p\*) reuse,
- no 16-bit compression,
- single GPU only (SaberLDA "lacks of multi-GPU support", §7.2).

This keeps the baseline sparsity-aware (SaberLDA is) while removing
exactly the deltas the paper credits for its win, so the measured gap
is the ablation the comparison implies. See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.culda import CuLDA, TrainConfig, TrainResult
from repro.corpus.corpus import Corpus
from repro.gpusim.platform import Machine, pascal_platform

__all__ = ["SaberLDA"]


class SaberLDA:
    """Single-GPU sparsity-aware LDA without CuLDA's optimizations."""

    def __init__(
        self,
        corpus: Corpus,
        machine: Machine | None = None,
        config: TrainConfig | None = None,
        callbacks=None,
        registry=None,
    ):
        machine = machine or pascal_platform(1)
        if len(machine.gpus) != 1:
            raise ValueError("SaberLDA supports a single GPU only")
        base = config or TrainConfig()
        self.config = replace(
            base,
            share_p2_tree=False,
            reuse_pstar=False,
            compressed=False,
        )
        self._trainer = CuLDA(
            corpus, machine, self.config, callbacks=callbacks, registry=registry
        )

    @property
    def registry(self):
        """The inner trainer's metrics registry (populated by train())."""
        return self._trainer.registry

    def add_callback(self, cb) -> None:
        self._trainer.add_callback(cb)

    def train(self, callbacks=None) -> TrainResult:
        return self._trainer.train(callbacks)
