r"""SaberLDA-like prior-GPU baseline (Li et al., ASPLOS 2017).

SaberLDA is the GPU LDA system the paper compares against (§7.2). Its
code is not public — the paper cites its published number (120 M
tokens/s for NYTimes on a GTX 1080). We substitute a *measurable*
stand-in: CuLDA's own sampling pipeline with the paper's novel
optimizations disabled —

- no block-shared p₂ index tree (every warp stages its own dense data),
- no sub-expression (p\*) reuse,
- no 16-bit compression,
- single GPU only (SaberLDA "lacks of multi-GPU support", §7.2).

This keeps the baseline sparsity-aware (SaberLDA is) while removing
exactly the deltas the paper credits for its win, so the measured gap
is the ablation the comparison implies. See DESIGN.md §2.

As a :class:`~repro.core.culda.CuLDA` subclass it inherits the full
engine surface — callbacks, likelihood cadences, checkpoint/resume —
with its own strategy name, so ``--algo saberlda`` checkpoints refuse
to resume under a differently-configured trainer.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.culda import CuLDA, TrainConfig
from repro.corpus.corpus import Corpus
from repro.gpusim.platform import Machine, pascal_platform

__all__ = ["SaberLDA"]


class SaberLDA(CuLDA):
    """Single-GPU sparsity-aware LDA without CuLDA's optimizations."""

    name = "saberlda"

    def __init__(
        self,
        corpus: Corpus,
        machine: Machine | None = None,
        config: TrainConfig | None = None,
        callbacks=None,
        registry=None,
    ):
        machine = machine or pascal_platform(1)
        if len(machine.gpus) != 1:
            raise ValueError("SaberLDA supports a single GPU only")
        base = config or TrainConfig()
        super().__init__(
            corpus,
            machine,
            replace(
                base,
                share_p2_tree=False,
                reuse_pstar=False,
                compressed=False,
            ),
            callbacks=callbacks,
            registry=registry,
        )
