"""Markdown run reports.

`render_markdown` turns a :class:`~repro.core.culda.TrainResult` (plus,
optionally, the machine it ran on) into a self-contained report: run
configuration, throughput trace, kernel breakdown, memory/energy
figures, and top words per topic — what you'd paste into a lab
notebook or attach to a CI artifact. The CLI exposes it as
``repro-lda train ... --report run.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.culda import TrainResult
    from repro.corpus.corpus import Vocabulary
    from repro.gpusim.platform import Machine
    from repro.telemetry.registry import MetricsRegistry

__all__ = ["render_markdown"]


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def render_markdown(
    result: "TrainResult",
    machine: "Machine | None" = None,
    vocabulary: "Vocabulary | None" = None,
    top_words: int = 8,
    max_iteration_rows: int = 20,
    registry: "MetricsRegistry | None" = None,
) -> str:
    """Render a training run as GitHub-flavoured markdown."""
    from repro.engine.results import _DISPLAY_NAMES

    algo_name = _DISPLAY_NAMES.get(result.algo, result.algo)
    if result.machine_name:
        where = f"{result.machine_name} ({result.num_gpus} GPU(s))"
    elif result.num_workers:
        where = f"{result.num_workers}x {result.cpu_name or 'cpu'}"
    else:
        where = result.cpu_name or "host"
    lines: list[str] = []
    lines.append(f"# {algo_name} run report — {result.corpus_name}")
    lines.append("")
    lines.append("## Configuration")
    lines.append("")
    lines.append("| | |")
    lines.append("|---|---|")
    lines.append(f"| machine | {where} |")
    lines.append(f"| corpus | {result.corpus_name}, T = {result.num_tokens:,} |")
    lines.append(f"| topics (K) | {result.hyper.num_topics} |")
    lines.append(f"| α / β | {result.hyper.alpha:.4g} / {result.hyper.beta:.4g} |")
    if result.plan_chunks:
        lines.append(
            f"| chunking | C = {result.plan_chunks} (M = {result.chunks_per_gpu}, "
            f"{'resident' if result.chunks_per_gpu == 1 else 'streaming'}) |"
        )
    lines.append(f"| iterations | {len(result.iterations)} |")
    lines.append("")

    lines.append("## Outcome")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    lines.append(
        f"| simulated time | {result.total_sim_seconds * 1e3:.3f} ms |"
    )
    lines.append(
        f"| throughput (Eq 2) | {result.avg_tokens_per_sec / 1e6:.1f} M tokens/s |"
    )
    if result.final_log_likelihood is not None:
        lines.append(
            f"| log-likelihood/token | {result.final_log_likelihood:.4f} |"
        )
    lines.append(
        f"| peak device memory | {_fmt_bytes(result.peak_device_bytes)} |"
    )
    if machine is not None:
        lines.append(
            f"| energy estimate | {machine.energy_joules() * 1e3:.2f} mJ |"
        )
    lines.append(f"| wall time | {result.wall_seconds:.2f} s |")
    lines.append("")

    lines.append("## Kernel time breakdown")
    lines.append("")
    lines.append("| kind | share |")
    lines.append("|---|---|")
    from repro.core.culda import BREAKDOWN_KINDS

    for kind in BREAKDOWN_KINDS:
        share = result.breakdown.get(kind, 0.0)
        if share > 0:
            lines.append(f"| {kind} | {share * 100:.1f}% |")
    lines.append("")

    lines.append("## Iteration trace")
    lines.append("")
    lines.append("| iter | M tokens/s | mean K_d | p1 draws | ll/token |")
    lines.append("|---|---|---|---|---|")
    n = len(result.iterations)
    step = max(1, n // max_iteration_rows)
    shown = list(range(0, n, step))
    if (n - 1) not in shown:
        shown.append(n - 1)
    for i in shown:
        it = result.iterations[i]
        ll = (
            f"{it.log_likelihood_per_token:.4f}"
            if it.log_likelihood_per_token is not None
            else "—"
        )
        lines.append(
            f"| {it.iteration} | {it.tokens_per_sec / 1e6:.1f} | "
            f"{it.mean_kd:.1f} | {it.p1_fraction:.0%} | {ll} |"
        )
    lines.append("")

    lines.append(f"## Topics (top {top_words} words)")
    lines.append("")
    mass = result.phi.sum(axis=1)
    for k in np.argsort(mass)[::-1]:
        ids = result.top_words(int(k), n=top_words)
        words = (
            " ".join(vocabulary.word_of(w) for w in ids)
            if vocabulary is not None
            else " ".join(str(w) for w in ids)
        )
        lines.append(f"- **topic {k}** ({int(mass[k]):,} tokens): {words}")
    lines.append("")

    if machine is not None and machine.trace.intervals:
        lines.append("## Timeline (text Gantt)")
        lines.append("")
        lines.append("```")
        lines.append(machine.trace.gantt_text(width=80))
        lines.append("```")
        lines.append("")

    if registry is not None:
        from repro.telemetry.exporters import metrics_markdown

        lines.append("## Metrics")
        lines.append("")
        lines.append(metrics_markdown(registry))
        lines.append("")
    return "\n".join(lines)
