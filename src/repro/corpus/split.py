"""Train/evaluation splits for topic-model experiments.

Two standard protocols:

- :func:`split_documents` — document hold-out: whole documents go to
  the test side; evaluate by fold-in (what ``examples/topic_count_sweep``
  does).
- :func:`split_document_completion` — within-document split: each test
  document's tokens are divided into an *observed* half (used to infer
  θ) and a *held-out* half (scored). The "document completion" protocol
  avoids fold-in's optimistic bias.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.corpus import Corpus

__all__ = ["split_documents", "split_document_completion"]


def split_documents(
    corpus: Corpus, test_fraction: float = 0.2, seed: int = 0
) -> tuple[Corpus, Corpus]:
    """Random document hold-out split → ``(train, test)``.

    Documents are shuffled, so the split is unbiased even if the corpus
    is ordered (by date, by source, …).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    D = corpus.num_docs
    n_test = max(1, int(round(D * test_fraction)))
    if n_test >= D:
        raise ValueError("split leaves no training documents")
    rng = np.random.default_rng(seed)
    order = rng.permutation(D)
    test_ids = np.sort(order[:n_test])
    train_ids = np.sort(order[n_test:])

    def take(ids: np.ndarray, name: str) -> Corpus:
        lengths = corpus.doc_lengths[ids]
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        tokens = np.concatenate(
            [corpus.document(int(d)) for d in ids]
        ) if ids.size else np.empty(0, dtype=np.int32)
        return Corpus(tokens, indptr, corpus.num_words, corpus.vocabulary,
                      name=f"{corpus.name}-{name}")

    return take(train_ids, "train"), take(test_ids, "test")


def split_document_completion(
    corpus: Corpus, observed_fraction: float = 0.5, seed: int = 0
) -> tuple[Corpus, Corpus]:
    """Within-document split → ``(observed, heldout)``.

    Both sides have the same documents (same ids, same count); each
    document's tokens are randomly partitioned. Documents with a single
    token put it on the observed side.
    """
    if not 0.0 < observed_fraction < 1.0:
        raise ValueError("observed_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    obs_docs: list[np.ndarray] = []
    held_docs: list[np.ndarray] = []
    for d in range(corpus.num_docs):
        tokens = corpus.document(d)
        L = tokens.size
        if L <= 1:
            obs_docs.append(tokens.copy())
            held_docs.append(np.empty(0, dtype=tokens.dtype))
            continue
        n_obs = max(1, int(round(L * observed_fraction)))
        n_obs = min(n_obs, L - 1)  # keep at least one held-out token
        order = rng.permutation(L)
        obs_docs.append(tokens[np.sort(order[:n_obs])])
        held_docs.append(tokens[np.sort(order[n_obs:])])

    def build(docs: list[np.ndarray], name: str) -> Corpus:
        return Corpus.from_documents(
            [d.tolist() for d in docs], corpus.num_words, corpus.vocabulary,
            name=f"{corpus.name}-{name}",
        )

    return build(obs_docs, "observed"), build(held_docs, "heldout")
