"""Corpus statistics and shape estimators.

These summarize a concrete :class:`~repro.corpus.corpus.Corpus` the same
way the paper's Table 3 summarizes its datasets, plus the quantities the
performance analysis needs: document-length distribution (drives θ-row
sparsity, §6.1.1) and word-frequency skew (drives the sampling kernel's
block assignment and the long-tail effect, §6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.datasets import DatasetStats

__all__ = ["CorpusSummary", "summarize", "fit_zipf_exponent", "expected_kd"]


@dataclass(frozen=True)
class CorpusSummary:
    """Measured shape statistics of a corpus."""

    name: str
    num_tokens: int
    num_docs: int
    num_words: int
    avg_doc_length: float
    max_doc_length: int
    zipf_exponent: float
    max_word_frequency: int

    def as_dataset_stats(self) -> DatasetStats:
        """Convert to a :class:`DatasetStats` for the performance model."""
        return DatasetStats(
            name=self.name,
            num_tokens=self.num_tokens,
            num_docs=self.num_docs,
            num_words=self.num_words,
            zipf_exponent=self.zipf_exponent,
        )


def fit_zipf_exponent(word_freq: np.ndarray) -> float:
    """Least-squares fit of the Zipf exponent on the rank–frequency curve.

    Fits ``log f_r = c - s·log r`` over ranks with nonzero frequency and
    returns *s*. Robust enough for synthetic-twin generation; not meant
    as a rigorous power-law estimator.
    """
    freq = np.sort(word_freq[word_freq > 0])[::-1].astype(np.float64)
    if freq.size < 2:
        return 1.0
    ranks = np.arange(1, freq.size + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(freq)
    slope = np.polyfit(x, y, 1)[0]
    return float(max(0.0, -slope))


def expected_kd(doc_length: float, num_topics: int) -> float:
    """Expected number of distinct topics in a document's θ row.

    If a document of length L had topics assigned uniformly at random,
    the expected count of distinct topics is ``K·(1 - (1 - 1/K)^L)`` —
    the coupon-collector bound. Real (converged) LDA is sparser; the
    sparsity model in :mod:`repro.analysis.sparsity` interpolates from
    this upper bound at iteration 0 down to a converged floor.
    """
    K = float(num_topics)
    if K <= 0:
        raise ValueError("num_topics must be positive")
    return K * (1.0 - (1.0 - 1.0 / K) ** doc_length)


def summarize(corpus: Corpus) -> CorpusSummary:
    """Compute a :class:`CorpusSummary` for *corpus*."""
    lengths = corpus.doc_lengths
    freq = corpus.word_frequencies()
    return CorpusSummary(
        name=corpus.name,
        num_tokens=corpus.num_tokens,
        num_docs=corpus.num_docs,
        num_words=corpus.num_words,
        avg_doc_length=float(lengths.mean()) if lengths.size else 0.0,
        max_doc_length=int(lengths.max()) if lengths.size else 0,
        zipf_exponent=fit_zipf_exponent(freq),
        max_word_frequency=int(freq.max()) if freq.size else 0,
    )
