"""Corpus substrate: documents, vocabulary, token stores, and generators.

This subpackage implements the data layer that CuLDA_CGS samples over:

- :mod:`repro.corpus.corpus` — the :class:`Corpus` container (flat token
  arrays + document index), the word-first sorted :class:`TokenChunk`
  layout used by the GPU sampling kernel, and the document–word map built
  during CPU-side preprocessing (paper §6.2).
- :mod:`repro.corpus.synthetic` — synthetic corpus generators (LDA
  generative process and Zipf models) that produce scaled-down "twins" of
  the paper's NYTimes / PubMed datasets.
- :mod:`repro.corpus.datasets` — the full-scale dataset statistics from
  Table 3 of the paper, used by the analytic performance model.
- :mod:`repro.corpus.uci` — reader/writer for the UCI bag-of-words format
  the real NYTimes/PubMed files ship in.
- :mod:`repro.corpus.stats` — corpus statistics (doc-length and word
  frequency distributions, sparsity estimators).
"""

from repro.corpus.builder import CorpusBuilder
from repro.corpus.corpus import Corpus, TokenChunk, Vocabulary
from repro.corpus.datasets import DatasetStats, NYTIMES, PUBMED
from repro.corpus.preprocess import filter_short_documents, prune_vocabulary
from repro.corpus.split import split_document_completion, split_documents
from repro.corpus.synthetic import (
    SyntheticSpec,
    generate_lda_corpus,
    generate_zipf_corpus,
    nytimes_like,
    pubmed_like,
)

__all__ = [
    "CorpusBuilder",
    "Corpus",
    "TokenChunk",
    "Vocabulary",
    "DatasetStats",
    "NYTIMES",
    "PUBMED",
    "prune_vocabulary",
    "split_documents",
    "split_document_completion",
    "filter_short_documents",
    "SyntheticSpec",
    "generate_lda_corpus",
    "generate_zipf_corpus",
    "nytimes_like",
    "pubmed_like",
]
