"""Full-scale dataset statistics from the paper (Table 3).

The real NYTimes and PubMed corpora (UCI bag-of-words releases) are not
available offline, and at 99.5M / 737.9M tokens they would not be
tractable in pure Python anyway. The *performance* experiments of the
paper (Tables 4–5, Figs 7 and 9) depend only on aggregate corpus shape —
token count T, document count D, vocabulary size V, and how θ-row
sparsity evolves over iterations — so we carry those at full scale in
:class:`DatasetStats` objects and evaluate the simulator's cost model on
them analytically (see :mod:`repro.perfmodel`).

The *statistical* experiments (Fig 8 convergence) run real Gibbs sampling
on scaled-down synthetic twins built by :mod:`repro.corpus.synthetic`
to match each dataset's shape (average document length, Zipf exponent).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetStats", "NYTIMES", "PUBMED"]


@dataclass(frozen=True)
class DatasetStats:
    """Aggregate statistics of a corpus, as in Table 3 of the paper.

    Attributes
    ----------
    name: dataset label.
    num_tokens: total token count *T*.
    num_docs: document count *D*.
    num_words: vocabulary size *V*.
    zipf_exponent: fitted exponent of the word-frequency power law
        (used only by the synthetic twin generator; ~1.0–1.1 for both
        UCI corpora).
    """

    name: str
    num_tokens: int
    num_docs: int
    num_words: int
    zipf_exponent: float = 1.05

    @property
    def avg_doc_length(self) -> float:
        """Mean tokens per document (paper: NYTimes 332, PubMed 92)."""
        return self.num_tokens / self.num_docs

    def scaled(self, factor: float, name: str | None = None) -> "DatasetStats":
        """Stats of a corpus shrunk by *factor* in D and T (V shrinks with
        the square root, mimicking Heaps' law vocabulary growth)."""
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        return DatasetStats(
            name=name or f"{self.name}-x{factor:g}",
            num_tokens=max(1, int(self.num_tokens * factor)),
            num_docs=max(1, int(self.num_docs * factor)),
            num_words=max(2, int(self.num_words * factor**0.5)),
            zipf_exponent=self.zipf_exponent,
        )

    def table_row(self) -> str:
        """One formatted row of the paper's Table 3."""
        return (
            f"{self.name:<10s} {self.num_tokens:>13,d} {self.num_docs:>12,d} "
            f"{self.num_words:>9,d}"
        )


#: Table 3, row 1: the UCI NYTimes bag-of-words corpus.
NYTIMES = DatasetStats(
    name="NYTimes",
    num_tokens=99_542_125,
    num_docs=299_752,
    num_words=101_636,
    zipf_exponent=1.05,
)

#: Table 3, row 2: the UCI PubMed abstracts corpus.
PUBMED = DatasetStats(
    name="PubMed",
    num_tokens=737_869_083,
    num_docs=8_200_000,
    num_words=141_043,
    zipf_exponent=1.10,
)
