"""Corpus preprocessing: vocabulary pruning and document filtering.

The UCI corpora the paper uses were already pruned by their publishers
(stopwords removed, words occurring in <10 documents dropped). A
production library needs the same tools for raw corpora:

- :func:`prune_vocabulary` — drop words by document frequency (too
  rare or too common) and/or an explicit stopword list; word ids are
  re-densified.
- :func:`filter_short_documents` — drop documents below a minimum
  length (short documents carry little topic signal and, per §6.1.1,
  dominate the p₂ branch).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.corpus.corpus import Corpus, Vocabulary

__all__ = ["prune_vocabulary", "filter_short_documents"]


def prune_vocabulary(
    corpus: Corpus,
    min_doc_frequency: int = 1,
    max_doc_fraction: float = 1.0,
    stopwords: Iterable[str] | Iterable[int] = (),
) -> Corpus:
    """Remove words from *corpus* and re-densify word ids.

    Parameters
    ----------
    min_doc_frequency: keep words appearing in at least this many
        distinct documents.
    max_doc_fraction: drop words appearing in more than this fraction
        of documents (corpus-specific stopwords).
    stopwords: words to drop — strings (requires a vocabulary) or ids.

    Returns
    -------
    A new corpus over the surviving vocabulary (documents may shrink;
    empty documents are kept so document ids stay stable).
    """
    if min_doc_frequency < 1:
        raise ValueError("min_doc_frequency must be >= 1")
    if not 0 < max_doc_fraction <= 1.0:
        raise ValueError("max_doc_fraction must be in (0, 1]")

    # Document frequency: distinct (doc, word) pairs.
    key = corpus.token_doc.astype(np.int64) * corpus.num_words + corpus.token_word
    uniq = np.unique(key)
    df = np.bincount((uniq % corpus.num_words).astype(np.int64),
                     minlength=corpus.num_words)

    keep = (df >= min_doc_frequency) & (
        df <= max_doc_fraction * corpus.num_docs
    )
    stop_ids: list[int] = []
    for s in stopwords:
        if isinstance(s, str):
            if corpus.vocabulary is None:
                raise ValueError("string stopwords require a vocabulary")
            if s in corpus.vocabulary:
                stop_ids.append(corpus.vocabulary.id_of(s))
        else:
            stop_ids.append(int(s))
    if stop_ids:
        keep[np.asarray(stop_ids, dtype=np.int64)] = False

    new_id = np.full(corpus.num_words, -1, dtype=np.int64)
    survivors = np.nonzero(keep)[0]
    new_id[survivors] = np.arange(survivors.size)

    token_mask = keep[corpus.token_word]
    new_words = new_id[corpus.token_word[token_mask]].astype(np.int32)
    new_docs = corpus.token_doc[token_mask].astype(np.int64)
    lengths = np.bincount(new_docs, minlength=corpus.num_docs)
    indptr = np.zeros(corpus.num_docs + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])

    vocab = None
    if corpus.vocabulary is not None:
        vocab = Vocabulary(
            corpus.vocabulary.word_of(int(w)) for w in survivors
        ).freeze()
    return Corpus(new_words, indptr, int(survivors.size), vocab,
                  name=f"{corpus.name}-pruned")


def filter_short_documents(corpus: Corpus, min_length: int = 1) -> Corpus:
    """Drop documents shorter than *min_length* tokens (renumbers docs)."""
    if min_length < 0:
        raise ValueError("min_length must be >= 0")
    lengths = corpus.doc_lengths
    keep = np.nonzero(lengths >= min_length)[0]
    token_mask = np.isin(corpus.token_doc, keep)
    new_words = corpus.token_word[token_mask]
    indptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(lengths[keep], out=indptr[1:])
    return Corpus(new_words, indptr, corpus.num_words, corpus.vocabulary,
                  name=f"{corpus.name}-filtered")
