"""Incremental corpus construction from token streams.

Real deployments build corpora from document streams (crawls, feeds)
rather than materialized lists. :class:`CorpusBuilder` accumulates
documents one at a time — interning words, growing flat buffers
geometrically — and finalizes into the library's :class:`Corpus` in one
O(T) pass. Useful both as API surface and as the substrate for
streaming-LDA style workloads (the paper cites Streaming-LDA [4]).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.corpus.corpus import Corpus, Vocabulary

__all__ = ["CorpusBuilder"]


class CorpusBuilder:
    """Accumulates documents into a corpus.

    Two input modes (mutually exclusive per builder):

    - :meth:`add_document` with *strings* — words are interned into a
      growing vocabulary;
    - :meth:`add_document_ids` with *integer ids* — for pre-tokenized
      pipelines (``num_words`` inferred or given at finalize).
    """

    def __init__(self, name: str = "corpus"):
        self.name = name
        self._vocab = Vocabulary()
        self._tokens = np.empty(1024, dtype=np.int32)
        self._num_tokens = 0
        self._doc_ends: list[int] = []
        self._used_ids = False
        self._max_id = -1

    # ------------------------------------------------------------------
    def _reserve(self, n: int) -> None:
        needed = self._num_tokens + n
        if needed > self._tokens.size:
            new_size = max(needed, self._tokens.size * 2)
            grown = np.empty(new_size, dtype=np.int32)
            grown[: self._num_tokens] = self._tokens[: self._num_tokens]
            self._tokens = grown

    def add_document(self, words: Iterable[str]) -> int:
        """Append a document of word strings; returns its document id."""
        if self._used_ids:
            raise ValueError("cannot mix string documents into an id-mode builder")
        ids = [self._vocab.add(w) for w in words]
        return self._append(ids)

    def add_document_ids(self, ids: Iterable[int]) -> int:
        """Append a document of integer word ids; returns its doc id."""
        if len(self._vocab):
            raise ValueError("cannot mix id documents into a string-mode builder")
        self._used_ids = True
        return self._append(ids)

    def _append(self, ids: Iterable[int]) -> int:
        arr = np.fromiter((int(i) for i in ids), dtype=np.int32)
        if arr.size and arr.min() < 0:
            raise ValueError("word ids must be non-negative")
        self._reserve(arr.size)
        self._tokens[self._num_tokens : self._num_tokens + arr.size] = arr
        self._num_tokens += arr.size
        self._doc_ends.append(self._num_tokens)
        if arr.size:
            self._max_id = max(self._max_id, int(arr.max()))
        return len(self._doc_ends) - 1

    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        return len(self._doc_ends)

    @property
    def num_tokens(self) -> int:
        return self._num_tokens

    def build(self, num_words: int | None = None) -> Corpus:
        """Finalize into a :class:`Corpus`.

        ``num_words`` defaults to the interned vocabulary size (string
        mode) or ``max_id + 1`` (id mode); an explicit value must cover
        every seen id.
        """
        if self.num_documents == 0:
            raise ValueError("no documents added")
        inferred = len(self._vocab) if len(self._vocab) else self._max_id + 1
        V = num_words if num_words is not None else max(inferred, 1)
        if V <= self._max_id:
            raise ValueError(
                f"num_words={V} does not cover max word id {self._max_id}"
            )
        if len(self._vocab) and V < len(self._vocab):
            raise ValueError("num_words smaller than interned vocabulary")
        indptr = np.zeros(self.num_documents + 1, dtype=np.int64)
        indptr[1:] = self._doc_ends
        vocab = self._vocab.freeze() if len(self._vocab) == V else None
        return Corpus(
            self._tokens[: self._num_tokens].copy(),
            indptr,
            V,
            vocab,
            name=self.name,
        )
