"""Core corpus containers.

The corpus layout mirrors what CuLDA_CGS uploads to each GPU (paper §4,
§6): a flat token store in *word-first* order, a CSR-style document index,
and the CPU-side *document–word map* that the θ-update kernel uses to find
all tokens of a document inside a word-sorted chunk (paper §6.2).

Design notes
------------
All hot data lives in flat, C-contiguous NumPy arrays (the HPC guides'
"views, not copies" rule): a :class:`Corpus` is three arrays plus
metadata, and every derived structure (:class:`TokenChunk`) is built with
vectorized primitives (``argsort``, ``bincount``, ``cumsum``) — never a
Python loop over tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Vocabulary", "Corpus", "TokenChunk"]


class Vocabulary:
    """A bidirectional word ↔ id mapping.

    Words are assigned dense integer ids in insertion order. The mapping
    is immutable once frozen (:meth:`freeze`), which the corpus builders
    use to guarantee that word ids match the φ matrix columns.
    """

    def __init__(self, words: Iterable[str] = ()):  # noqa: D107
        self._words: list[str] = []
        self._ids: dict[str, int] = {}
        self._frozen = False
        for w in words:
            self.add(w)

    def add(self, word: str) -> int:
        """Intern *word*, returning its id (existing or newly assigned)."""
        wid = self._ids.get(word)
        if wid is not None:
            return wid
        if self._frozen:
            raise ValueError(f"vocabulary is frozen; unknown word {word!r}")
        wid = len(self._words)
        self._words.append(word)
        self._ids[word] = wid
        return wid

    def freeze(self) -> "Vocabulary":
        """Disallow further additions. Returns ``self`` for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def id_of(self, word: str) -> int:
        return self._ids[word]

    def word_of(self, wid: int) -> str:
        return self._words[wid]

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vocabulary(size={len(self)}, frozen={self._frozen})"


@dataclass(frozen=True)
class Corpus:
    """A tokenized corpus in flat-array form.

    Attributes
    ----------
    token_word:
        ``int32[T]`` — word id of every token, grouped by document
        (tokens of document *d* occupy ``doc_indptr[d]:doc_indptr[d+1]``).
    doc_indptr:
        ``int64[D+1]`` — CSR row pointer over documents.
    num_words:
        Vocabulary size ``V``. Word ids must lie in ``[0, V)``.
    vocabulary:
        Optional human-readable vocabulary (``len == num_words`` if given).
    name:
        Optional label used in benchmark output.
    """

    token_word: np.ndarray
    doc_indptr: np.ndarray
    num_words: int
    vocabulary: Vocabulary | None = None
    name: str = "corpus"
    # Lazily computed caches (object-level, not part of equality).
    _token_doc: np.ndarray | None = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        tw = np.ascontiguousarray(self.token_word, dtype=np.int32)
        ip = np.ascontiguousarray(self.doc_indptr, dtype=np.int64)
        object.__setattr__(self, "token_word", tw)
        object.__setattr__(self, "doc_indptr", ip)
        if ip.ndim != 1 or ip.size < 1:
            raise ValueError("doc_indptr must be a 1-D array of length D+1 >= 1")
        if ip[0] != 0 or ip[-1] != tw.size:
            raise ValueError(
                f"doc_indptr must start at 0 and end at T={tw.size}; got "
                f"[{ip[0]}, {ip[-1]}]"
            )
        if np.any(np.diff(ip) < 0):
            raise ValueError("doc_indptr must be non-decreasing")
        if tw.size and (tw.min() < 0 or tw.max() >= self.num_words):
            raise ValueError("token word ids out of range [0, V)")
        if self.vocabulary is not None and len(self.vocabulary) != self.num_words:
            raise ValueError("vocabulary size does not match num_words")

    # ------------------------------------------------------------------
    # Basic shape properties
    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        """Total token count *T*."""
        return int(self.token_word.size)

    @property
    def num_docs(self) -> int:
        """Document count *D*."""
        return int(self.doc_indptr.size - 1)

    @property
    def doc_lengths(self) -> np.ndarray:
        """``int64[D]`` — tokens per document."""
        return np.diff(self.doc_indptr)

    @property
    def token_doc(self) -> np.ndarray:
        """``int32[T]`` — document id of every token (computed lazily)."""
        cached = self._token_doc
        if cached is None:
            cached = np.repeat(
                np.arange(self.num_docs, dtype=np.int32), self.doc_lengths
            )
            object.__setattr__(self, "_token_doc", cached)
        return cached

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_documents(
        cls,
        documents: Sequence[Sequence[int]],
        num_words: int,
        vocabulary: Vocabulary | None = None,
        name: str = "corpus",
    ) -> "Corpus":
        """Build a corpus from per-document token-id lists."""
        lengths = np.fromiter(
            (len(d) for d in documents), count=len(documents), dtype=np.int64
        )
        indptr = np.zeros(len(documents) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        token_word = np.empty(int(indptr[-1]), dtype=np.int32)
        for d, doc in enumerate(documents):
            token_word[indptr[d] : indptr[d + 1]] = doc
        return cls(token_word, indptr, num_words, vocabulary, name)

    @classmethod
    def from_bow(
        cls,
        doc_ids: np.ndarray,
        word_ids: np.ndarray,
        counts: np.ndarray,
        num_docs: int | None = None,
        num_words: int | None = None,
        name: str = "corpus",
    ) -> "Corpus":
        """Build a corpus from bag-of-words triples ``(doc, word, count)``.

        Tokens are materialized by repeating each word ``count`` times
        (a word may appear multiple times in one document; paper §2.1).
        """
        doc_ids = np.asarray(doc_ids, dtype=np.int64)
        word_ids = np.asarray(word_ids, dtype=np.int32)
        counts = np.asarray(counts, dtype=np.int64)
        if not (doc_ids.shape == word_ids.shape == counts.shape):
            raise ValueError("doc_ids, word_ids, counts must have equal shape")
        if counts.size and counts.min() < 1:
            raise ValueError("counts must be >= 1")
        D = int(num_docs if num_docs is not None else (doc_ids.max() + 1 if doc_ids.size else 0))
        V = int(num_words if num_words is not None else (word_ids.max() + 1 if word_ids.size else 0))
        order = np.argsort(doc_ids, kind="stable")
        doc_ids, word_ids, counts = doc_ids[order], word_ids[order], counts[order]
        token_word = np.repeat(word_ids, counts)
        token_doc = np.repeat(doc_ids, counts)
        doc_len = np.bincount(token_doc, minlength=D)
        indptr = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(doc_len, out=indptr[1:])
        return cls(token_word, indptr, V, name=name)

    # ------------------------------------------------------------------
    # Views and derived structures
    # ------------------------------------------------------------------
    def document(self, d: int) -> np.ndarray:
        """Word ids of document *d* (a view, not a copy)."""
        return self.token_word[self.doc_indptr[d] : self.doc_indptr[d + 1]]

    def word_frequencies(self) -> np.ndarray:
        """``int64[V]`` — corpus-wide occurrence count of each word."""
        return np.bincount(self.token_word, minlength=self.num_words).astype(np.int64)

    def slice_docs(self, start: int, stop: int, name: str | None = None) -> "Corpus":
        """A corpus containing documents ``[start, stop)``.

        Document ids are renumbered from 0; the vocabulary is shared.
        """
        if not (0 <= start <= stop <= self.num_docs):
            raise IndexError(f"invalid document range [{start}, {stop})")
        lo, hi = self.doc_indptr[start], self.doc_indptr[stop]
        indptr = self.doc_indptr[start : stop + 1] - lo
        return Corpus(
            self.token_word[lo:hi].copy(),
            indptr.copy(),
            self.num_words,
            self.vocabulary,
            name or f"{self.name}[{start}:{stop}]",
        )

    def to_chunk(self) -> "TokenChunk":
        """Preprocess the whole corpus into a word-first :class:`TokenChunk`."""
        return TokenChunk.from_corpus_range(self, 0, self.num_docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Corpus(name={self.name!r}, T={self.num_tokens}, "
            f"D={self.num_docs}, V={self.num_words})"
        )


@dataclass(frozen=True)
class TokenChunk:
    """A word-first sorted token chunk — the GPU-resident corpus layout.

    CuLDA_CGS sorts each chunk's tokens in *word-first* order so that all
    samplers in a thread block process tokens of the same word and can
    share the p2 index tree through shared memory (paper §6.1.2). The
    θ-update kernel then needs the inverse view — all tokens of one
    document — which is provided by the *document–word map* built on the
    CPU during preprocessing (paper §6.2).

    Attributes
    ----------
    token_doc:
        ``int32[T]`` — *local* document id of each token, in word-sorted
        order. Local ids run ``[0, num_docs)`` within the chunk.
    word_indptr:
        ``int64[V+1]`` — tokens of word *v* occupy
        ``word_indptr[v]:word_indptr[v+1]``.
    doc_map_indptr / doc_map_indices:
        CSR document–word map: ``doc_map_indices[doc_map_indptr[d]:
        doc_map_indptr[d+1]]`` are the positions (into ``token_doc`` /
        topic arrays) of document *d*'s tokens.
    source_pos:
        ``int64[T]`` — for each token in chunk (word-sorted) order, its
        original position within the chunk's corpus range. Lets results
        (per-token topics) be mapped back to corpus order.
    doc_offset:
        Global id of local document 0 (chunks partition by document).
    num_words:
        Vocabulary size V (shared across chunks; φ columns).
    """

    token_doc: np.ndarray
    word_indptr: np.ndarray
    doc_map_indptr: np.ndarray
    doc_map_indices: np.ndarray
    source_pos: np.ndarray
    doc_offset: int
    num_words: int

    def __post_init__(self) -> None:
        for attr, dtype in (
            ("token_doc", np.int32),
            ("word_indptr", np.int64),
            ("doc_map_indptr", np.int64),
            ("doc_map_indices", np.int64),
            ("source_pos", np.int64),
        ):
            arr = np.ascontiguousarray(getattr(self, attr), dtype=dtype)
            object.__setattr__(self, attr, arr)
        if self.word_indptr.size != self.num_words + 1:
            raise ValueError("word_indptr must have length V+1")
        if self.word_indptr[-1] != self.token_doc.size:
            raise ValueError("word_indptr must end at T")
        if self.doc_map_indices.size != self.token_doc.size:
            raise ValueError("doc map must cover every token exactly once")
        if self.source_pos.size != self.token_doc.size:
            raise ValueError("source_pos must cover every token")

    @property
    def num_tokens(self) -> int:
        return int(self.token_doc.size)

    @property
    def num_docs(self) -> int:
        return int(self.doc_map_indptr.size - 1)

    @property
    def doc_lengths(self) -> np.ndarray:
        """``int64[num_docs]`` — tokens per (local) document."""
        return np.diff(self.doc_map_indptr)

    def token_word_expanded(self) -> np.ndarray:
        """``int32[T]`` — word id of each token (expands ``word_indptr``)."""
        counts = np.diff(self.word_indptr)
        return np.repeat(
            np.arange(self.num_words, dtype=np.int32), counts
        )

    def words_present(self) -> np.ndarray:
        """Ids of words with at least one token in this chunk."""
        counts = np.diff(self.word_indptr)
        return np.nonzero(counts)[0].astype(np.int32)

    @classmethod
    def from_corpus_range(cls, corpus: Corpus, start_doc: int, stop_doc: int) -> "TokenChunk":
        """Build the word-first layout for documents ``[start_doc, stop_doc)``.

        This is the CPU-side preprocessing stage of the paper (§4, §6.2):
        sort tokens by word (stable, so same-word tokens keep document
        order), build the per-word index, and build the document–word map
        that lets the θ-update kernel walk a document's tokens inside the
        word-sorted store.
        """
        if not (0 <= start_doc <= stop_doc <= corpus.num_docs):
            raise IndexError("invalid document range")
        lo = corpus.doc_indptr[start_doc]
        hi = corpus.doc_indptr[stop_doc]
        words = corpus.token_word[lo:hi]
        docs = corpus.token_doc[lo:hi] - start_doc
        n_local_docs = stop_doc - start_doc

        order = np.argsort(words, kind="stable")
        sorted_words = words[order]
        token_doc = docs[order].astype(np.int32)

        word_counts = np.bincount(sorted_words, minlength=corpus.num_words)
        word_indptr = np.zeros(corpus.num_words + 1, dtype=np.int64)
        np.cumsum(word_counts, out=word_indptr[1:])

        # Document–word map: positions of each doc's tokens in the sorted
        # order. argsort of token_doc (stable) groups positions by doc.
        doc_order = np.argsort(token_doc, kind="stable").astype(np.int64)
        doc_counts = np.bincount(token_doc, minlength=n_local_docs)
        doc_map_indptr = np.zeros(n_local_docs + 1, dtype=np.int64)
        np.cumsum(doc_counts, out=doc_map_indptr[1:])

        return cls(
            token_doc=token_doc,
            word_indptr=word_indptr,
            doc_map_indptr=doc_map_indptr,
            doc_map_indices=doc_order,
            source_pos=order.astype(np.int64),
            doc_offset=start_doc,
            num_words=corpus.num_words,
        )

    def nbytes(self, compressed: bool = True) -> int:
        """Device-memory footprint of the chunk's static arrays in bytes.

        With ``compressed=True`` topic columns use 16-bit ints (the
        paper's precision-compression optimization, §6.1.3); the static
        layout itself is int32 doc ids + two int64 index arrays + the
        topic assignment array (charged here as part of the chunk).
        """
        topic_bytes = 2 if compressed else 4
        return int(
            self.token_doc.nbytes
            + self.word_indptr.nbytes
            + self.doc_map_indptr.nbytes
            + self.doc_map_indices.nbytes
            + self.num_tokens * topic_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TokenChunk(T={self.num_tokens}, docs={self.num_docs}, "
            f"doc_offset={self.doc_offset}, V={self.num_words})"
        )
