"""Synthetic corpus generators.

Two generators are provided:

- :func:`generate_lda_corpus` draws a corpus from the LDA generative
  process itself (Dirichlet topic mixtures × Dirichlet topic–word
  distributions). Because the data genuinely contains topics, Gibbs
  sampling on it shows the paper's convergence behaviour (Fig 8) and the
  θ-sparsification ramp-up (Fig 7's first iterations).
- :func:`generate_zipf_corpus` draws i.i.d. Zipf-distributed words. It
  matches real corpora's word-frequency skew (which drives the sampling
  kernel's load-balancing story — heavy words split across thread
  blocks, §6.1.2) without planting topic structure; useful for
  performance-only runs and adversarial load-imbalance tests.

:func:`nytimes_like` / :func:`pubmed_like` produce scaled-down twins of
the paper's Table 3 datasets with matching average document length and
Zipf skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.corpus.datasets import NYTIMES, PUBMED, DatasetStats

__all__ = [
    "SyntheticSpec",
    "generate_lda_corpus",
    "generate_zipf_corpus",
    "nytimes_like",
    "pubmed_like",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic corpus.

    Attributes
    ----------
    num_docs: documents to generate (D).
    num_words: vocabulary size (V).
    avg_doc_length: mean document length; lengths are drawn from a
        shifted Poisson so every document has at least one token.
    num_topics: planted topics (LDA generator only).
    alpha / beta: Dirichlet concentrations of the generative process.
    zipf_exponent: skew of the word marginal (Zipf generator only).
    name: corpus label.
    """

    num_docs: int
    num_words: int
    avg_doc_length: float
    num_topics: int = 16
    alpha: float = 0.1
    beta: float = 0.01
    zipf_exponent: float = 1.05
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_docs < 1 or self.num_words < 2:
            raise ValueError("need at least 1 document and 2 words")
        if self.avg_doc_length < 1:
            raise ValueError("avg_doc_length must be >= 1")
        if self.num_topics < 1:
            raise ValueError("num_topics must be >= 1")


def _doc_lengths(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Shifted-Poisson document lengths (min 1 token)."""
    lam = max(spec.avg_doc_length - 1.0, 0.0)
    return (rng.poisson(lam, size=spec.num_docs) + 1).astype(np.int64)


def generate_lda_corpus(
    spec: SyntheticSpec, seed: int | np.random.Generator = 0
) -> Corpus:
    """Draw a corpus from the LDA generative process.

    For each topic k, φ_k ~ Dir(β·skew) where the base measure is itself
    Zipf-skewed so the word marginal matches real corpora. For each
    document d, θ_d ~ Dir(α); each token draws a topic from θ_d then a
    word from φ_k. Fully vectorized: one multinomial pass for topics,
    one inverse-CDF pass for words.
    """
    rng = np.random.default_rng(seed)
    D, V, K = spec.num_docs, spec.num_words, spec.num_topics

    # Topic-word distributions with a Zipf-skewed base measure.
    ranks = np.arange(1, V + 1, dtype=np.float64)
    base = ranks ** (-spec.zipf_exponent)
    base /= base.sum()
    phi = rng.dirichlet(np.maximum(spec.beta * V * base, 1e-3), size=K)  # (K, V)
    phi_cdf = np.cumsum(phi, axis=1)
    phi_cdf[:, -1] = 1.0  # guard against rounding

    theta = rng.dirichlet(np.full(K, spec.alpha), size=D)  # (D, K)

    lengths = _doc_lengths(spec, rng)
    T = int(lengths.sum())
    indptr = np.zeros(D + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])

    # Draw each token's topic: vectorize by sampling u and inverting each
    # document's theta CDF (documents have few topics; K is small).
    token_doc = np.repeat(np.arange(D, dtype=np.int64), lengths)
    theta_cdf = np.cumsum(theta, axis=1)
    theta_cdf[:, -1] = 1.0
    u = rng.random(T)
    # searchsorted per row via the "global offset" trick: each row's CDF is
    # in (0, 1]; offset row r by r so the concatenated array is sorted.
    flat_cdf = (theta_cdf + np.arange(D)[:, None]).ravel()
    token_topic = (
        np.searchsorted(flat_cdf, u + token_doc, side="left") - token_doc * K
    ).astype(np.int64)
    np.clip(token_topic, 0, K - 1, out=token_topic)

    # Draw words conditioned on topics, one vectorized pass per topic.
    token_word = np.empty(T, dtype=np.int32)
    uw = rng.random(T)
    for k in range(K):
        mask = token_topic == k
        if mask.any():
            token_word[mask] = np.searchsorted(
                phi_cdf[k], uw[mask], side="left"
            ).astype(np.int32)
    np.clip(token_word, 0, V - 1, out=token_word)

    return Corpus(token_word, indptr, V, name=spec.name)


def generate_zipf_corpus(
    spec: SyntheticSpec, seed: int | np.random.Generator = 0
) -> Corpus:
    """Draw a corpus of i.i.d. Zipf-distributed words (no planted topics)."""
    rng = np.random.default_rng(seed)
    D, V = spec.num_docs, spec.num_words
    ranks = np.arange(1, V + 1, dtype=np.float64)
    probs = ranks ** (-spec.zipf_exponent)
    probs /= probs.sum()
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0

    lengths = _doc_lengths(spec, rng)
    T = int(lengths.sum())
    indptr = np.zeros(D + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    token_word = np.searchsorted(cdf, rng.random(T), side="left").astype(np.int32)
    np.clip(token_word, 0, V - 1, out=token_word)
    return Corpus(token_word, indptr, V, name=spec.name)


def _twin_spec(
    stats: DatasetStats, num_tokens: int, num_topics: int, vocab_cap: int
) -> SyntheticSpec:
    """Scale *stats* down to ~num_tokens, preserving avg doc length."""
    avg_len = stats.avg_doc_length
    num_docs = max(4, int(round(num_tokens / avg_len)))
    factor = num_tokens / stats.num_tokens
    num_words = min(vocab_cap, max(64, int(stats.num_words * factor**0.5)))
    return SyntheticSpec(
        num_docs=num_docs,
        num_words=num_words,
        avg_doc_length=avg_len,
        num_topics=num_topics,
        zipf_exponent=stats.zipf_exponent,
        name=f"{stats.name}-twin",
    )


def nytimes_like(
    num_tokens: int = 200_000,
    num_topics: int = 32,
    seed: int = 0,
    vocab_cap: int = 8_192,
) -> Corpus:
    """A scaled-down synthetic twin of the UCI NYTimes corpus.

    Matches the paper's shape: long documents (avg length 332) whose
    θ rows sparsify slowly, so per-iteration throughput ramps up over
    the first iterations (Fig 7, left).
    """
    return generate_lda_corpus(_twin_spec(NYTIMES, num_tokens, num_topics, vocab_cap), seed)


def pubmed_like(
    num_tokens: int = 200_000,
    num_topics: int = 32,
    seed: int = 0,
    vocab_cap: int = 8_192,
) -> Corpus:
    """A scaled-down synthetic twin of the UCI PubMed corpus.

    Short documents (avg length 92): θ starts nearly as sparse as it
    ends, so throughput is close to steady-state from iteration 1
    (Fig 7, right).
    """
    return generate_lda_corpus(_twin_spec(PUBMED, num_tokens, num_topics, vocab_cap), seed)
