"""Reader/writer for the UCI bag-of-words format.

The paper's datasets (NYTimes, PubMed) are distributed in this format:

.. code-block:: text

    D
    V
    NNZ
    docId wordId count
    ...

with 1-based ``docId``/``wordId``. An optional companion ``vocab.*.txt``
file lists one word per line (line *i* = word id *i*, 1-based).

A user with the real UCI files can load them directly::

    corpus = read_uci_bow("docword.nytimes.txt", vocab_path="vocab.nytimes.txt")
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from repro.corpus.corpus import Corpus, Vocabulary

__all__ = ["read_uci_bow", "write_uci_bow", "read_uci_vocab"]


def _open_text(path: str | Path, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_uci_vocab(path: str | Path) -> Vocabulary:
    """Load a UCI ``vocab.*.txt`` file (one word per line)."""
    with _open_text(path) as fh:
        vocab = Vocabulary(line.strip() for line in fh if line.strip())
    return vocab.freeze()


def read_uci_bow(
    path: str | Path,
    vocab_path: str | Path | None = None,
    name: str | None = None,
) -> Corpus:
    """Load a UCI ``docword.*.txt`` (optionally ``.gz``) file.

    Raises
    ------
    ValueError
        On malformed headers, out-of-range ids, or an NNZ mismatch.
    """
    path = Path(path)
    with _open_text(path) as fh:
        header = [fh.readline() for _ in range(3)]
        try:
            D, V, nnz = (int(h.strip()) for h in header)
        except ValueError as exc:
            raise ValueError(f"malformed UCI header in {path}: {header!r}") from exc
        data = np.loadtxt(fh, dtype=np.int64, ndmin=2)
    if data.size == 0:
        data = np.empty((0, 3), dtype=np.int64)
    if data.shape[1] != 3:
        raise ValueError(f"expected 3 columns (doc word count); got {data.shape[1]}")
    if data.shape[0] != nnz:
        raise ValueError(f"header says NNZ={nnz} but file has {data.shape[0]} rows")
    docs, words, counts = data[:, 0] - 1, data[:, 1] - 1, data[:, 2]
    if docs.size:
        if docs.min() < 0 or docs.max() >= D:
            raise ValueError("document id out of range")
        if words.min() < 0 or words.max() >= V:
            raise ValueError("word id out of range")
    vocab = read_uci_vocab(vocab_path) if vocab_path is not None else None
    if vocab is not None and len(vocab) != V:
        raise ValueError(
            f"vocabulary file has {len(vocab)} words but header says V={V}"
        )
    corpus = Corpus.from_bow(
        docs, words, counts, num_docs=D, num_words=V, name=name or path.stem
    )
    if vocab is not None:
        corpus = Corpus(
            corpus.token_word, corpus.doc_indptr, V, vocab, corpus.name
        )
    return corpus


def write_uci_bow(corpus: Corpus, path: str | Path) -> None:
    """Write *corpus* in UCI bag-of-words format (1-based ids).

    Tokens are aggregated back into (doc, word, count) triples sorted by
    document then word, which is what the UCI files use.
    """
    token_doc = corpus.token_doc.astype(np.int64)
    token_word = corpus.token_word.astype(np.int64)
    # Aggregate duplicate (doc, word) pairs.
    key = token_doc * corpus.num_words + token_word
    uniq, counts = np.unique(key, return_counts=True)
    docs = uniq // corpus.num_words
    words = uniq % corpus.num_words
    buf = io.StringIO()
    buf.write(f"{corpus.num_docs}\n{corpus.num_words}\n{uniq.size}\n")
    for d, w, c in zip(docs, words, counts):
        buf.write(f"{d + 1} {w + 1} {c}\n")
    with _open_text(path, "wt") as fh:
        fh.write(buf.getvalue())
