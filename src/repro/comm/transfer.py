"""Fault-aware transfer primitives shared by every collective.

This module owns the retry/fallback policy that PR 3 introduced for
sync transfers (:class:`TransferRetry`), the retry loop itself
(:func:`with_retry`), and the degraded host re-route for peer copies
(:func:`resilient_p2p`). All collectives — tree, ring, cpu_gather,
hierarchical — and the serving φ re-broadcast funnel their link
operations through here, which is what lets them surface one uniform,
structured :class:`~repro.gpusim.errors.SyncPathError` naming the dead
link and the endpoint devices when a topology has no usable path,
instead of a bare mid-transfer ``LinkDown`` whose shape depends on the
algorithm.

The cluster helpers at the bottom (:func:`fanin_messages`,
:func:`fanout_messages`) time the sharded parameter-server exchange of
the LDA* baseline over Ethernet links, deduplicating the per-site
send loops that used to live in :mod:`repro.cluster.paramserver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from repro.gpusim.errors import LinkDown, SyncPathError
from repro.gpusim.memory import DeviceArray
from repro.gpusim.platform import Machine
from repro.gpusim.stream import Stream
from repro.telemetry.context import emit_counter

__all__ = [
    "TransferRetry",
    "with_retry",
    "resilient_p2p",
    "fanin_messages",
    "fanout_messages",
]

_T = TypeVar("_T")


@dataclass(frozen=True)
class TransferRetry:
    """Retry policy for link transfers during synchronization.

    When a transfer raises :class:`~repro.gpusim.errors.LinkDown`, it is
    retried up to ``max_retries`` times; each retry charges an
    exponentially growing backoff stall (``backoff_seconds`` doubling per
    attempt) on the issuing stream. If a *peer* link stays down past the
    retry budget and ``host_fallback`` is set, the copy is re-routed
    through host memory (d2h on the sender + h2d on the receiver — the
    degraded CPU-gather path of §5.2), itself retried. ``None`` anywhere
    a ``retry`` parameter is accepted means fail fast (seed behaviour).
    """

    max_retries: int = 3
    backoff_seconds: float = 1e-4
    host_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds <= 0:
            raise ValueError("backoff_seconds must be positive")

    @property
    def backoff_total_seconds(self) -> float:
        """Worst-case stall charged before the budget is exhausted
        (``backoff · (2^max_retries − 1)``); the planner prices this
        into any path that must outlast a permanently down link."""
        return self.backoff_seconds * (2.0 ** self.max_retries - 1.0)


def _path_error(
    exc: LinkDown, op: str, devices: tuple[int, ...]
) -> SyncPathError:
    return SyncPathError(
        exc.link_name, op, devices=devices, transient=exc.transient
    )


def with_retry(
    op: Callable[[], _T],
    stream: Stream,
    label: str,
    retry: TransferRetry | None,
    devices: tuple[int, ...] = (),
) -> _T:
    """Run *op*, retrying on LinkDown with backoff charged to *stream*.

    A failure that exhausts the budget (or any failure with no *retry*
    policy) is re-raised as a structured
    :class:`~repro.gpusim.errors.SyncPathError` naming the link, the
    operation *label*, and the endpoint *devices*.
    """
    if retry is None:
        try:
            return op()
        except SyncPathError:
            raise
        except LinkDown as exc:
            raise _path_error(exc, label, devices) from exc
    backoff = retry.backoff_seconds
    for attempt in range(retry.max_retries + 1):
        try:
            return op()
        except SyncPathError:
            raise
        except LinkDown as exc:
            if attempt == retry.max_retries:
                raise _path_error(exc, label, devices) from exc
            emit_counter(
                "transfer_retries_total", 1,
                help="link transfers retried after a transient failure",
                link=exc.link_name, op=label,
            )
            stream.enqueue(
                duration=backoff, kind="stall", label=f"retry_backoff:{label}"
            )
            backoff *= 2.0
    raise AssertionError("unreachable")  # pragma: no cover


def resilient_p2p(
    machine: Machine,
    dst: DeviceArray,
    src: DeviceArray,
    dst_stream: Stream,
    src_stream: Stream,
    label: str,
    retry: TransferRetry | None,
) -> tuple[float, float]:
    """P2P copy with retry and, when the peer link stays down, a degraded
    re-route through host memory (the paper's rejected gather path,
    pressed into service as a fault-tolerance fallback)."""
    devices = (src.device.device_id, dst.device.device_id)
    try:
        return with_retry(
            lambda: machine.memcpy_p2p(dst, src, stream=dst_stream, label=label),
            dst_stream, label, retry, devices=devices,
        )
    except LinkDown as exc:
        if retry is None or not retry.host_fallback:
            raise
        emit_counter(
            "degraded_sync_total", 1,
            help="p2p transfers re-routed through host memory",
            link=exc.link_name, op=label,
        )
        _, _, host = with_retry(
            lambda: machine.memcpy_d2h(
                src, stream=src_stream, label=f"{label}_via_host_d2h",
                pinned=False,
            ),
            src_stream, f"{label}_via_host_d2h", retry,
            devices=(src.device.device_id,),
        )
        staged = src_stream.record(label=f"{label}_staged")
        dst_stream.wait_event(staged)
        return with_retry(
            lambda: machine.memcpy_h2d(
                dst, host, stream=dst_stream, label=f"{label}_via_host_h2d",
                pinned=False,
            ),
            dst_stream, f"{label}_via_host_h2d", retry,
            devices=(dst.device.device_id,),
        )


# ----------------------------------------------------------------------
# Cluster (parameter-server) message helpers
# ----------------------------------------------------------------------

def fanin_messages(
    network,
    dst: int,
    per_src_bytes: Iterable[tuple[int, float]],
    earliest: float,
    op: str,
) -> tuple[float, float]:
    """Time one message from each ``(src, nbytes)`` to node *dst*.

    Returns ``(total_bytes, completion_time)``; completion is when the
    last message lands. Used for the parameter-server *pull* (every
    shard node sends its φ rows to one worker).
    """
    total = 0.0
    done = earliest
    for src, nbytes in per_src_bytes:
        total += nbytes
        _, end = network.send(src, dst, nbytes, earliest)
        done = max(done, end)
        emit_counter(
            "cluster_bytes_total", nbytes,
            help="parameter-server bytes moved per operation",
            op=op,
        )
    return total, done


def fanout_messages(
    network,
    src: int,
    per_dst_bytes: Iterable[tuple[int, float]],
    earliest: float,
    op: str,
) -> tuple[float, float]:
    """Time one message from node *src* to each ``(dst, nbytes)``.

    Returns ``(total_bytes, completion_time)``. Used for the
    parameter-server *push* (one worker sends its Δφ to every shard).
    """
    total = 0.0
    done = earliest
    for dst, nbytes in per_dst_bytes:
        total += nbytes
        _, end = network.send(src, dst, nbytes, earliest)
        done = max(done, end)
        emit_counter(
            "cluster_bytes_total", nbytes,
            help="parameter-server bytes moved per operation",
            op=op,
        )
    return total, done
