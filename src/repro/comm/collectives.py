"""The pluggable collectives behind model synchronization (paper §5.2).

After every iteration the per-GPU *partial* φ replicas (each holding
only its own chunks' counts) must be summed into the full φ and
redistributed. The paper rejects the intuitive gather-to-CPU approach
(the CPU adds slower than GPUs, and the host link becomes a serial
bottleneck) in favour of a **binary reduce tree over peer-to-peer
copies** — ⌈log₂ G⌉ steps whose transfers use disjoint GPU pairs and
therefore disjoint links (Fig 4) — followed by a broadcast of the
root's result. Which strategy wins, though, depends on the fabric: on
NVLink the tree's few fat hops are unbeatable, on a dual-socket PCIe
box the inter-socket bridge is the bottleneck and a **hierarchical**
scheme (intra-socket tree + inter-socket ring between socket leaders)
halves the bridge traffic, and with dead peer links the rejected
CPU-gather becomes the only path left.

This module provides each strategy twice:

- as an **executable** primitive (``reduce_phi_tree``, ``broadcast_phi``,
  ``ring_allreduce_phi``, ``cpu_gather_sync``,
  ``hierarchical_allreduce_phi``) that works on arbitrary *sublists* of
  replicas — positions carry their devices, so the hierarchical
  composition and the elastic G−1 path fall out for free; and
- as a registered :class:`Collective` with a cost ``estimate`` — the
  analytic mirror of the simulator's link/kernel charges — that the
  :class:`~repro.comm.planner.SyncPlanner` ranks per topology and
  payload.

Because φ is summed in exact integer arithmetic, every collective is
bit-identical: the planner may pick freely on cost alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.comm.topology import Topology
from repro.comm.transfer import TransferRetry, resilient_p2p, with_retry
from repro.core.kernels import KernelConfig, phi_reduce_cost
from repro.gpusim.costmodel import KernelCost
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import DeviceArray
from repro.gpusim.platform import Machine
from repro.gpusim.stream import Stream
from repro.telemetry.context import emit_counter, emit_observe

__all__ = [
    "SyncContext",
    "CostEstimate",
    "Collective",
    "register",
    "get_collective",
    "collective_names",
    "collectives",
    "reduce_phi_tree",
    "broadcast_phi",
    "cpu_gather_sync",
    "ring_allreduce_phi",
    "hierarchical_allreduce_phi",
]


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------

@dataclass
class SyncContext:
    """Everything a collective needs to all-reduce the φ replicas.

    ``partials[g]`` / ``fulls[g]`` / ``scratch[g]`` / ``streams[g]``
    belong to the same (arbitrary) device — positions are logical ranks,
    devices come from the arrays, so an elastic run over surviving GPUs
    {0, 2, 3} needs no renumbering.
    """

    machine: Machine
    partials: list
    fulls: list
    scratch: list
    streams: list
    config: KernelConfig
    retry: TransferRetry | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.partials[0].shape

    @property
    def devices(self) -> tuple[int, ...]:
        return tuple(p.device.device_id for p in self.partials)


# ----------------------------------------------------------------------
# Executable primitives
# ----------------------------------------------------------------------

def _add_kernel(dst: DeviceArray, src: DeviceArray, config: KernelConfig) -> KernelLaunch:
    """dst += src (element-wise integer add on the destination GPU)."""
    K, V = dst.shape

    def body() -> None:
        dst.data += src.data

    return KernelLaunch(
        fn=body,
        cost=phi_reduce_cost(K, V, config),
        label="phi_add",
        kind="sync",
    )


def reduce_phi_tree(
    machine: Machine,
    partials: list[DeviceArray],
    scratch: list[DeviceArray],
    streams: list[Stream],
    config: KernelConfig,
    retry: TransferRetry | None = None,
) -> DeviceArray:
    """Tree-reduce the partial replicas into ``partials[0]`` (Fig 4).

    At stride s = 1, 2, 4, … position ``i+s`` sends its accumulated
    partial to position ``i``'s scratch buffer, and position ``i`` adds
    it in. Transfers within one step use disjoint device pairs, so they
    proceed in parallel — the reduction completes in ⌈log₂ G⌉ serial
    steps. Positions need not be device ids: the hierarchical collective
    runs this on per-socket sublists.

    Returns ``partials[0]``, which afterwards holds Σ_g φ_g.
    """
    G = len(partials)
    if not (len(scratch) == len(streams) == G):
        raise ValueError("partials, scratch, and streams must align")
    stride = 1
    while stride < G:
        for i in range(0, G - stride, 2 * stride):
            sender = i + stride
            src_dev = partials[sender].device.device_id
            dst_dev = partials[i].device.device_id
            ready = streams[sender].record(label=f"phi_ready[{src_dev}]")
            streams[i].wait_event(ready)
            c_start, _ = resilient_p2p(
                machine, scratch[i], partials[sender], streams[i],
                streams[sender], "phi_reduce_copy", retry,
            )
            emit_counter(
                "sync_bytes_total", partials[sender].nbytes,
                help="bytes moved per link during model synchronization",
                link=f"{src_dev}->{dst_dev}", phase="reduce",
            )
            _, a_end, _ = _add_kernel(partials[i], scratch[i], config).launch(
                streams[i]
            )
            emit_observe(
                "sync_reduce_step_seconds", a_end - c_start,
                help="simulated copy+add time of one reduce-tree step",
                stride=str(stride),
            )
        stride *= 2
    return partials[0]


def broadcast_phi(
    machine: Machine,
    source: DeviceArray,
    destinations: list[DeviceArray],
    streams: list[Stream],
    config: KernelConfig,
    retry: TransferRetry | None = None,
) -> None:
    """Tree-broadcast *source* (the reduced φ at position 0) everywhere.

    Inverse of the reduce tree: at stride 1, 2, 4, … each position that
    already has the result forwards it, doubling the holder set each
    step — again ⌈log₂ G⌉ serial steps.

    ``destinations[g]`` is position *g*'s full-φ buffer;
    ``destinations[0]`` lives on the same device as *source* and
    receives a device-local copy (charged as a kernel, not a link
    transfer).
    """
    G = len(destinations)
    if len(streams) != G:
        raise ValueError("destinations and streams must align")
    if destinations[0].device is not source.device:
        raise ValueError("destinations[0] must live on the source device")

    def local_copy() -> None:
        destinations[0].data[...] = source.data

    K, V = source.shape
    n = float(K) * V * config.phi_bytes
    KernelLaunch(
        fn=local_copy,
        cost=KernelCost(bytes_read=n, bytes_written=n),
        label="phi_local_copy",
        kind="sync",
    ).launch(streams[0])

    # Doubling pattern: holders {0} -> {0,1} -> {0,1,2,3} -> ...
    have = [0]
    step = 1
    while step < G:
        new_holders = []
        for h in have:
            peer = h + step
            if peer < G:
                src_dev = destinations[h].device.device_id
                dst_dev = destinations[peer].device.device_id
                ready = streams[h].record(label=f"phi_have[{src_dev}]")
                streams[peer].wait_event(ready)
                resilient_p2p(
                    machine, destinations[peer], destinations[h],
                    streams[peer], streams[h], "phi_broadcast_copy", retry,
                )
                emit_counter(
                    "sync_bytes_total", destinations[h].nbytes,
                    help="bytes moved per link during model synchronization",
                    link=f"{src_dev}->{dst_dev}", phase="broadcast",
                )
                new_holders.append(peer)
        have.extend(new_holders)
        step *= 2


def cpu_gather_sync(
    machine: Machine,
    partials: list[DeviceArray],
    destinations: list[DeviceArray],
    streams: list[Stream],
    config: KernelConfig,
    retry: TransferRetry | None = None,
) -> None:
    """The intuitive baseline the paper rejects (§5.2): pull every
    replica to the host, add on the CPU, push the sum back to every GPU.

    All transfers contend on the host links and the adds run at CPU
    speed; the ablation bench shows the gap versus the GPU tree. It is
    also the path of last resort when peer links are down — no leg of
    it touches the P2P fabric.
    """
    G = len(partials)
    host_copies: list[np.ndarray] = []
    for g in range(G):
        dev = partials[g].device.device_id
        # The gather lands in the host model arrays — pageable memory,
        # so it runs at the staging-copy rate (unlike the pinned chunk
        # buffers WorkSchedule2 streams through).
        _, _, arr = with_retry(
            lambda g=g: machine.memcpy_d2h(
                partials[g], stream=streams[g], label="phi_gather", pinned=False
            ),
            streams[g], "phi_gather", retry, devices=(dev,),
        )
        emit_counter(
            "sync_bytes_total", partials[g].nbytes,
            help="bytes moved per link during model synchronization",
            link=f"{dev}->host", phase="gather",
        )
        host_copies.append(arr)
    machine.synchronize()

    K, V = partials[0].shape
    n = float(K) * V

    def host_add() -> np.ndarray:
        total = host_copies[0].astype(np.int64)
        for arr in host_copies[1:]:
            total += arr
        return total.astype(partials[0].dtype)

    total = machine.host_compute(
        host_add,
        KernelCost(
            bytes_read=G * n * config.phi_bytes,
            bytes_written=n * config.phi_bytes,
            flops=(G - 1) * n,
        ),
        label="phi_host_add",
    )
    for g in range(G):
        dev = destinations[g].device.device_id
        with_retry(
            lambda g=g: machine.memcpy_h2d(
                destinations[g], total, stream=streams[g], label="phi_scatter",
                pinned=False,
            ),
            streams[g], "phi_scatter", retry, devices=(dev,),
        )
        emit_counter(
            "sync_bytes_total", destinations[g].nbytes,
            help="bytes moved per link during model synchronization",
            link=f"host->{dev}", phase="scatter",
        )


def ring_allreduce_phi(
    machine: Machine,
    partials: list[DeviceArray],
    fulls: list[DeviceArray],
    streams: list[Stream],
    config: KernelConfig,
    retry: TransferRetry | None = None,
) -> None:
    """Ring all-reduce — the alternative the tree is benchmarked against.

    Standard two-phase ring (reduce-scatter then all-gather) over φ
    split into G row segments: 2·(G−1) steps, each moving only 1/G of
    the replica per link, with every neighbouring link active in
    parallel. At large G this moves less data per link than the tree
    (2·(G−1)/G replicas vs ⌈log₂G⌉), at the cost of more latency-bound
    steps — the trade ``bench_ext_ring_allreduce.py`` measures. Works on
    arbitrary sublists (the hierarchical collective rings the socket
    leaders).

    On completion every position's ``fulls[g]`` (and its ``partials[g]``)
    holds Σ_g φ_g.
    """
    G = len(partials)
    if not (len(fulls) == len(streams) == G):
        raise ValueError("partials, fulls, and streams must align")
    K, V = partials[0].shape
    phi_b = config.phi_bytes

    def local_full_copy(g: int) -> None:
        def body(g: int = g) -> None:
            fulls[g].data[...] = partials[g].data

        n = float(K) * V * phi_b
        KernelLaunch(
            body,
            KernelCost(bytes_read=n, bytes_written=n),
            "phi_local_copy",
            kind="sync",
        ).launch(streams[g])

    if G == 1:
        local_full_copy(0)
        return

    # Row-segment boundaries.
    edges = [K * i // G for i in range(G + 1)]
    seg_rows = [edges[i + 1] - edges[i] for i in range(G)]
    max_rows = max(seg_rows)

    send_bufs = [
        DeviceArray(partials[g].device, (max_rows, V), partials[g].dtype,
                    label=f"ring_send{g}")
        for g in range(G)
    ]
    recv_bufs = [
        DeviceArray(partials[g].device, (max_rows, V), partials[g].dtype,
                    label=f"ring_recv{g}")
        for g in range(G)
    ]

    def run_phase(step: int, reduce_phase: bool) -> None:
        """One ring step: stage → transfer → combine, all GPUs."""
        seg_bytes = float(max_rows) * V * phi_b
        stage_events = []
        send_chunk = [0] * G
        recv_chunk = [0] * G
        for g in range(G):
            if reduce_phase:
                send_chunk[g] = (g - step) % G
                recv_chunk[g] = (g - step - 1) % G
            else:
                send_chunk[g] = (g + 1 - step) % G
                recv_chunk[g] = (g - step) % G

        for g in range(G):
            c = send_chunk[g]
            lo, hi = edges[c], edges[c + 1]

            def stage(g: int = g, lo: int = lo, hi: int = hi) -> None:
                send_bufs[g].data[: hi - lo] = partials[g].data[lo:hi]

            KernelLaunch(
                stage,
                KernelCost(bytes_read=seg_bytes, bytes_written=seg_bytes),
                "ring_stage",
                kind="sync",
            ).launch(streams[g])
            stage_events.append(streams[g].record(label=f"ring_staged[{g}]"))

        for g in range(G):
            dst = (g + 1) % G
            streams[dst].wait_event(stage_events[g])
            resilient_p2p(
                machine, recv_bufs[dst], send_bufs[g], streams[dst],
                streams[g], "ring_transfer", retry,
            )
            emit_counter(
                "sync_bytes_total", send_bufs[g].nbytes,
                help="bytes moved per link during model synchronization",
                link=(
                    f"{send_bufs[g].device.device_id}"
                    f"->{recv_bufs[dst].device.device_id}"
                ),
                phase="ring_reduce" if reduce_phase else "ring_gather",
            )

        for g in range(G):
            c = recv_chunk[g]
            lo, hi = edges[c], edges[c + 1]

            def combine(g: int = g, lo: int = lo, hi: int = hi) -> None:
                if reduce_phase:
                    partials[g].data[lo:hi] += recv_bufs[g].data[: hi - lo]
                else:
                    partials[g].data[lo:hi] = recv_bufs[g].data[: hi - lo]

            KernelLaunch(
                combine,
                KernelCost(
                    bytes_read=2 * seg_bytes if reduce_phase else seg_bytes,
                    bytes_written=seg_bytes,
                    flops=float(max_rows) * V if reduce_phase else 0.0,
                ),
                "ring_combine",
                kind="sync",
            ).launch(streams[g])

    for step in range(G - 1):
        run_phase(step, reduce_phase=True)
    for step in range(G - 1):
        run_phase(step, reduce_phase=False)
    for g in range(G):
        local_full_copy(g)
    for buf in send_bufs + recv_bufs:
        buf.free()


def _socket_groups(machine: Machine, arrays: list[DeviceArray]) -> list[list[int]]:
    """Positions in *arrays* grouped by their device's socket
    (ascending socket id, original order within a group)."""
    by_socket: dict[int, list[int]] = {}
    for pos, arr in enumerate(arrays):
        by_socket.setdefault(
            machine.socket_of(arr.device.device_id), []
        ).append(pos)
    return [by_socket[s] for s in sorted(by_socket)]


def hierarchical_allreduce_phi(
    machine: Machine,
    partials: list[DeviceArray],
    fulls: list[DeviceArray],
    scratch: list[DeviceArray],
    streams: list[Stream],
    config: KernelConfig,
    retry: TransferRetry | None = None,
) -> None:
    """Topology-aware all-reduce: intra-socket tree, inter-socket ring.

    The EZLDA-style composition for dual-socket PCIe boxes: GPUs under
    one PCIe switch first tree-reduce at switch speed into a per-socket
    *leader*; the leaders then ring-all-reduce across the (slow)
    inter-socket bridge, moving each byte over the bridge only once per
    direction instead of the tree's repeated full-replica hops; finally
    each leader tree-broadcasts the full model back down its switch.

    Degenerates gracefully: one socket ⇒ tree + broadcast only; one GPU
    per socket ⇒ a pure ring. Bit-identical to every other collective
    (integer adds commute).
    """
    G = len(partials)
    if not (len(fulls) == len(scratch) == len(streams) == G):
        raise ValueError("partials, fulls, scratch, and streams must align")
    groups = _socket_groups(machine, partials)

    # Phase 1: intra-socket tree reduce into each group's leader.
    for grp in groups:
        if len(grp) > 1:
            reduce_phi_tree(
                machine,
                [partials[p] for p in grp],
                [scratch[p] for p in grp],
                [streams[p] for p in grp],
                config, retry=retry,
            )

    # Phase 2: inter-socket ring all-reduce among the socket leaders
    # (a single leader degenerates to the local full-copy).
    leaders = [grp[0] for grp in groups]
    ring_allreduce_phi(
        machine,
        [partials[p] for p in leaders],
        [fulls[p] for p in leaders],
        [streams[p] for p in leaders],
        config, retry=retry,
    )

    # Phase 3: intra-socket broadcast of the full model from each leader.
    for grp in groups:
        if len(grp) > 1:
            broadcast_phi(
                machine,
                fulls[grp[0]],
                [fulls[p] for p in grp],
                [streams[p] for p in grp],
                config, retry=retry,
            )


# ----------------------------------------------------------------------
# Cost estimation (the analytic mirror of the simulator's charges)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CostEstimate:
    """Predicted footprint of one collective on one topology.

    ``seconds`` is the predicted simulated completion time (``inf``
    when the topology offers no usable path), ``bytes_on_wire`` the
    link bytes as charged (pageable staging counts 2×, matching the
    simulator), ``steps`` the serial step count.
    """

    seconds: float
    bytes_on_wire: float
    steps: int

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.seconds)


_INFEASIBLE = (math.inf, 0.0)


def _kernel_seconds(machine: Machine, dev: int, cost: KernelCost) -> float:
    return machine.cost_model.kernel_seconds(machine.gpus[dev].spec, cost)


def _copy_cost(K: int, V: int, phi_b: float) -> KernelCost:
    n = float(K) * V * phi_b
    return KernelCost(bytes_read=n, bytes_written=n)


def _p2p_path(
    topo: Topology,
    retry: TransferRetry | None,
    src: int,
    dst: int,
    nbytes: float,
) -> tuple[float, float]:
    """(seconds, wire_bytes) for one peer message, pricing the degraded
    host re-route when the peer link is permanently down."""
    info = topo.p2p_info(src, dst)
    if info.up:
        return info.transfer_seconds(nbytes), nbytes
    if retry is None or not retry.host_fallback:
        return _INFEASIBLE
    hs, hd = topo.host[src], topo.host[dst]
    if not (hs.up and hd.up):
        return _INFEASIBLE
    # The runtime exhausts the peer-link retry budget (backoff stalls)
    # before falling back, then stages through pageable host memory,
    # which charges 2x the payload per hop.
    seconds = (
        retry.backoff_total_seconds
        + hs.transfer_seconds(2.0 * nbytes)
        + hd.transfer_seconds(2.0 * nbytes)
    )
    return seconds, 4.0 * nbytes


def _tree_reduce_estimate(
    machine: Machine,
    topo: Topology,
    devs: list[int],
    nbytes: float,
    add_cost: KernelCost,
    retry: TransferRetry | None,
) -> tuple[float, float, int]:
    total = wire = 0.0
    steps = 0
    G = len(devs)
    stride = 1
    while stride < G:
        step_times = []
        for i in range(0, G - stride, 2 * stride):
            s, w = _p2p_path(topo, retry, devs[i + stride], devs[i], nbytes)
            wire += w
            step_times.append(s + _kernel_seconds(machine, devs[i], add_cost))
        total += max(step_times)
        steps += 1
        stride *= 2
    return total, wire, steps


def _broadcast_estimate(
    machine: Machine,
    topo: Topology,
    devs: list[int],
    nbytes: float,
    copy_cost: KernelCost,
    retry: TransferRetry | None,
) -> tuple[float, float, int]:
    total = _kernel_seconds(machine, devs[0], copy_cost)
    wire = 0.0
    steps = 0
    G = len(devs)
    have = [0]
    step = 1
    while step < G:
        new_holders = []
        step_times = []
        for h in have:
            peer = h + step
            if peer < G:
                s, w = _p2p_path(topo, retry, devs[h], devs[peer], nbytes)
                wire += w
                step_times.append(s)
                new_holders.append(peer)
        if step_times:
            total += max(step_times)
            steps += 1
        have.extend(new_holders)
        step *= 2
    return total, wire, steps


def _ring_estimate(
    machine: Machine,
    topo: Topology,
    devs: list[int],
    K: int,
    V: int,
    config: KernelConfig,
    retry: TransferRetry | None,
) -> tuple[float, float, int]:
    phi_b = config.phi_bytes
    copy_s = _kernel_seconds(machine, devs[0], _copy_cost(K, V, phi_b))
    G = len(devs)
    if G == 1:
        return copy_s, 0.0, 0
    edges = [K * i // G for i in range(G + 1)]
    max_rows = max(edges[i + 1] - edges[i] for i in range(G))
    seg = float(max_rows) * V * phi_b
    stage_s = _kernel_seconds(
        machine, devs[0], KernelCost(bytes_read=seg, bytes_written=seg)
    )
    reduce_s = _kernel_seconds(
        machine, devs[0],
        KernelCost(
            bytes_read=2 * seg, bytes_written=seg, flops=float(max_rows) * V
        ),
    )
    gather_s = _kernel_seconds(
        machine, devs[0], KernelCost(bytes_read=seg, bytes_written=seg)
    )
    link_times = []
    step_wire = 0.0
    for g in range(G):
        s, w = _p2p_path(topo, retry, devs[g], devs[(g + 1) % G], seg)
        link_times.append(s)
        step_wire += w
    slowest = max(link_times)
    if not math.isfinite(slowest):
        return math.inf, 0.0, 0
    total = (
        (G - 1) * (stage_s + slowest + reduce_s)
        + (G - 1) * (stage_s + slowest + gather_s)
        + copy_s
    )
    return total, 2.0 * (G - 1) * step_wire, 2 * (G - 1)


def _cpu_gather_estimate(
    machine: Machine,
    topo: Topology,
    devs: list[int],
    K: int,
    V: int,
    config: KernelConfig,
) -> tuple[float, float, int]:
    n_el = float(K) * V
    n = n_el * config.phi_bytes
    by_link: dict[str, list] = {}
    for d in devs:
        info = topo.host[d]
        if not info.up:
            return math.inf, 0.0, 0
        by_link.setdefault(info.name, []).append(info)
    # Pageable staging charges 2x; devices sharing an uplink serialize.
    phase_s = max(
        sum(i.transfer_seconds(2.0 * n) for i in infos)
        for infos in by_link.values()
    )
    host_add = machine.cost_model.kernel_seconds(
        machine.host_spec,
        KernelCost(
            bytes_read=len(devs) * n,
            bytes_written=n,
            flops=(len(devs) - 1) * n_el,
        ),
    )
    total = phase_s + host_add + phase_s
    return total, 4.0 * n * len(devs), 2 * len(devs) + 1


# ----------------------------------------------------------------------
# Collective interface + registry
# ----------------------------------------------------------------------

class Collective:
    """One synchronization strategy: executable + cost-estimable."""

    name: str = ""

    def allreduce(self, ctx: SyncContext) -> None:
        """Sum every ``ctx.partials`` into every ``ctx.fulls``."""
        raise NotImplementedError

    def estimate(
        self,
        machine: Machine,
        topo: Topology,
        shape: tuple[int, int],
        config: KernelConfig,
        retry: TransferRetry | None = None,
    ) -> CostEstimate:
        """Predicted cost of :meth:`allreduce` on *topo* for a (K, V)
        payload — the planner's ranking input."""
        raise NotImplementedError


class TreeCollective(Collective):
    """Reduce tree into position 0 + tree broadcast (paper Fig 4)."""

    name = "gpu_tree"

    def allreduce(self, ctx: SyncContext) -> None:
        root = reduce_phi_tree(
            ctx.machine, ctx.partials, ctx.scratch, ctx.streams, ctx.config,
            retry=ctx.retry,
        )
        broadcast_phi(
            ctx.machine, root, ctx.fulls, ctx.streams, ctx.config,
            retry=ctx.retry,
        )

    def estimate(self, machine, topo, shape, config, retry=None) -> CostEstimate:
        K, V = shape
        nbytes = float(K) * V * config.phi_bytes
        devs = list(topo.devices)
        add_cost = phi_reduce_cost(K, V, config)
        r_s, r_w, r_steps = _tree_reduce_estimate(
            machine, topo, devs, nbytes, add_cost, retry
        )
        b_s, b_w, b_steps = _broadcast_estimate(
            machine, topo, devs, nbytes, _copy_cost(K, V, config.phi_bytes),
            retry,
        )
        return CostEstimate(r_s + b_s, r_w + b_w, r_steps + b_steps)


class RingCollective(Collective):
    """Two-phase ring all-reduce (reduce-scatter + all-gather)."""

    name = "ring"

    def allreduce(self, ctx: SyncContext) -> None:
        ring_allreduce_phi(
            ctx.machine, ctx.partials, ctx.fulls, ctx.streams, ctx.config,
            retry=ctx.retry,
        )

    def estimate(self, machine, topo, shape, config, retry=None) -> CostEstimate:
        K, V = shape
        s, w, steps = _ring_estimate(
            machine, topo, list(topo.devices), K, V, config, retry
        )
        return CostEstimate(s, w, steps)


class CpuGatherCollective(Collective):
    """Gather to the host, add on the CPU, scatter back (§5.2's rejected
    baseline — and the only all-host path when peer links are down)."""

    name = "cpu_gather"

    def allreduce(self, ctx: SyncContext) -> None:
        cpu_gather_sync(
            ctx.machine, ctx.partials, ctx.fulls, ctx.streams, ctx.config,
            retry=ctx.retry,
        )

    def estimate(self, machine, topo, shape, config, retry=None) -> CostEstimate:
        K, V = shape
        s, w, steps = _cpu_gather_estimate(
            machine, topo, list(topo.devices), K, V, config
        )
        return CostEstimate(s, w, steps)


class HierarchicalCollective(Collective):
    """Intra-socket tree + inter-socket leader ring + intra-socket
    broadcast — the dual-socket PCIe specialist."""

    name = "hierarchical"

    def allreduce(self, ctx: SyncContext) -> None:
        hierarchical_allreduce_phi(
            ctx.machine, ctx.partials, ctx.fulls, ctx.scratch, ctx.streams,
            ctx.config, retry=ctx.retry,
        )

    def estimate(self, machine, topo, shape, config, retry=None) -> CostEstimate:
        K, V = shape
        phi_b = config.phi_bytes
        nbytes = float(K) * V * phi_b
        add_cost = phi_reduce_cost(K, V, config)
        copy_cost = _copy_cost(K, V, phi_b)
        groups = [list(g) for g in topo.sockets]

        # Phase 1: per-socket tree reductions run in parallel.
        p1 = 0.0
        wire = 0.0
        p1_steps = 0
        for grp in groups:
            if len(grp) > 1:
                s, w, st = _tree_reduce_estimate(
                    machine, topo, grp, nbytes, add_cost, retry
                )
                p1 = max(p1, s)
                wire += w
                p1_steps = max(p1_steps, st)

        # Phase 2: leader ring across the sockets.
        leaders = [grp[0] for grp in groups]
        p2, w2, p2_steps = _ring_estimate(
            machine, topo, leaders, K, V, config, retry
        )
        wire += w2

        # Phase 3: per-socket broadcasts run in parallel.
        p3 = 0.0
        p3_steps = 0
        for grp in groups:
            if len(grp) > 1:
                s, w, st = _broadcast_estimate(
                    machine, topo, grp, nbytes, copy_cost, retry
                )
                p3 = max(p3, s)
                wire += w
                p3_steps = max(p3_steps, st)

        return CostEstimate(p1 + p2 + p3, wire, p1_steps + p2_steps + p3_steps)


_COLLECTIVES: dict[str, Collective] = {}


def register(collective: Collective) -> Collective:
    """Add *collective* to the registry (registration order is the
    planner's tie-break order: earlier wins on equal cost)."""
    if not collective.name:
        raise ValueError("collective must have a name")
    if collective.name in _COLLECTIVES:
        raise ValueError(f"collective {collective.name!r} already registered")
    _COLLECTIVES[collective.name] = collective
    return collective


def get_collective(name: str) -> Collective:
    """Look a registered collective up by name."""
    try:
        return _COLLECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown sync algorithm {name!r}; choose from "
            + ", ".join(("auto", *_COLLECTIVES))
        ) from None


def collective_names() -> tuple[str, ...]:
    """Registered collective names, in registration (tie-break) order."""
    return tuple(_COLLECTIVES)


def collectives() -> tuple[Collective, ...]:
    """The registered collectives, in registration order."""
    return tuple(_COLLECTIVES.values())


# The seed default registers first, so it wins every cost tie — auto
# can never be slower than the old hard-wired gpu_tree on equal terms.
register(TreeCollective())
register(RingCollective())
register(CpuGatherCollective())
register(HierarchicalCollective())
