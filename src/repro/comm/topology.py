"""Topology descriptors: what the sync planner knows about the wires.

A :class:`Topology` is an immutable snapshot of the communication
fabric between a set of devices, derived from a
:class:`~repro.gpusim.platform.Machine` (or a
:class:`~repro.cluster.network.ClusterNetwork`): which devices exist,
how they group into sockets (root complexes), and the effective
bandwidth / latency / health of every host uplink and peer link.

The planner (:mod:`repro.comm.planner`) consumes only this snapshot —
never the machine directly — so cost estimates see exactly what a real
collective would: a degraded link shows its scaled bandwidth, a link
taken down by fault injection shows ``up=False``, and a dead GPU is
simply absent from ``devices`` (the elastic G−1 path). Transient
faults (``fail_next``) are deliberately *invisible* here: they are a
runtime-retry concern, not a planning concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.interconnect import Link
from repro.gpusim.platform import Machine

__all__ = ["LinkInfo", "Topology", "NVLINK_CLASS_GBPS"]

#: Effective GB/s above which a peer link is classified as NVLink-class
#: fabric (PCIe switch/bridge paths top out far below this).
NVLINK_CLASS_GBPS = 50.0


@dataclass(frozen=True)
class LinkInfo:
    """One link as the planner sees it.

    ``kind`` is one of ``"host"`` (PCIe uplink to the root complex),
    ``"p2p_switch"`` (peer pair under one PCIe switch / socket),
    ``"p2p_bridge"`` (peer pair across the inter-socket bridge),
    ``"nvlink"`` (NVLink-class peer fabric), or ``"eth"`` (cluster
    Ethernet). ``bandwidth_gbps`` is the *effective* rate — degradation
    scaling is already applied.
    """

    name: str
    kind: str
    bandwidth_gbps: float
    latency_seconds: float
    up: bool

    @property
    def bandwidth_bytes(self) -> float:
        return self.bandwidth_gbps * 1e9

    def transfer_seconds(self, nbytes: float) -> float:
        """Uncontended time for one *nbytes* message over this link."""
        return self.latency_seconds + nbytes / self.bandwidth_bytes


def _info(link: Link, kind: str) -> LinkInfo:
    return LinkInfo(
        name=link.name,
        kind=kind,
        bandwidth_gbps=link.bandwidth_gbps * link.bandwidth_scale,
        latency_seconds=link.latency_seconds,
        up=link.up,
    )


@dataclass(frozen=True)
class Topology:
    """Immutable fabric snapshot for one set of devices.

    Attributes
    ----------
    devices: the participating device ids, in position order.
    sockets: devices grouped by root complex, one tuple per socket
        (ascending socket id; the hierarchical collective's grouping).
    host: device id → its host-uplink :class:`LinkInfo`.
    p2p: ``(min_id, max_id)`` → the peer link between that pair
        (empty for cluster topologies, where all traffic is host/eth).
    """

    devices: tuple[int, ...]
    sockets: tuple[tuple[int, ...], ...]
    host: dict[int, LinkInfo] = field(default_factory=dict)
    p2p: dict[tuple[int, int], LinkInfo] = field(default_factory=dict)

    @classmethod
    def from_machine(
        cls, machine: Machine, devices: list[int] | None = None
    ) -> "Topology":
        """Snapshot *machine*'s fabric for *devices* (default: the
        alive-GPU set, which is what an elastic G−1 run syncs over)."""
        devs = (
            tuple(int(d) for d in devices)
            if devices is not None
            else tuple(g.device_id for g in machine.alive_gpus)
        )
        by_socket: dict[int, list[int]] = {}
        for d in devs:
            by_socket.setdefault(machine.socket_of(d), []).append(d)
        sockets = tuple(tuple(by_socket[s]) for s in sorted(by_socket))
        host = {d: _info(machine.pcie[d], "host") for d in devs}
        p2p: dict[tuple[int, int], LinkInfo] = {}
        for a in devs:
            for b in devs:
                if a >= b:
                    continue
                link = machine.p2p_link(a, b)
                effective = link.bandwidth_gbps * link.bandwidth_scale
                if effective >= NVLINK_CLASS_GBPS:
                    kind = "nvlink"
                elif machine.socket_of(a) == machine.socket_of(b):
                    kind = "p2p_switch"
                else:
                    kind = "p2p_bridge"
                p2p[(a, b)] = _info(link, kind)
        return cls(devices=devs, sockets=sockets, host=host, p2p=p2p)

    @classmethod
    def from_cluster(cls, network) -> "Topology":
        """Snapshot a :class:`~repro.cluster.network.ClusterNetwork`:
        every node is its own socket and all traffic rides its eth
        uplink — there are no peer links. Nodes killed by fault
        injection (``node_failure``) are excluded — a sync plan must
        never route through a dead node."""
        devs = tuple(
            d for d in range(network.num_nodes) if network.node_alive(d)
        )
        return cls(
            devices=devs,
            sockets=tuple((d,) for d in devs),
            host={d: _info(network.links[d], "eth") for d in devs},
            p2p={},
        )

    # ------------------------------------------------------------------
    def p2p_info(self, a: int, b: int) -> LinkInfo:
        """The peer link between devices *a* and *b*."""
        if a == b:
            raise ValueError("no p2p link from a device to itself")
        return self.p2p[(min(a, b), max(a, b))]

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    @property
    def has_nvlink(self) -> bool:
        return any(info.kind == "nvlink" for info in self.p2p.values())

    def describe(self) -> str:
        """Compact label for telemetry: ``"4gpu-2sock-pcie"`` etc."""
        if not self.devices:
            return "0gpu"
        if self.p2p:
            fabric = "nvlink" if self.has_nvlink else "pcie"
        else:
            fabric = next(iter(self.host.values())).kind if self.host else "?"
        return f"{len(self.devices)}gpu-{self.num_sockets}sock-{fabric}"
