"""Cluster collectives: the inter-node φ-sync leg of multi-node CuLDA.

Multi-node training runs the paper's intra-node reduce tree (§5.2) on
each machine, then combines the per-node partial counts across the
Ethernet fabric. This module provides the two interchangeable backends
for that inter-node leg, behind the same registry/planner pattern as
the GPU collectives in :mod:`repro.comm.collectives`:

- ``eth_ring`` — a leader ring over :class:`ClusterNetwork`: each
  node's leader GPU contributes its node-summed φ, and the leaders run
  a segmented ring all-reduce (2(N−1) lock-stepped steps over row
  segments) directly over the node NICs.
- ``param_server`` — push/pull through the replicated
  :class:`~repro.cluster.paramserver.ShardedParameterServer` (the LDA*
  substrate): every node pushes its Δφ since the last global sync, a
  barrier waits for all pushes, and every node pulls the assembled φ —
  paying for chained replication but inheriting the server's CRC
  checksums, failover, and single-copy repair.

Both backends are **exact**: φ is combined in integer arithmetic, so
the result is bit-identical whichever backend (or GPU layout) produced
it. Their ``estimate`` methods *replay* the exact message schedule
against the :class:`~repro.comm.topology.Topology` snapshot — the same
per-link, per-direction frontier arithmetic
:meth:`~repro.gpusim.interconnect.Link.reserve` uses — so the planner's
predicted seconds equal the simulator's measured seconds for the same
ready times. ``Topology.from_cluster`` excludes detector-dead nodes, so
a plan can never route through one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.collectives import CostEstimate
from repro.comm.topology import LinkInfo, Topology
from repro.comm.transfer import TransferRetry
from repro.telemetry.context import emit_counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import ClusterNetwork
    from repro.cluster.paramserver import ShardedParameterServer

__all__ = [
    "ClusterSyncContext",
    "ClusterSyncResult",
    "ClusterCollective",
    "EthRingCollective",
    "ParamServerCollective",
    "register_cluster_collective",
    "get_cluster_collective",
    "cluster_collective_names",
    "cluster_collectives",
    "ring_segment_bytes",
]


# ----------------------------------------------------------------------
# Context / result
# ----------------------------------------------------------------------

@dataclass
class ClusterSyncContext:
    """Everything one inter-node φ combine needs.

    ``node_counts[i]`` is node ``nodes[i]``'s absolute φ counts (the
    node-local intra-reduce result, int64 ``K×V``); ``pending[i]`` is
    its delta since the last global sync (what a parameter-server push
    carries). ``ready[i]`` is the earliest global-clock time node ``i``
    can start communicating (its intra-node work is done then).
    """

    network: "ClusterNetwork"
    nodes: tuple[int, ...]
    node_counts: list[np.ndarray]
    pending: list[np.ndarray]
    ready: list[float]
    entry_bytes: int = 4
    retry: TransferRetry | None = None
    server: "ShardedParameterServer | None" = None


@dataclass(frozen=True)
class ClusterSyncResult:
    """Outcome of one inter-node combine: the new global φ (int64),
    each participating node's completion time on the global clock, and
    the payload bytes put on the wire."""

    phi: np.ndarray
    done: tuple[float, ...]
    bytes_on_wire: float


class ClusterCollective:
    """Interface every inter-node sync backend implements."""

    name: str = "?"

    def allreduce(self, ctx: ClusterSyncContext) -> ClusterSyncResult:
        raise NotImplementedError

    def estimate(
        self,
        topo: Topology,
        nodes: tuple[int, ...],
        shape: tuple[int, int],
        entry_bytes: int = 4,
        retry: TransferRetry | None = None,
        server: "ShardedParameterServer | None" = None,
    ) -> CostEstimate:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared replay machinery
# ----------------------------------------------------------------------

_INFEASIBLE = CostEstimate(seconds=float("inf"), bytes_on_wire=0.0, steps=0)


@dataclass
class _LinkFrontiers:
    """Mirror of the cluster links' per-direction busy frontiers, used
    to replay a message schedule analytically. Direction 0 is egress,
    1 is ingress — exactly :meth:`ClusterNetwork._send_once`."""

    host: dict[int, LinkInfo]
    frontier: dict[tuple[int, int], float] = field(default_factory=dict)

    def send(self, src: int, dst: int, nbytes: float, earliest: float) -> float:
        """Replay one ``src → dst`` message; returns its end time, or
        ``inf`` when either endpoint link is down or absent."""
        if src == dst:
            return earliest
        a, b = self.host.get(src), self.host.get(dst)
        if a is None or b is None or not a.up or not b.up:
            return float("inf")
        s1 = max(earliest, self.frontier.get((src, 0), 0.0))
        e1 = s1 + a.transfer_seconds(nbytes)
        self.frontier[(src, 0)] = e1
        s2 = max(s1, self.frontier.get((dst, 1), 0.0))
        e2 = s2 + b.transfer_seconds(nbytes)
        self.frontier[(dst, 1)] = e2
        return max(e1, e2)


def ring_segment_bytes(
    shape: tuple[int, int], num_nodes: int, entry_bytes: int
) -> list[float]:
    """Per-step payload of the segmented ring: φ's K rows split into
    ``num_nodes`` near-equal contiguous row blocks."""
    K, V = shape
    rows = [len(block) for block in np.array_split(np.arange(K), num_nodes)]
    return [float(r) * V * entry_bytes for r in rows]


def _ring_schedule(num_nodes: int) -> list[list[int]]:
    """Segment index sent by each node position at each of the
    2(N−1) ring steps (reduce-scatter then all-gather)."""
    steps = []
    for t in range(num_nodes - 1):           # reduce-scatter
        steps.append([(i - t) % num_nodes for i in range(num_nodes)])
    for t in range(num_nodes - 1):           # all-gather
        steps.append([(i + 1 - t) % num_nodes for i in range(num_nodes)])
    return steps


# ----------------------------------------------------------------------
# eth_ring: leader ring over the node NICs
# ----------------------------------------------------------------------

class EthRingCollective(ClusterCollective):
    """Segmented ring all-reduce between node leaders.

    Steps are lock-stepped: every step starts once all leaders have
    finished the previous one (the barrier is what makes the schedule
    replayable analytically), and in each step leader *i* sends one row
    segment to leader *i+1 mod N*. 2(N−1) steps move ≈ 2(N−1)/N · |φ|
    bytes through each NIC — the bandwidth-optimal exchange.
    """

    name = "eth_ring"

    def allreduce(self, ctx: ClusterSyncContext) -> ClusterSyncResult:
        nodes = ctx.nodes
        N = len(nodes)
        phi = np.zeros_like(ctx.node_counts[0], dtype=np.int64)
        for counts in ctx.node_counts:
            phi += counts
        if N == 1:
            return ClusterSyncResult(phi, (ctx.ready[0],), 0.0)
        seg_bytes = ring_segment_bytes(phi.shape, N, ctx.entry_bytes)
        times = list(ctx.ready)
        total = 0.0
        for segs in _ring_schedule(N):
            t0 = max(times)
            ends = [t0] * N
            for i in range(N):
                j = (i + 1) % N
                nbytes = seg_bytes[segs[i]]
                _, end = ctx.network.send(
                    nodes[i], nodes[j], nbytes, t0,
                    op="internode_ring", retry=ctx.retry,
                )
                total += nbytes
                ends[i] = max(ends[i], end)   # i's egress finishes
                ends[j] = max(ends[j], end)   # j's ingress finishes
            times = ends
        emit_counter(
            "internode_sync_bytes_total", total,
            help="inter-node φ-sync payload bytes, per backend",
            backend=self.name,
        )
        return ClusterSyncResult(phi, tuple(times), total)

    def estimate(
        self, topo, nodes, shape, entry_bytes=4, retry=None, server=None
    ) -> CostEstimate:
        N = len(nodes)
        if N == 0:
            return _INFEASIBLE
        if N == 1:
            return CostEstimate(seconds=0.0, bytes_on_wire=0.0, steps=0)
        links = _LinkFrontiers(topo.host)
        seg_bytes = ring_segment_bytes(shape, N, entry_bytes)
        times = [0.0] * N
        total = 0.0
        for segs in _ring_schedule(N):
            t0 = max(times)
            ends = [t0] * N
            for i in range(N):
                j = (i + 1) % N
                nbytes = seg_bytes[segs[i]]
                end = links.send(nodes[i], nodes[j], nbytes, t0)
                if not np.isfinite(end):
                    return _INFEASIBLE
                total += nbytes
                ends[i] = max(ends[i], end)
                ends[j] = max(ends[j], end)
            times = ends
        return CostEstimate(
            seconds=max(times), bytes_on_wire=total, steps=2 * (N - 1)
        )


# ----------------------------------------------------------------------
# param_server: push/pull through the replicated sharded server
# ----------------------------------------------------------------------

class ParamServerCollective(ClusterCollective):
    """Synchronous push/pull through the sharded parameter server.

    Every node pushes its Δφ since the last global sync (one message
    per shard to the shard's primary, chained to its replica), a
    barrier waits for the last push, then every node pulls the
    assembled φ. More wire traffic than the ring (replication and the
    pull fan-out), but the counts land in the PR 8 substrate: CRC
    checksums, failover reads, single-copy repair.
    """

    name = "param_server"

    def allreduce(self, ctx: ClusterSyncContext) -> ClusterSyncResult:
        server = ctx.server
        if server is None:
            raise ValueError(
                "param_server inter-node sync requires a ShardedParameterServer"
            )
        nodes = ctx.nodes
        if len(nodes) == 1:
            phi = ctx.node_counts[0].astype(np.int64, copy=True)
            server.phi = phi
            return ClusterSyncResult(phi, (ctx.ready[0],), 0.0)
        words = np.arange(server.num_words)
        wire0 = server.bytes_pushed + server.bytes_pulled
        push_done = [
            server.push(
                node, words, ctx.pending[i], ctx.ready[i],
                entry_bytes=ctx.entry_bytes, retry=ctx.retry,
            )
            for i, node in enumerate(nodes)
        ]
        barrier = max(push_done)  # pulls must observe every push
        done = []
        for node in nodes:
            _, end = server.pull(
                node, words, barrier,
                entry_bytes=ctx.entry_bytes, retry=ctx.retry,
            )
            done.append(end)
        total = server.bytes_pushed + server.bytes_pulled - wire0
        emit_counter(
            "internode_sync_bytes_total", total,
            help="inter-node φ-sync payload bytes, per backend",
            backend=self.name,
        )
        return ClusterSyncResult(server.phi.copy(), tuple(done), total)

    # -- estimate: replay the push/pull schedule exactly ----------------
    def _placement(self, nodes, num_words, server):
        """(num_shards, per-shard word count, primary, replica): the live
        server's placement when given, else the canonical placement a
        fresh server over *nodes* would choose."""
        if server is not None:
            S = server.num_shards
            counts = [len(cols) for cols in server._cols]
            primary = [server.primary_node_of(s) for s in range(S)]
            replica = [server.replica_node_of(s) for s in range(S)]
            return S, counts, primary, replica
        ordered = sorted(nodes)
        S = len(ordered)
        counts = [len(range(s, num_words, S)) for s in range(S)]
        primary = [ordered[s % S] for s in range(S)]
        replica = (
            [ordered[(s + 1) % S] for s in range(S)] if S > 1 else list(primary)
        )
        return S, counts, primary, replica

    def estimate(
        self, topo, nodes, shape, entry_bytes=4, retry=None, server=None
    ) -> CostEstimate:
        N = len(nodes)
        if N == 0:
            return _INFEASIBLE
        if N == 1:
            return CostEstimate(seconds=0.0, bytes_on_wire=0.0, steps=0)
        K, V = shape
        S, counts, primary, replica = self._placement(nodes, V, server)

        def reachable(node: int) -> bool:
            info = topo.host.get(node)
            return info is not None and info.up

        links = _LinkFrontiers(topo.host)
        total = 0.0
        # Push phase (same issue order as allreduce: node-ascending, then
        # shard-ascending within each node).
        push_done = []
        for node in nodes:
            end_n = 0.0
            for s in range(S):
                if not counts[s]:
                    continue
                nbytes = float(K) * counts[s] * entry_bytes
                dst, rep = primary[s], replica[s]
                if not reachable(dst):
                    # Failover push to the replica as acting primary.
                    if rep == dst or not reachable(rep):
                        return _INFEASIBLE
                    end = links.send(node, rep, nbytes, 0.0)
                else:
                    end = links.send(node, dst, nbytes, 0.0)
                    if rep != dst and reachable(rep):
                        end = max(end, links.send(dst, rep, nbytes, end))
                        total += nbytes
                if not np.isfinite(end):
                    return _INFEASIBLE
                total += nbytes
                end_n = max(end_n, end)
            push_done.append(end_n)
        barrier = max(push_done)
        # Pull phase.
        done = []
        for node in nodes:
            end_n = barrier
            for s in range(S):
                if not counts[s]:
                    continue
                nbytes = float(K) * counts[s] * entry_bytes + K * 8
                src = primary[s]
                if not reachable(src):
                    src = replica[s]
                    if src == primary[s] or not reachable(src):
                        return _INFEASIBLE
                end = links.send(src, node, nbytes, barrier)
                if not np.isfinite(end):
                    return _INFEASIBLE
                total += nbytes
                end_n = max(end_n, end)
            done.append(end_n)
        return CostEstimate(
            seconds=max(done), bytes_on_wire=total, steps=2 * S
        )


# ----------------------------------------------------------------------
# Registry (mirrors repro.comm.collectives; separate namespace so the
# GPU --sync choices are untouched)
# ----------------------------------------------------------------------

_REGISTRY: dict[str, ClusterCollective] = {}


def register_cluster_collective(collective: ClusterCollective) -> ClusterCollective:
    """Add an inter-node backend to the registry. Registration order is
    the ``auto`` tie-break, exactly as for the GPU collectives."""
    if collective.name in _REGISTRY:
        raise ValueError(
            f"cluster collective {collective.name!r} is already registered"
        )
    _REGISTRY[collective.name] = collective
    return collective


def get_cluster_collective(name: str) -> ClusterCollective:
    try:
        return _REGISTRY[name]
    except KeyError:
        choices = ", ".join(["auto", *_REGISTRY])
        raise ValueError(
            f"unknown inter-node sync algorithm {name!r}; choices: {choices}"
        ) from None


def cluster_collective_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def cluster_collectives() -> tuple[ClusterCollective, ...]:
    return tuple(_REGISTRY.values())


register_cluster_collective(EthRingCollective())
register_cluster_collective(ParamServerCollective())
