"""Pluggable collective-communication layer with a topology-aware planner.

``repro.comm`` owns everything that moves φ between devices:

- :mod:`~repro.comm.topology` — immutable fabric snapshots
  (:class:`Topology`, :class:`LinkInfo`) derived from a simulated
  machine or cluster network;
- :mod:`~repro.comm.transfer` — the retry/host-fallback policy
  (:class:`TransferRetry`, :func:`with_retry`, :func:`resilient_p2p`)
  and the parameter-server message helpers;
- :mod:`~repro.comm.collectives` — the executable sync algorithms
  (tree, ring, cpu_gather, hierarchical) behind the
  :class:`Collective` interface, each with a cost ``estimate``,
  in an ordered registry;
- :mod:`~repro.comm.planner` — the :class:`SyncPlanner` that resolves
  ``--sync auto`` into the cheapest feasible collective per
  (topology, payload, alive-GPU set).

Consumers — the training engine's sync phase, the serving φ
re-broadcast, the cluster parameter server — go through this package;
none of them dispatches on algorithm names themselves. See
``docs/SYNC.md`` for the planner design and decision tables.
"""

from repro.comm.cluster import (
    ClusterCollective,
    ClusterSyncContext,
    ClusterSyncResult,
    EthRingCollective,
    ParamServerCollective,
    cluster_collective_names,
    cluster_collectives,
    get_cluster_collective,
    register_cluster_collective,
)
from repro.comm.collectives import (
    Collective,
    CostEstimate,
    SyncContext,
    broadcast_phi,
    collective_names,
    collectives,
    cpu_gather_sync,
    get_collective,
    hierarchical_allreduce_phi,
    reduce_phi_tree,
    register,
    ring_allreduce_phi,
)
from repro.comm.planner import (
    AUTO,
    ClusterSyncPlan,
    ClusterSyncPlanner,
    SyncPlan,
    SyncPlanner,
    cluster_sync_choices,
    decisions_from_registry,
    plan_cluster_sync,
    plan_sync,
    sync_choices,
)
from repro.comm.topology import NVLINK_CLASS_GBPS, LinkInfo, Topology
from repro.comm.transfer import (
    TransferRetry,
    fanin_messages,
    fanout_messages,
    resilient_p2p,
    with_retry,
)

__all__ = [
    "AUTO",
    "ClusterCollective",
    "ClusterSyncContext",
    "ClusterSyncPlan",
    "ClusterSyncPlanner",
    "ClusterSyncResult",
    "Collective",
    "CostEstimate",
    "EthRingCollective",
    "LinkInfo",
    "NVLINK_CLASS_GBPS",
    "ParamServerCollective",
    "SyncContext",
    "SyncPlan",
    "SyncPlanner",
    "Topology",
    "TransferRetry",
    "broadcast_phi",
    "cluster_collective_names",
    "cluster_collectives",
    "cluster_sync_choices",
    "collective_names",
    "collectives",
    "cpu_gather_sync",
    "decisions_from_registry",
    "fanin_messages",
    "fanout_messages",
    "get_cluster_collective",
    "get_collective",
    "hierarchical_allreduce_phi",
    "plan_cluster_sync",
    "plan_sync",
    "reduce_phi_tree",
    "register",
    "register_cluster_collective",
    "resilient_p2p",
    "ring_allreduce_phi",
    "sync_choices",
    "with_retry",
]
