"""Cost-model-driven selection of the sync collective.

``--sync auto`` (the default) resolves here: the planner snapshots the
current :class:`~repro.comm.topology.Topology`, asks every registered
:class:`~repro.comm.collectives.Collective` for a
:class:`~repro.comm.collectives.CostEstimate` of this payload on this
fabric, and executes the cheapest feasible one. Manual ``--sync``
choices remain available as *forced* plans — the planner still runs, so
the estimate and decision telemetry are recorded either way, but the
named collective executes regardless of cost.

Because the topology is re-snapshotted every call, the plan adapts
within a run: a link taken down by a fault plan re-routes the next sync
(typically to ``cpu_gather``, whose legs never touch the P2P fabric),
and a lost GPU shrinks the device set (the elastic G−1 path). Ties are
broken by registration order, which puts ``gpu_tree`` — the paper's
choice and the previous hard-wired default — first: ``auto`` can never
be slower than the old behaviour on equal estimates.

Decisions are emitted as telemetry (``sync_planner_decisions_total``
counters and a ``sync_planner_predicted_seconds`` gauge) and surfaced
by ``repro-lda profile`` via :func:`decisions_from_registry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cluster import (
    ClusterCollective,
    cluster_collective_names,
    cluster_collectives,
    get_cluster_collective,
)
from repro.comm.collectives import (
    Collective,
    CostEstimate,
    collective_names,
    collectives,
    get_collective,
)
from repro.comm.topology import Topology
from repro.comm.transfer import TransferRetry
from repro.core.kernels import KernelConfig
from repro.gpusim.errors import SyncPathError
from repro.gpusim.platform import Machine
from repro.telemetry.context import emit_counter, emit_gauge

__all__ = [
    "AUTO",
    "SyncPlan",
    "SyncPlanner",
    "ClusterSyncPlan",
    "ClusterSyncPlanner",
    "plan_sync",
    "plan_cluster_sync",
    "sync_choices",
    "cluster_sync_choices",
    "decisions_from_registry",
]

#: The sentinel algorithm name that delegates the choice to the planner.
AUTO = "auto"


@dataclass(frozen=True)
class SyncPlan:
    """One resolved sync decision: which collective runs, and why.

    ``forced`` distinguishes a manual ``--sync`` override from a
    planner pick; ``estimate`` is the cost model's prediction for the
    chosen collective on ``topology`` (recorded even when forced, so
    profiles can show what the override cost).
    """

    algorithm: str
    collective: Collective
    estimate: CostEstimate
    forced: bool
    topology: Topology


class SyncPlanner:
    """Picks the cheapest feasible collective for a (topology, payload).

    Stateless apart from the registry it reads; one module-level
    instance behind :func:`plan_sync` serves the whole process.
    """

    def plan(
        self,
        machine: Machine,
        shape: tuple[int, int],
        config: KernelConfig,
        retry: TransferRetry | None = None,
        algorithm: str = AUTO,
        devices: list[int] | None = None,
    ) -> SyncPlan:
        """Resolve *algorithm* into a :class:`SyncPlan`.

        ``AUTO`` picks the minimum predicted simulated time over the
        registered collectives (registration order breaks ties); any
        other name forces that collective. *devices* defaults to the
        machine's alive-GPU set. Raises
        :class:`~repro.gpusim.errors.SyncPathError` if no collective
        has a usable path, and ``ValueError`` for an unknown name.
        """
        topo = Topology.from_machine(machine, devices=devices)
        forced = algorithm != AUTO
        if forced:
            chosen = get_collective(algorithm)
            estimate = chosen.estimate(machine, topo, shape, config, retry=retry)
        else:
            chosen = None
            estimate = None
            for cand in collectives():
                est = cand.estimate(machine, topo, shape, config, retry=retry)
                if est.feasible and (
                    estimate is None or est.seconds < estimate.seconds
                ):
                    chosen, estimate = cand, est
            if chosen is None:
                dead = sorted(
                    info.name
                    for info in topo.host.values()
                    if not info.up
                )
                raise SyncPathError(
                    dead[0] if dead else "p2p", "sync_plan",
                    devices=topo.devices,
                )
        plan = SyncPlan(
            algorithm=chosen.name,
            collective=chosen,
            estimate=estimate,
            forced=forced,
            topology=topo,
        )
        self._emit(plan)
        return plan

    @staticmethod
    def _emit(plan: SyncPlan) -> None:
        emit_counter(
            "sync_planner_decisions_total", 1,
            help="sync collectives chosen by the planner (forced=manual --sync)",
            algorithm=plan.algorithm,
            topology=plan.topology.describe(),
            forced=str(plan.forced).lower(),
        )
        if plan.estimate is not None and plan.estimate.feasible:
            emit_gauge(
                "sync_planner_predicted_seconds", plan.estimate.seconds,
                help="cost-model prediction for the chosen sync collective",
                algorithm=plan.algorithm,
                topology=plan.topology.describe(),
            )


@dataclass(frozen=True)
class ClusterSyncPlan:
    """One resolved inter-node sync decision (multi-node CuLDA's φ
    exchange leg): which cluster collective runs, over which live
    nodes, and what the replay-exact cost model predicted."""

    algorithm: str
    collective: ClusterCollective
    estimate: CostEstimate
    forced: bool
    topology: Topology
    nodes: tuple[int, ...]


class ClusterSyncPlanner:
    """Picks the cheapest feasible inter-node backend for a payload.

    The cluster analog of :class:`SyncPlanner`: the topology snapshot
    comes from :meth:`Topology.from_cluster`, which excludes nodes the
    failure detector has declared dead — so a plan can never route
    through one — and each candidate's estimate *replays* its exact
    message schedule on the snapshot, making the prediction equal to
    the simulator's measurement for the same ready times.
    """

    def plan(
        self,
        network,
        shape: tuple[int, int],
        entry_bytes: int = 4,
        retry: TransferRetry | None = None,
        algorithm: str = AUTO,
        nodes: list[int] | None = None,
        server=None,
    ) -> ClusterSyncPlan:
        """Resolve *algorithm* into a :class:`ClusterSyncPlan`.

        *nodes* defaults to every detector-alive node; dead nodes are
        filtered out of an explicit list too. Raises
        :class:`~repro.gpusim.errors.SyncPathError` when no backend has
        a usable path and ``ValueError`` for an unknown name.
        """
        topo = Topology.from_cluster(network)
        live = (
            topo.devices if nodes is None
            else tuple(n for n in nodes if n in topo.devices)
        )
        forced = algorithm != AUTO
        if forced:
            chosen = get_cluster_collective(algorithm)
            estimate = chosen.estimate(
                topo, live, shape, entry_bytes, retry=retry, server=server
            )
        else:
            chosen = None
            estimate = None
            for cand in cluster_collectives():
                est = cand.estimate(
                    topo, live, shape, entry_bytes, retry=retry, server=server
                )
                if est.feasible and (
                    estimate is None or est.seconds < estimate.seconds
                ):
                    chosen, estimate = cand, est
            if chosen is None:
                dead = sorted(
                    info.name for info in topo.host.values() if not info.up
                )
                raise SyncPathError(
                    dead[0] if dead else "eth", "cluster_sync_plan",
                    devices=live,
                )
        plan = ClusterSyncPlan(
            algorithm=chosen.name,
            collective=chosen,
            estimate=estimate,
            forced=forced,
            topology=topo,
            nodes=live,
        )
        SyncPlanner._emit(plan)
        return plan


_PLANNER = SyncPlanner()
_CLUSTER_PLANNER = ClusterSyncPlanner()


def plan_cluster_sync(
    network,
    shape: tuple[int, int],
    entry_bytes: int = 4,
    retry: TransferRetry | None = None,
    algorithm: str = AUTO,
    nodes: list[int] | None = None,
    server=None,
) -> ClusterSyncPlan:
    """Module-level convenience over one shared :class:`ClusterSyncPlanner`."""
    return _CLUSTER_PLANNER.plan(
        network, shape, entry_bytes=entry_bytes, retry=retry,
        algorithm=algorithm, nodes=nodes, server=server,
    )


def cluster_sync_choices() -> tuple[str, ...]:
    """Every valid ``--inter-sync`` value: ``auto`` plus the cluster
    registry, in registration order."""
    return (AUTO, *cluster_collective_names())


def plan_sync(
    machine: Machine,
    shape: tuple[int, int],
    config: KernelConfig,
    retry: TransferRetry | None = None,
    algorithm: str = AUTO,
    devices: list[int] | None = None,
) -> SyncPlan:
    """Module-level convenience over one shared :class:`SyncPlanner`."""
    return _PLANNER.plan(
        machine, shape, config, retry=retry, algorithm=algorithm,
        devices=devices,
    )


def sync_choices() -> tuple[str, ...]:
    """Every valid ``--sync`` value: ``auto`` plus the registry, in
    registration order — the single source for CLI ``choices=``."""
    return (AUTO, *collective_names())


def decisions_from_registry(registry) -> list[dict[str, object]]:
    """Planner decisions recorded in *registry*, for profile output.

    Returns one dict per (algorithm, topology, forced) series of the
    ``sync_planner_decisions_total`` counter, with the matching
    predicted-seconds gauge folded in when present.
    """
    counter = registry.get("sync_planner_decisions_total")
    if counter is None:
        return []
    gauge = registry.get("sync_planner_predicted_seconds")
    out: list[dict[str, object]] = []
    for sample in counter.samples():
        entry: dict[str, object] = {
            "algorithm": sample.labels["algorithm"],
            "topology": sample.labels["topology"],
            "forced": sample.labels["forced"] == "true",
            "count": int(sample.value),
        }
        if gauge is not None:
            predicted = gauge.value(
                algorithm=sample.labels["algorithm"],
                topology=sample.labels["topology"],
            )
            if predicted:
                entry["predicted_seconds"] = predicted
        out.append(entry)
    out.sort(key=lambda e: -e["count"])
    return out
