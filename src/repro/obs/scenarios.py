"""The curated benchmark suite.

Importing this module populates :data:`repro.obs.registry.REGISTRY`
with every scenario ``repro-lda bench`` can run. Four groups:

- **train** — simulated-clock throughput of all five trainers (CuLDA
  plus the four baselines), deterministic to the bit.
- **sync** — multi-GPU model synchronization: bytes on the wire and
  reduce-step times per topology (tree / ring / cpu-gather), plus
  planner scenarios pitting ``--sync auto`` against the forced
  reduce-tree on PCIe and NVLink fabrics (see ``docs/SYNC.md``).
- **serve** — end-to-end serving latency from a seeded loadgen trace,
  including a chaos + hedging scenario (failover/hedge overhead).
- **kernel** — real wall-clock of the NumPy hot paths (the vectorized
  sampling kernel, φ accumulation, θ recount, alias-table build) via
  repeated-median timing.

Workloads are deliberately small: the quick tier must finish in CI in
well under five minutes. They are *fixed*, not tier-scaled — a quick
run and a full run measure identical scenarios, so their snapshots
compare directly (see ``docs/BENCHMARKS.md`` for how to add one).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.obs.registry import REGISTRY, Measurement
from repro.obs.timing import repeated_median
from repro.obs.workloads import (
    kernel_state,
    make_baseline,
    make_corpus,
    make_culda,
    make_distributed_culda,
    train_tiny_checkpoint,
)

__all__ = ["REGISTRY"]


def _exact(value, unit, direction="lower") -> Measurement:
    return Measurement(
        value=float(value), unit=unit, kind="exact", direction=direction
    )


def _wall(timing, direction="lower") -> Measurement:
    return Measurement(
        value=timing.median, unit="s", kind="wall", direction=direction,
        iqr=timing.iqr,
    )


def _train_metrics(result) -> dict:
    metrics = {
        "tokens_per_sec": _exact(
            result.avg_tokens_per_sec, "tokens/s", "higher"
        ),
        "sim_seconds": _exact(result.total_sim_seconds, "s", "lower"),
    }
    if result.final_log_likelihood is not None:
        metrics["final_ll_per_token"] = _exact(
            result.final_log_likelihood, "nats/token", "info"
        )
    return metrics


def _sync_metrics(registry) -> dict:
    metrics: dict[str, Measurement] = {}
    counter = registry.get("sync_bytes_total")
    if counter is not None:
        metrics["sync_bytes"] = _exact(
            sum(s.value for s in counter.samples()), "bytes", "lower"
        )
    hist = registry.get("sync_reduce_step_seconds")
    if hist is not None:
        total = count = 0.0
        for key in hist.label_keys():
            labels = hist._label_dict(key)
            total += hist.sum(**labels)
            count += hist.count(**labels)
        if count:
            metrics["reduce_step_mean_seconds"] = _exact(
                total / count, "s", "lower"
            )
    return metrics


# ----------------------------------------------------------------------
# train / sync
# ----------------------------------------------------------------------

@REGISTRY.scenario(
    "train/culda_pascal_1gpu", "train",
    "CuLDA on 1 Pascal GPU: NYTimes twin, 20k tokens, K=32, 5 iters",
    corpus="nytimes", tokens=20_000, topics=32, iterations=5,
    platform="pascal", gpus=1,
)
def _culda_1gpu() -> dict:
    corpus = make_corpus("nytimes", tokens=20_000, seed=0)
    result = make_culda(
        corpus, platform="pascal", gpus=1,
        num_topics=32, iterations=5, seed=0, likelihood_every=5,
    ).train()
    return _train_metrics(result)


def _culda_4gpu(sync: str) -> dict:
    from repro.telemetry import MetricsRegistry

    corpus = make_corpus("pubmed", tokens=60_000, seed=1, vocab_cap=2_048)
    registry = MetricsRegistry()
    result = make_culda(
        corpus, platform="pascal", gpus=4, registry=registry,
        num_topics=32, iterations=4, seed=0, chunks_per_gpu=1,
        sync_algorithm=sync,
    ).train()
    return {**_train_metrics(result), **_sync_metrics(registry)}


@REGISTRY.scenario(
    "sync/culda_pascal_4gpu_tree", "sync",
    "CuLDA on 4 Pascal GPUs, reduce-tree sync: PubMed twin, 60k tokens",
    corpus="pubmed", tokens=60_000, topics=32, iterations=4,
    platform="pascal", gpus=4, sync="gpu_tree",
)
def _culda_4gpu_tree() -> dict:
    return _culda_4gpu("gpu_tree")


@REGISTRY.scenario(
    "sync/culda_pascal_4gpu_ring", "sync",
    "CuLDA on 4 Pascal GPUs, ring all-reduce sync: PubMed twin, 60k tokens",
    corpus="pubmed", tokens=60_000, topics=32, iterations=4,
    platform="pascal", gpus=4, sync="ring",
)
def _culda_4gpu_ring() -> dict:
    return _culda_4gpu("ring")


@REGISTRY.scenario(
    "sync/culda_pascal_4gpu_cpu_gather", "sync",
    "CuLDA on 4 Pascal GPUs, host gather/scatter sync: PubMed twin",
    tier="full",
    corpus="pubmed", tokens=60_000, topics=32, iterations=4,
    platform="pascal", gpus=4, sync="cpu_gather",
)
def _culda_4gpu_cpu_gather() -> dict:
    return _culda_4gpu("cpu_gather")


def _node_scaling_run(nodes: int):
    corpus = make_corpus("pubmed", tokens=240_000, seed=1, vocab_cap=2_048)
    kwargs = dict(num_topics=32, iterations=3, seed=0, chunks_per_gpu=1)
    if nodes == 1:
        return make_culda(corpus, platform="pascal", gpus=2, **kwargs).train()
    return make_distributed_culda(
        corpus, nodes=nodes, gpus_per_node=2,
        link_gbps=12.5, latency_seconds=5e-6, **kwargs,
    ).train()


@REGISTRY.scenario(
    "train/culda_node_scaling", "train",
    "Multi-node CuLDA node scaling: 1/2/4 nodes x 2 Pascal GPUs over a "
    "100 GbE-class fabric, PubMed twin 240k tokens; throughput must "
    "grow monotonically with node count",
    corpus="pubmed", tokens=240_000, topics=32, iterations=3,
    platform="pascal", gpus_per_node=2, nodes=(1, 2, 4),
    link_gbps=12.5,
)
def _culda_node_scaling() -> dict:
    results = {n: _node_scaling_run(n) for n in (1, 2, 4)}
    tps = {n: r.avg_tokens_per_sec for n, r in results.items()}
    if not tps[1] < tps[2] < tps[4]:
        raise AssertionError(
            "node scaling is not monotone: "
            + ", ".join(f"{n} nodes={tps[n]:.3e} tok/s" for n in (1, 2, 4))
        )
    return {
        "tokens_per_sec_1node": _exact(tps[1], "tokens/s", "higher"),
        "tokens_per_sec_2node": _exact(tps[2], "tokens/s", "higher"),
        "tokens_per_sec_4node": _exact(tps[4], "tokens/s", "higher"),
        "scaling_efficiency_4node": _exact(
            tps[4] / (4 * tps[1]), "ratio", "higher"
        ),
        "sim_seconds_4node": _exact(
            results[4].total_sim_seconds, "s", "lower"
        ),
    }


@REGISTRY.scenario(
    "train/culda_node_loss_recovery", "train",
    "Multi-node CuLDA elastic node-loss recovery: node death mid-run "
    "on 2 nodes x 2 Pascal GPUs; recovery stall and post-recovery "
    "throughput vs the fault-free run (models must stay bit-identical)",
    corpus="pubmed", tokens=60_000, topics=32, iterations=6,
    platform="pascal", nodes=2, gpus_per_node=2,
)
def _culda_node_loss() -> dict:
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.obs.profiling import counter_total
    from repro.telemetry import MetricsRegistry

    corpus = make_corpus("pubmed", tokens=60_000, seed=1, vocab_cap=2_048)
    kwargs = dict(num_topics=32, iterations=6, seed=0)
    clean = make_distributed_culda(
        corpus, nodes=2, gpus_per_node=2, **kwargs
    ).train()
    registry = MetricsRegistry()
    plan = FaultPlan(faults=(
        FaultSpec(kind="node_failure", iteration=2, node=1),
    ))
    faulted = make_distributed_culda(
        corpus, nodes=2, gpus_per_node=2, registry=registry, **kwargs
    ).train(recovery="elastic", fault_plan=plan)
    if not np.array_equal(faulted.phi, clean.phi):
        raise AssertionError(
            "recovered phi diverged from the fault-free run"
        )
    # The last iteration runs entirely after the migration, so its
    # throughput is the steady post-recovery rate (no stall charged).
    post_tps = corpus.num_tokens / faulted.iterations[-1].sim_seconds
    return {
        "recovery_stall_seconds": _exact(
            counter_total(registry, "node_recovery_stall_seconds_total"),
            "s", "lower",
        ),
        "recovery_overhead_seconds": _exact(
            faulted.total_sim_seconds - clean.total_sim_seconds, "s",
            "lower",
        ),
        "post_recovery_tokens_per_sec": _exact(
            post_tps, "tokens/s", "higher"
        ),
        "post_recovery_throughput_ratio": _exact(
            post_tps / clean.avg_tokens_per_sec, "ratio", "higher"
        ),
        "workers_migrated": _exact(
            counter_total(registry, "workers_migrated_total"),
            "count", "info",
        ),
        "sim_seconds": _exact(faulted.total_sim_seconds, "s", "lower"),
    }


def _internode_backend_run(backend: str):
    from repro.telemetry import MetricsRegistry

    corpus = make_corpus("pubmed", tokens=60_000, seed=1, vocab_cap=2_048)
    registry = MetricsRegistry()
    result = make_distributed_culda(
        corpus, nodes=2, gpus_per_node=2, registry=registry,
        num_topics=32, iterations=4, seed=0, chunks_per_gpu=1,
        inter_sync=backend,
    ).train()
    counter = registry.get("internode_sync_bytes_total")
    internode_bytes = (
        sum(s.value for s in counter.samples()) if counter else 0.0
    )
    return result, internode_bytes


@REGISTRY.scenario(
    "sync/culda_internode_backends", "sync",
    "Inter-node phi-sync backend comparison on 2x2 GPUs over 10 GbE: "
    "eth_ring vs param_server timing; models must be bit-identical",
    tier="full",
    corpus="pubmed", tokens=60_000, topics=32, iterations=4,
    platform="pascal", gpus_per_node=2, nodes=2,
)
def _culda_internode_backends() -> dict:
    ring, ring_bytes = _internode_backend_run("eth_ring")
    ps, ps_bytes = _internode_backend_run("param_server")
    if not np.array_equal(ring.phi, ps.phi):
        raise AssertionError(
            "eth_ring and param_server produced different models"
        )
    return {
        "ring_sim_seconds": _exact(ring.total_sim_seconds, "s", "lower"),
        "param_server_sim_seconds": _exact(
            ps.total_sim_seconds, "s", "lower"
        ),
        "ring_internode_bytes": _exact(ring_bytes, "bytes", "lower"),
        "param_server_internode_bytes": _exact(ps_bytes, "bytes", "lower"),
        "param_server_overhead_ratio": _exact(
            ps.total_sim_seconds / ring.total_sim_seconds, "ratio", "info"
        ),
    }


def _planner_run(platform: str, sync: str):
    from repro.telemetry import MetricsRegistry

    corpus = make_corpus("pubmed", tokens=60_000, seed=1, vocab_cap=2_048)
    registry = MetricsRegistry()
    trainer = make_culda(
        corpus, platform=platform, gpus=4, registry=registry,
        num_topics=64, iterations=4, seed=0, chunks_per_gpu=1,
        sync_algorithm=sync,
    )
    result = trainer.train()
    comm_seconds = sum(
        iv.duration for iv in trainer.machine.trace.intervals
        if iv.kind in ("sync", "p2p")
    )
    return result, registry, comm_seconds


def _planner_metrics(platform: str) -> dict:
    """Auto (planner-chosen) vs forced reduce-tree sync on one topology.

    ``planner_decision`` records which collective the planner picked as
    an index into :func:`repro.comm.collective_names` — ``info``
    direction, so a changed pick surfaces as drift, not a gate failure.
    ``tree_*`` metrics are info too: the forced-tree run is the
    reference line, not a quantity to be gated on its own.
    """
    from repro.comm import collective_names, decisions_from_registry

    auto, registry, auto_comm = _planner_run(platform, "auto")
    tree, _, tree_comm = _planner_run(platform, "gpu_tree")
    decisions = decisions_from_registry(registry)
    pick = decisions[0]["algorithm"] if decisions else "gpu_tree"
    return {
        "auto_sim_seconds": _exact(auto.total_sim_seconds, "s", "lower"),
        "tree_sim_seconds": _exact(tree.total_sim_seconds, "s", "info"),
        "auto_comm_seconds": _exact(auto_comm, "s", "lower"),
        "tree_comm_seconds": _exact(tree_comm, "s", "info"),
        "planner_decision": _exact(
            collective_names().index(pick), "enum", "info"
        ),
        **_sync_metrics(registry),
    }


@REGISTRY.scenario(
    "sync/planner_pascal_4gpu", "sync",
    "Sync planner on 4 Pascal GPUs (dual-socket PCIe): auto vs forced tree",
    corpus="pubmed", tokens=60_000, topics=64, iterations=4,
    platform="pascal", gpus=4, sync="auto",
)
def _planner_pascal() -> dict:
    return _planner_metrics("pascal")


@REGISTRY.scenario(
    "sync/planner_dgx_4gpu", "sync",
    "Sync planner on 4 DGX GPUs (all-NVLink): auto vs forced tree",
    corpus="pubmed", tokens=60_000, topics=64, iterations=4,
    platform="dgx", gpus=4, sync="auto",
)
def _planner_dgx() -> dict:
    return _planner_metrics("dgx")


@REGISTRY.scenario(
    "train/culda_volta_2gpu_large", "train",
    "CuLDA on 2 Volta GPUs: NYTimes twin, 120k tokens, K=64, 5 iters",
    tier="full",
    corpus="nytimes", tokens=120_000, topics=64, iterations=5,
    platform="volta", gpus=2,
)
def _culda_volta_large() -> dict:
    corpus = make_corpus("nytimes", tokens=120_000, seed=0)
    result = make_culda(
        corpus, platform="volta", gpus=2,
        num_topics=64, iterations=5, seed=0, chunks_per_gpu=1,
    ).train()
    return _train_metrics(result)


@REGISTRY.scenario(
    "train/saberlda_pascal_1gpu", "train",
    "SaberLDA baseline on 1 Pascal GPU: NYTimes twin, 20k tokens, 3 iters",
    corpus="nytimes", tokens=20_000, topics=32, iterations=3,
    platform="pascal", gpus=1,
)
def _saberlda() -> dict:
    corpus = make_corpus("nytimes", tokens=20_000, seed=0)
    result = make_baseline(
        corpus, "saberlda", num_topics=32, seed=0, platform="pascal",
        iterations=3,
    ).train()
    return _train_metrics(result)


@REGISTRY.scenario(
    "train/warplda_cpu", "train",
    "WarpLDA CPU baseline: NYTimes twin, 20k tokens, K=32, 3 iters",
    corpus="nytimes", tokens=20_000, topics=32, iterations=3,
)
def _warplda() -> dict:
    corpus = make_corpus("nytimes", tokens=20_000, seed=0)
    result = make_baseline(corpus, "warplda", num_topics=32, seed=0).train(
        iterations=3
    )
    return _train_metrics(result)


@REGISTRY.scenario(
    "train/ldastar_4workers", "train",
    "LDA* distributed baseline, 4 workers: NYTimes twin, 20k tokens",
    corpus="nytimes", tokens=20_000, topics=32, iterations=3, workers=4,
)
def _ldastar() -> dict:
    corpus = make_corpus("nytimes", tokens=20_000, seed=0)
    result = make_baseline(
        corpus, "ldastar", num_topics=32, seed=0, num_workers=4
    ).train(iterations=3)
    metrics = _train_metrics(result)
    metrics["network_bytes"] = _exact(result.network_bytes, "bytes", "lower")
    return metrics


@REGISTRY.scenario(
    "train/ldastar_node_loss_recovery", "train",
    "LDA* elastic node-loss recovery: default cluster chaos plan on "
    "4 workers; recovery overhead vs the fault-free run",
    corpus="nytimes", tokens=20_000, topics=32, iterations=6, workers=4,
)
def _ldastar_node_loss() -> dict:
    from repro.faults.plan import cluster_chaos_plan

    corpus = make_corpus("nytimes", tokens=20_000, seed=0)
    clean = make_baseline(
        corpus, "ldastar", num_topics=32, seed=0, num_workers=4
    ).train(iterations=6)
    star = make_baseline(
        corpus, "ldastar", num_topics=32, seed=0, num_workers=4
    )
    faulted = star.train(
        iterations=6, recovery="elastic", fault_plan=cluster_chaos_plan(4)
    )
    if not np.array_equal(faulted.phi, clean.phi):
        raise AssertionError(
            "recovered phi diverged from the fault-free run"
        )
    return {
        "recovery_overhead_seconds": _exact(
            faulted.total_sim_seconds - clean.total_sim_seconds, "s",
            "lower",
        ),
        "reshard_bytes": _exact(
            star.server.bytes_resharded, "bytes", "lower"
        ),
        "repartitions": _exact(faulted.repartitions, "count", "info"),
        "failover_reads": _exact(
            sum(1 for e in star.server.events
                if e["kind"] == "failover_read"),
            "count", "info",
        ),
        "sim_seconds": _exact(faulted.total_sim_seconds, "s", "lower"),
    }


@REGISTRY.scenario(
    "train/scvb0_convergence", "train",
    "SCVB0 baseline (untimed clock): final likelihood + wall train time",
    corpus="nytimes", tokens=10_000, topics=32, iterations=3,
)
def _scvb0() -> dict:
    corpus = make_corpus("nytimes", tokens=10_000, seed=0)

    def run():
        return make_baseline(corpus, "scvb0", num_topics=32, seed=0).train(
            iterations=3, likelihood_every=3
        )

    result = run()
    timing = repeated_median(run, rounds=3, warmup=0)
    metrics = {"wall_train_seconds": _wall(timing)}
    if result.final_log_likelihood is not None:
        metrics["final_ll_per_token"] = _exact(
            result.final_log_likelihood, "nats/token", "info"
        )
    return metrics


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------

def _serve_report(
    gpus: int,
    platform: str,
    rate: float,
    duration: float,
    seed: int,
    chaos: bool = False,
    hedge_quantile: float | None = None,
):
    from repro.serve import (
        HedgePolicy,
        InferenceService,
        ServiceConfig,
        default_chaos_plan,
        poisson_trace,
    )
    from repro.core import load_model
    from repro.obs.workloads import make_platform

    with tempfile.TemporaryDirectory() as tmp:
        model_path = train_tiny_checkpoint(Path(tmp) / "model.npz")
        num_words = int(load_model(model_path).phi.shape[1])
        requests = poisson_trace(
            [model_path], num_words, rate=rate, duration=duration, seed=seed,
        )
        service = InferenceService(
            make_platform(platform, gpus),
            ServiceConfig(
                hedge=(
                    HedgePolicy(quantile=hedge_quantile, min_observations=8)
                    if hedge_quantile is not None else None
                ),
            ),
            fault_plan=default_chaos_plan(gpus) if chaos else None,
        )
        return service.run_trace(requests)


def _serve_metrics(report) -> dict:
    return {
        "latency_p50_seconds": _exact(report.latency_quantile(0.50), "s"),
        "latency_p95_seconds": _exact(report.latency_quantile(0.95), "s"),
        "latency_p99_seconds": _exact(report.latency_quantile(0.99), "s"),
        "throughput_rps": _exact(
            report.throughput_requests_per_sec, "req/s", "higher"
        ),
        "completed": _exact(report.count("completed"), "requests", "info"),
    }


@REGISTRY.scenario(
    "serve/loadgen_volta_2gpu", "serve",
    "Poisson loadgen on 2 Volta replicas: 3000 req/s for 20 ms",
    platform="volta", gpus=2, rate=3000.0, duration=0.02, seed=0,
)
def _serve_2gpu() -> dict:
    return _serve_metrics(
        _serve_report(2, "volta", rate=3000.0, duration=0.02, seed=0)
    )


@REGISTRY.scenario(
    "serve/chaos_hedge_pascal_4gpu", "serve",
    "Chaos plan + hedging on 4 Pascal replicas: failover/hedge overhead",
    platform="pascal", gpus=4, rate=4000.0, duration=0.03, seed=2,
    chaos=True, hedge_quantile=0.9,
)
def _serve_chaos_hedge() -> dict:
    report = _serve_report(
        4, "pascal", rate=4000.0, duration=0.03, seed=2,
        chaos=True, hedge_quantile=0.9,
    )
    metrics = _serve_metrics(report)
    metrics["failovers"] = _exact(report.failovers, "count", "info")
    metrics["hedges"] = _exact(report.hedges, "count", "info")
    metrics["hedge_wins"] = _exact(report.hedge_wins, "count", "info")
    return metrics


@REGISTRY.scenario(
    "serve/loadgen_volta_4gpu_scale", "serve",
    "Poisson loadgen on 4 Volta replicas: 8000 req/s for 20 ms",
    tier="full",
    platform="volta", gpus=4, rate=8000.0, duration=0.02, seed=0,
)
def _serve_4gpu() -> dict:
    return _serve_metrics(
        _serve_report(4, "volta", rate=8000.0, duration=0.02, seed=0)
    )


# ----------------------------------------------------------------------
# kernel (wall clock)
# ----------------------------------------------------------------------

@REGISTRY.scenario(
    "kernel/gibbs_sample_chunk", "kernel",
    "Wall clock of the vectorized sampling kernel: 20k tokens, K=64",
    corpus="nytimes", tokens=20_000, topics=64, rounds=5,
)
def _bench_gibbs() -> dict:
    from repro.core.kernels import gibbs_sample_chunk

    state = kernel_state(make_corpus("nytimes", tokens=20_000, seed=0), 64, 0)
    rng = np.random.default_rng(1)

    def run():
        gibbs_sample_chunk(
            state["chunk"], state["topics"], state["theta"], state["phi"],
            state["n_k"], state["hyper"], rng,
        )

    return {"wall_seconds": _wall(repeated_median(run, rounds=5))}


@REGISTRY.scenario(
    "kernel/accumulate_phi", "kernel",
    "Wall clock of the phi-accumulation update: 20k tokens, K=64",
    corpus="nytimes", tokens=20_000, topics=64, rounds=7,
)
def _bench_accumulate_phi() -> dict:
    from repro.core.kernels import accumulate_phi

    state = kernel_state(make_corpus("nytimes", tokens=20_000, seed=0), 64, 0)

    def run():
        accumulate_phi(state["chunk"], state["topics"], 64)

    return {"wall_seconds": _wall(repeated_median(run, rounds=7))}


@REGISTRY.scenario(
    "kernel/recount_theta", "kernel",
    "Wall clock of the theta recount: 20k tokens, K=64",
    tier="full",
    corpus="nytimes", tokens=20_000, topics=64, rounds=5,
)
def _bench_recount_theta() -> dict:
    from repro.core.kernels import recount_theta

    state = kernel_state(make_corpus("nytimes", tokens=20_000, seed=0), 64, 0)

    def run():
        recount_theta(state["chunk"], state["topics"], 64)

    return {"wall_seconds": _wall(repeated_median(run, rounds=5))}


@REGISTRY.scenario(
    "kernel/alias_build", "kernel",
    "Wall clock of 8 Vose alias-table builds over 4096 weights",
    size=4_096, builds=8, rounds=7,
)
def _bench_alias() -> dict:
    from repro.core.alias import AliasTable

    rng = np.random.default_rng(0)
    weights = [rng.random(4_096) + 1e-9 for _ in range(8)]

    def run():
        for w in weights:
            AliasTable(w)

    return {"wall_seconds": _wall(repeated_median(run, rounds=7))}
