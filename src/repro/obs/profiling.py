"""Machine-readable profile reports (``repro-lda profile --format json``).

One profile run emits one JSON document with schema ``repro-profile/1``::

    {
      "schema": "repro-profile/1",
      "corpus": "…", "machine": "…",
      "num_topics": K, "iterations": n,
      "simulated_seconds": …, "wall_seconds": …,
      "tokens_per_sec": …,                  # simulated-clock throughput
      "breakdown": {"kernel": 0.71, …},     # fraction of simulated time
      "device_busy": {"gpu0": 0.93, …},     # busy fraction per device
      "counters": [{"name": …, "labels": {…}, "value": …}, …],
      "faults": {"events": […], "rollbacks": n, "repartitions": n},
      "elasticity": {"node_recovery_stall_seconds_total": s,
                     "workers_migrated_total": n,
                     "shards_adopted_total": n},
      "sync_planner": [{"algorithm": …, "topology": …, "forced": bool,
                        "count": n, "predicted_seconds": …}, …]
    }

The schema is append-only: new keys may appear in later versions, but
existing keys keep their meaning, so downstream tooling can pin on
``schema == "repro-profile/1"`` and read what it knows.
"""

from __future__ import annotations

__all__ = [
    "ELASTICITY_COUNTERS",
    "PROFILE_SCHEMA",
    "counter_total",
    "profile_json",
]

PROFILE_SCHEMA = "repro-profile/1"

#: Elastic node-recovery counters surfaced explicitly in every profile
#: (zero-valued when the run had no faults) so dashboards can chart
#: recovery cost without scraping the open-ended counter list.
ELASTICITY_COUNTERS = (
    "node_recovery_stall_seconds_total",
    "workers_migrated_total",
    "shards_adopted_total",
)


def counter_total(registry, name: str) -> float:
    """Sum a counter family across all label sets (0.0 when absent)."""
    metric = registry.get(name)
    if metric is None:
        return 0.0
    return sum(s.value for s in metric.samples())


def profile_json(
    result,
    machine,
    registry,
    corpus_name: str,
    num_topics: int,
    top: int = 12,
) -> dict:
    """The ``--format json`` document for one instrumented training run."""
    from repro.comm import decisions_from_registry
    from repro.core.culda import BREAKDOWN_KINDS, _busy_fractions

    breakdown = machine.trace.breakdown_fractions(BREAKDOWN_KINDS)
    busy = _busy_fractions(
        machine.trace.intervals,
        [g.device_id for g in machine.gpus],
        0.0,
        machine.trace.makespan(),
    )
    return {
        "schema": PROFILE_SCHEMA,
        "corpus": corpus_name,
        "machine": machine.name,
        "num_topics": num_topics,
        "iterations": len(result.iterations),
        "simulated_seconds": result.total_sim_seconds,
        "wall_seconds": result.wall_seconds,
        "tokens_per_sec": result.avg_tokens_per_sec,
        "breakdown": {
            kind: breakdown.get(kind, 0.0) for kind in BREAKDOWN_KINDS
        },
        "device_busy": {f"gpu{dev}": busy[dev] for dev in sorted(busy)},
        "counters": [
            {"name": s.name, "labels": dict(s.labels), "value": s.value}
            for s in registry.top_counters(top)
        ],
        "faults": {
            "events": [dict(e) for e in result.fault_events],
            "rollbacks": result.rollbacks,
            "repartitions": result.repartitions,
        },
        "elasticity": {
            name: counter_total(registry, name)
            for name in ELASTICITY_COUNTERS
        },
        "sync_planner": decisions_from_registry(registry),
    }
