"""Machine-readable profile reports (``repro-lda profile --format json``).

One profile run emits one JSON document with schema ``repro-profile/1``::

    {
      "schema": "repro-profile/1",
      "corpus": "…", "machine": "…",
      "num_topics": K, "iterations": n,
      "simulated_seconds": …, "wall_seconds": …,
      "tokens_per_sec": …,                  # simulated-clock throughput
      "breakdown": {"kernel": 0.71, …},     # fraction of simulated time
      "device_busy": {"gpu0": 0.93, …},     # busy fraction per device
      "counters": [{"name": …, "labels": {…}, "value": …}, …],
      "faults": {"events": […], "rollbacks": n, "repartitions": n},
      "sync_planner": [{"algorithm": …, "topology": …, "forced": bool,
                        "count": n, "predicted_seconds": …}, …]
    }

The schema is append-only: new keys may appear in later versions, but
existing keys keep their meaning, so downstream tooling can pin on
``schema == "repro-profile/1"`` and read what it knows.
"""

from __future__ import annotations

__all__ = ["PROFILE_SCHEMA", "profile_json"]

PROFILE_SCHEMA = "repro-profile/1"


def profile_json(
    result,
    machine,
    registry,
    corpus_name: str,
    num_topics: int,
    top: int = 12,
) -> dict:
    """The ``--format json`` document for one instrumented training run."""
    from repro.comm import decisions_from_registry
    from repro.core.culda import BREAKDOWN_KINDS, _busy_fractions

    breakdown = machine.trace.breakdown_fractions(BREAKDOWN_KINDS)
    busy = _busy_fractions(
        machine.trace.intervals,
        [g.device_id for g in machine.gpus],
        0.0,
        machine.trace.makespan(),
    )
    return {
        "schema": PROFILE_SCHEMA,
        "corpus": corpus_name,
        "machine": machine.name,
        "num_topics": num_topics,
        "iterations": len(result.iterations),
        "simulated_seconds": result.total_sim_seconds,
        "wall_seconds": result.wall_seconds,
        "tokens_per_sec": result.avg_tokens_per_sec,
        "breakdown": {
            kind: breakdown.get(kind, 0.0) for kind in BREAKDOWN_KINDS
        },
        "device_busy": {f"gpu{dev}": busy[dev] for dev in sorted(busy)},
        "counters": [
            {"name": s.name, "labels": dict(s.labels), "value": s.value}
            for s in registry.top_counters(top)
        ],
        "faults": {
            "events": [dict(e) for e in result.fault_events],
            "rollbacks": result.rollbacks,
            "repartitions": result.repartitions,
        },
        "sync_planner": decisions_from_registry(registry),
    }
