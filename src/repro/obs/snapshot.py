"""Benchmark snapshots: run the suite, serialize, load, pretty-print.

One snapshot is one JSON document (``BENCH_<n>.json`` at the repo
root, one per PR) with schema ``repro-bench/1``::

    {
      "schema": "repro-bench/1",
      "git_sha": "…",             # HEAD at measurement time
      "tier": "quick" | "full",
      "machine": {                # fingerprinted host description
        "fingerprint": "…",       # sha256 of the fields below
        "platform": "…", "python": "…", "numpy": "…", "cpu_count": n
      },
      "scenarios": {
        "<name>": {
          "group": "…", "description": "…", "digest": "…",
          "params": {…},          # the exact workload spec
          "metrics": {
            "<metric>": {"value": …, "unit": "…", "kind": "exact"|"wall",
                         "direction": "higher"|"lower"|"info", "iqr": …}
          }
        }
      }
    }

Exact (simulated-clock) metrics are comparable across machines; wall
metrics are only gated when both snapshots carry the same machine
fingerprint (see :mod:`repro.obs.compare`).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import subprocess
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs.registry import REGISTRY

__all__ = [
    "SNAPSHOT_SCHEMA",
    "machine_fingerprint",
    "git_sha",
    "run_suite",
    "write_snapshot",
    "load_snapshot",
    "format_snapshot",
]

SNAPSHOT_SCHEMA = "repro-bench/1"


def git_sha() -> str:
    """HEAD's commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def machine_fingerprint() -> dict:
    """The host description stored in a snapshot.

    The fingerprint hashes everything that plausibly moves wall-clock
    numbers: OS/arch, interpreter, numpy build, and core count.
    """
    fields = {
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }
    blob = json.dumps(fields, sort_keys=True)
    return {
        "fingerprint": hashlib.sha256(blob.encode()).hexdigest()[:16],
        **fields,
    }


def run_suite(
    tier: str = "quick",
    only: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the selected scenarios and return a snapshot dict."""
    # Populate the registry.
    import repro.obs.scenarios  # noqa: F401

    scenarios = REGISTRY.select(tier, only)
    if not scenarios:
        raise ValueError(
            f"no scenarios match tier={tier!r}"
            + (f", only={only!r}" if only else "")
        )
    snapshot: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "git_sha": git_sha(),
        "tier": tier,
        "machine": machine_fingerprint(),
        "scenarios": {},
    }
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.name} …")
        metrics = scenario.run()
        snapshot["scenarios"][scenario.name] = {
            "group": scenario.group,
            "description": scenario.description,
            "digest": scenario.digest,
            "params": dict(scenario.params),
            "metrics": {k: m.as_dict() for k, m in sorted(metrics.items())},
        }
    return snapshot


def write_snapshot(snapshot: dict, path: str | Path) -> None:
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str | Path) -> dict:
    with open(path) as fh:
        snapshot = json.load(fh)
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {SNAPSHOT_SCHEMA!r} "
            "(snapshot from an incompatible version?)"
        )
    if not isinstance(snapshot.get("scenarios"), dict):
        raise ValueError(f"{path}: snapshot carries no scenarios")
    return snapshot


def _fmt_value(value: float, unit: str) -> str:
    if unit in ("tokens/s", "bytes") and abs(value) >= 1e6:
        return f"{value / 1e6:,.2f} M{unit.replace('bytes', 'B')}"
    if unit == "s" and abs(value) < 1.0:
        return f"{value * 1e3:.4g} ms"
    return f"{value:,.6g} {unit}".rstrip()


def format_snapshot(snapshot: dict) -> str:
    """Human-readable per-scenario metric table."""
    lines = [
        f"benchmark snapshot — tier {snapshot['tier']}, "
        f"git {snapshot['git_sha'][:12]}, "
        f"machine {snapshot['machine']['fingerprint']}"
    ]
    for name, entry in sorted(snapshot["scenarios"].items()):
        lines.append("")
        lines.append(f"{name}  [{entry['digest']}]")
        lines.append(f"  {entry['description']}")
        for metric, m in sorted(entry["metrics"].items()):
            kind = m["kind"]
            tail = ""
            if kind == "wall" and m.get("iqr"):
                tail = f"  (±IQR {m['iqr'] * 1e3:.3g} ms)"
            lines.append(
                f"    {metric:<28s} {_fmt_value(m['value'], m['unit']):>18s}"
                f"  [{kind}/{m['direction']}]{tail}"
            )
    return "\n".join(lines)
