"""Snapshot comparison and the CI regression gate.

:func:`compare_snapshots` walks every scenario/metric pair two
snapshots share and classifies each into a verdict:

- ``ok`` — unchanged (exact) or within tolerance (wall).
- ``regressed`` — worse than the baseline beyond tolerance. **Gates.**
- ``improved`` — better beyond tolerance. Not a failure, but the delta
  table flags it: refresh the committed snapshot so the new level
  becomes the baseline.
- ``drift`` — an ``info``-direction exact metric changed (e.g. a
  likelihood value after a numerics change). Reported, not gated.
- ``skipped`` — wall metric with mismatched machine fingerprints, or a
  scenario whose params digest changed (different workload = new
  baseline, not a comparison).

Noise model
-----------
Exact (simulated-clock / deterministic) metrics must be **bit-stable**:
they are compared with a relative epsilon of 1e-9 — just enough to
absorb JSON round-tripping — and anything beyond that is a real change.
Wall-clock metrics get ``tolerance = max(rel_floor · baseline,
iqr_mult · max(old.iqr, new.iqr))``: a machine with noisy timings
widens its own gate rather than tripping it, while a genuinely large
regression still fails even on a noisy box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.registry import Measurement

__all__ = ["Delta", "compare_snapshots", "format_deltas", "gate"]

#: Relative slack for "bit-stable" metrics: absorbs float → JSON →
#: float round-tripping, nothing more.
EXACT_REL_EPS = 1e-9

#: Wall-clock gate: relative floor and IQR multiplier.
WALL_REL_FLOOR = 0.25
WALL_IQR_MULT = 3.0

VERDICTS = ("ok", "regressed", "improved", "drift", "skipped")


@dataclass(frozen=True)
class Delta:
    """One compared metric."""

    scenario: str
    metric: str
    old: float
    new: float
    verdict: str
    note: str = ""

    @property
    def rel_change(self) -> float:
        if self.old == 0:
            return math.inf if self.new != 0 else 0.0
        return (self.new - self.old) / abs(self.old)


def _same_exact(old: float, new: float) -> bool:
    if math.isnan(old) and math.isnan(new):
        return True
    if old == new:
        return True
    scale = max(abs(old), abs(new))
    return abs(new - old) <= EXACT_REL_EPS * scale


def _compare_metric(
    scenario: str,
    metric: str,
    old: Measurement,
    new: Measurement,
    machines_match: bool,
    wall_rel_floor: float,
) -> Delta:
    if old.kind == "wall" or new.kind == "wall":
        if not machines_match:
            return Delta(
                scenario, metric, old.value, new.value, "skipped",
                "wall metric, machine fingerprints differ",
            )
        tolerance = max(
            wall_rel_floor * abs(old.value),
            WALL_IQR_MULT * max(old.iqr, new.iqr),
        )
        diff = new.value - old.value
        if abs(diff) <= tolerance:
            return Delta(scenario, metric, old.value, new.value, "ok")
        worse = diff > 0 if old.direction == "lower" else diff < 0
        if old.direction == "info":
            return Delta(
                scenario, metric, old.value, new.value, "drift",
                "wall info metric moved beyond tolerance",
            )
        if worse:
            return Delta(
                scenario, metric, old.value, new.value, "regressed",
                f"beyond tolerance {tolerance:.4g}",
            )
        return Delta(
            scenario, metric, old.value, new.value, "improved",
            "refresh the snapshot to adopt the new baseline",
        )

    # exact: bit-stable expectation
    if _same_exact(old.value, new.value):
        return Delta(scenario, metric, old.value, new.value, "ok")
    if old.direction == "info":
        return Delta(
            scenario, metric, old.value, new.value, "drift",
            "deterministic info metric changed",
        )
    worse = (
        new.value > old.value
        if old.direction == "lower"
        else new.value < old.value
    )
    if worse:
        return Delta(
            scenario, metric, old.value, new.value, "regressed",
            "simulated-clock metric is bit-stable; this is a real change",
        )
    return Delta(
        scenario, metric, old.value, new.value, "improved",
        "refresh the snapshot to adopt the new baseline",
    )


def compare_snapshots(
    old: dict,
    new: dict,
    wall_rel_floor: float = WALL_REL_FLOOR,
) -> list[Delta]:
    """Classify every shared scenario/metric pair; see module docs."""
    machines_match = (
        old.get("machine", {}).get("fingerprint")
        == new.get("machine", {}).get("fingerprint")
    )
    deltas: list[Delta] = []
    old_scenarios = old["scenarios"]
    new_scenarios = new["scenarios"]
    for name in sorted(set(old_scenarios) & set(new_scenarios)):
        o, n = old_scenarios[name], new_scenarios[name]
        if o.get("digest") != n.get("digest"):
            deltas.append(
                Delta(
                    name, "*", float("nan"), float("nan"), "skipped",
                    "workload params changed — new baseline, not comparable",
                )
            )
            continue
        o_metrics, n_metrics = o["metrics"], n["metrics"]
        for metric in sorted(set(o_metrics) & set(n_metrics)):
            deltas.append(
                _compare_metric(
                    name, metric,
                    Measurement.from_dict(o_metrics[metric]),
                    Measurement.from_dict(n_metrics[metric]),
                    machines_match, wall_rel_floor,
                )
            )
    return deltas


def gate(deltas: list[Delta]) -> list[Delta]:
    """The deltas that fail the merge gate (regressions only)."""
    return [d for d in deltas if d.verdict == "regressed"]


def format_deltas(deltas: list[Delta], verbose: bool = False) -> str:
    """The per-scenario delta table ``bench --compare`` prints.

    Non-``ok`` rows always print; ``ok`` rows only with *verbose*.
    """
    shown = [d for d in deltas if verbose or d.verdict != "ok"]
    lines = [
        f"compared {len(deltas)} metric(s): "
        + ", ".join(
            f"{v}={sum(1 for d in deltas if d.verdict == v)}"
            for v in VERDICTS
            if any(d.verdict == v for d in deltas)
        )
    ]
    if shown:
        lines.append("")
        lines.append(
            f"  {'scenario':<34s} {'metric':<28s} {'old':>14s} "
            f"{'new':>14s} {'Δ%':>8s}  verdict"
        )
        for d in shown:
            rel = d.rel_change
            rel_s = "n/a" if not math.isfinite(rel) else f"{rel:+.2%}"
            lines.append(
                f"  {d.scenario:<34s} {d.metric:<28s} {d.old:>14.6g} "
                f"{d.new:>14.6g} {rel_s:>8s}  {d.verdict}"
                + (f" ({d.note})" if d.note else "")
            )
    failures = gate(deltas)
    lines.append("")
    if failures:
        names = ", ".join(sorted({d.scenario for d in failures}))
        lines.append(
            f"GATE: {len(failures)} regression(s) in: {names}"
        )
    else:
        lines.append("GATE: clean — no regressions")
    return "\n".join(lines)
