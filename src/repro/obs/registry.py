"""The benchmark scenario registry.

A *scenario* is one named, seeded, self-contained measurement: it
builds its own workload, runs it, and returns a dict of
:class:`Measurement` values. Scenarios declare themselves with the
:meth:`BenchRegistry.scenario` decorator (see
:mod:`repro.obs.scenarios` for the curated suite) and carry:

- a ``group`` (``train`` / ``sync`` / ``serve`` / ``kernel``) for
  display,
- a ``tier`` — ``quick`` scenarios run in both tiers (the CI gate),
  ``full`` scenarios only in the full suite. Tiers select *which*
  scenarios run; they never shrink a scenario's workload, so a quick
  run's numbers are directly comparable against a committed full-suite
  snapshot.
- ``params``, the exact workload spec. Its digest is stored in the
  snapshot and the comparator refuses to compare scenarios whose
  digests differ — a changed workload is a new baseline, not a
  regression.

Measurements carry their own gate semantics:

- ``kind="exact"`` — simulated-clock / deterministic values. Bit-stable
  run to run; any change is a gate event.
- ``kind="wall"`` — real wall-clock. Gated with a noise-aware tolerance
  derived from the measured IQR.
- ``direction`` — ``"higher"`` / ``"lower"`` is better, or ``"info"``
  (tracked and reported, never gated).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "Measurement",
    "Scenario",
    "BenchRegistry",
    "REGISTRY",
    "params_digest",
]

TIERS = ("quick", "full")
KINDS = ("exact", "wall")
DIRECTIONS = ("higher", "lower", "info")


@dataclass(frozen=True)
class Measurement:
    """One metric value with its gate semantics."""

    value: float
    unit: str = ""
    kind: str = "exact"
    direction: str = "lower"
    #: Inter-quartile range of the repeated measurements (wall only).
    iqr: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )

    def as_dict(self) -> dict:
        record = {
            "value": self.value,
            "unit": self.unit,
            "kind": self.kind,
            "direction": self.direction,
        }
        if self.kind == "wall":
            record["iqr"] = self.iqr
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Measurement":
        return cls(
            value=float(record["value"]),
            unit=str(record.get("unit", "")),
            kind=str(record.get("kind", "exact")),
            direction=str(record.get("direction", "lower")),
            iqr=float(record.get("iqr", 0.0)),
        )


def params_digest(params: dict) -> str:
    """Stable short digest of a scenario's workload spec."""
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    group: str
    tier: str
    description: str
    params: dict
    fn: Callable[[], dict] = field(compare=False)

    @property
    def digest(self) -> str:
        return params_digest(self.params)

    def run(self) -> dict:
        metrics = self.fn()
        for key, m in metrics.items():
            if not isinstance(m, Measurement):
                raise TypeError(
                    f"scenario {self.name!r} metric {key!r} is "
                    f"{type(m).__name__}, expected Measurement"
                )
        return metrics


class BenchRegistry:
    """Name → scenario map with decorator-based registration."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def scenario(
        self,
        name: str,
        group: str,
        description: str,
        tier: str = "quick",
        **params,
    ):
        """Register the decorated zero-arg callable as a scenario."""
        if tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
        if name in self._scenarios:
            raise ValueError(f"scenario {name!r} already registered")

        def decorate(fn: Callable[[], dict]) -> Callable[[], dict]:
            self._scenarios[name] = Scenario(
                name=name, group=group, tier=tier,
                description=description, params=dict(params), fn=fn,
            )
            return fn

        return decorate

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(f"no scenario named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._scenarios)

    def __len__(self) -> int:
        return len(self._scenarios)

    def select(self, tier: str = "quick", only: str | None = None) -> list[Scenario]:
        """Scenarios for *tier* (quick ⊂ full), name-sorted, optionally
        filtered to names containing *only*."""
        if tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
        out = []
        for name in self.names():
            s = self._scenarios[name]
            if tier == "quick" and s.tier != "quick":
                continue
            if only and only not in name:
                continue
            out.append(s)
        return out


#: The process-wide registry; importing :mod:`repro.obs.scenarios`
#: populates it with the curated suite.
REGISTRY = BenchRegistry()
