"""Repeated-median wall-clock timing for the benchmark suite.

The simulated-clock metrics in this repo are bit-stable, but the NumPy
hot paths (the vectorized sampling kernel, φ accumulation, alias-table
construction) are real wall-clock measurements and therefore noisy.
:func:`repeated_median` runs the payload ``rounds`` times, keeps every
per-round duration, and reports the **median** with the inter-quartile
range as the dispersion estimate — the same robust-summary choice
pytest-benchmark defaults to, reimplemented here so the registry can
run scenarios outside a pytest session.

The comparator (:mod:`repro.obs.compare`) derives its wall-clock
tolerance from the larger of the two snapshots' IQRs, so a noisy
machine widens its own gate instead of tripping it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["WallTiming", "repeated_median"]


@dataclass(frozen=True)
class WallTiming:
    """Robust summary of repeated wall-clock measurements (seconds)."""

    median: float
    iqr: float
    min: float
    max: float
    rounds: int

    def as_dict(self) -> dict:
        return {
            "median": self.median,
            "iqr": self.iqr,
            "min": self.min,
            "max": self.max,
            "rounds": self.rounds,
        }


def repeated_median(
    fn: Callable[[], object],
    rounds: int = 5,
    warmup: int = 1,
) -> WallTiming:
    """Time ``fn()`` *rounds* times; return the median ± IQR.

    ``warmup`` extra calls run first and are discarded (first-call
    effects: allocator growth, icache, numpy's lazy kernels).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    for _ in range(warmup):
        fn()
    durations = np.empty(rounds, dtype=np.float64)
    for i in range(rounds):
        t0 = time.perf_counter()
        fn()
        durations[i] = time.perf_counter() - t0
    q1, med, q3 = np.percentile(durations, [25.0, 50.0, 75.0])
    return WallTiming(
        median=float(med),
        iqr=float(q3 - q1),
        min=float(durations.min()),
        max=float(durations.max()),
        rounds=rounds,
    )
