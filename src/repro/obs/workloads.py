"""Shared workload builders for benchmarks and the observatory.

The per-benchmark boilerplate the ``benchmarks/bench_*.py`` files used
to repeat — synthetic-twin construction, platform/machine creation,
trainer assembly with a fixed seed — lives here once, imported both by
``benchmarks/conftest.py`` (for the pytest benches) and by the scenario
registry (:mod:`repro.obs.scenarios`). Everything is seeded: the same
arguments always produce the same corpus, machine, and trainer.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "make_corpus",
    "make_platform",
    "make_culda",
    "make_distributed_culda",
    "make_baseline",
    "kernel_state",
    "train_tiny_checkpoint",
]


def make_corpus(
    kind: str = "nytimes",
    tokens: int = 50_000,
    seed: int = 0,
    num_topics: int = 32,
    vocab_cap: int = 8_192,
):
    """A synthetic twin corpus (``nytimes`` or ``pubmed``)."""
    from repro.corpus.synthetic import nytimes_like, pubmed_like

    makers: dict[str, Callable] = {
        "nytimes": nytimes_like, "pubmed": pubmed_like,
    }
    try:
        maker = makers[kind]
    except KeyError:
        raise ValueError(
            f"unknown corpus kind {kind!r}; expected one of {tuple(makers)}"
        ) from None
    return maker(
        num_tokens=tokens, num_topics=num_topics, seed=seed,
        vocab_cap=vocab_cap,
    )


def make_platform(platform: str = "pascal", gpus: int = 1):
    """A simulated machine on a named platform's device specs."""
    from repro.gpusim.platform import make_machine

    return make_machine(platform, gpus)


def make_culda(
    corpus,
    platform: str = "pascal",
    gpus: int = 1,
    registry=None,
    callbacks=None,
    **config_kwargs,
):
    """A CuLDA trainer on a fresh machine; config defaults are the
    :class:`~repro.core.culda.TrainConfig` defaults plus *config_kwargs*."""
    from repro.core import CuLDA, TrainConfig

    return CuLDA(
        corpus,
        machine=make_platform(platform, gpus),
        config=TrainConfig(**config_kwargs),
        registry=registry,
        callbacks=callbacks,
    )


def make_distributed_culda(
    corpus,
    nodes: int = 2,
    platform: str = "pascal",
    gpus_per_node: int = 1,
    link_gbps: float | None = None,
    latency_seconds: float | None = None,
    registry=None,
    callbacks=None,
    **config_kwargs,
):
    """A multi-node CuLDA trainer: *nodes* fresh machines joined by a
    fresh :class:`~repro.cluster.network.ClusterNetwork` (10 GbE with
    50 µs latency by default; pass ``link_gbps``/``latency_seconds``
    for a faster fabric, e.g. 12.5/5e-6 for 100 GbE-class)."""
    from repro.cluster.network import ClusterNetwork
    from repro.core import DistributedCuLDA, TrainConfig

    net_kwargs = {}
    if link_gbps is not None:
        net_kwargs["link_gbps"] = link_gbps
    if latency_seconds is not None:
        net_kwargs["latency_seconds"] = latency_seconds
    network = ClusterNetwork(nodes, **net_kwargs)
    return DistributedCuLDA(
        corpus,
        [make_platform(platform, gpus_per_node) for _ in range(nodes)],
        network=network,
        config=TrainConfig(**config_kwargs),
        registry=registry,
        callbacks=callbacks,
    )


def make_baseline(
    corpus,
    algo: str,
    num_topics: int = 32,
    seed: int = 0,
    registry=None,
    **kwargs,
):
    """A baseline trainer (``saberlda``/``warplda``/``scvb0``/``ldastar``).

    SaberLDA runs on a simulated machine (``platform``/``gpus`` kwargs);
    the CPU/cluster baselines take their own kwargs (e.g. ``num_workers``
    for LDA*).
    """
    from repro.core.model import LDAHyperParams

    if algo == "saberlda":
        from repro.baselines import SaberLDA
        from repro.core import TrainConfig

        platform = kwargs.pop("platform", "pascal")
        gpus = kwargs.pop("gpus", 1)
        return SaberLDA(
            corpus,
            make_platform(platform, gpus),
            TrainConfig(num_topics=num_topics, seed=seed, **kwargs),
            registry=registry,
        )
    hyper = LDAHyperParams(num_topics=num_topics)
    if algo == "warplda":
        from repro.baselines import WarpLDA

        return WarpLDA(corpus, hyper, seed=seed, registry=registry, **kwargs)
    if algo == "scvb0":
        from repro.baselines import SCVB0

        return SCVB0(corpus, hyper, seed=seed, registry=registry, **kwargs)
    if algo == "ldastar":
        from repro.baselines import LDAStar

        return LDAStar(corpus, hyper, seed=seed, registry=registry, **kwargs)
    raise ValueError(f"unknown baseline algorithm {algo!r}")


def kernel_state(corpus, num_topics: int = 64, seed: int = 0) -> dict:
    """Mid-training sampler state for kernel micro-benchmarks.

    Builds exactly what one training iteration reads: the word-first
    token chunk, a seeded random assignment, the sparse θ derived from
    it, the accumulated φ, and the topic totals ``n_k``.
    """
    from repro.core.kernels import accumulate_phi
    from repro.core.model import LDAHyperParams, SparseTheta

    chunk = corpus.to_chunk()
    rng = np.random.default_rng(seed)
    topics = rng.integers(0, num_topics, size=chunk.num_tokens).astype(np.int64)
    theta = SparseTheta.from_assignments(chunk, topics, num_topics, False)
    phi = accumulate_phi(chunk, topics, num_topics)
    return {
        "chunk": chunk,
        "topics": topics,
        "theta": theta,
        "phi": phi,
        "n_k": phi.sum(axis=1),
        "hyper": LDAHyperParams(num_topics=num_topics),
        "rng": rng,
    }


def train_tiny_checkpoint(
    path,
    tokens: int = 6_000,
    num_topics: int = 16,
    iterations: int = 2,
    seed: int = 0,
) -> str:
    """Train a small deterministic model and save it to *path*.

    The serving scenarios need a checkpoint on disk; timings downstream
    depend only on the model's shape and counts (deterministic for a
    fixed spec), never on the path.
    """
    from repro.core import save_model

    corpus = make_corpus("nytimes", tokens=tokens, seed=seed, num_topics=8)
    trainer = make_culda(
        corpus, platform="pascal", gpus=1,
        num_topics=num_topics, iterations=iterations, seed=seed,
    )
    result = trainer.train()
    save_model(result, path, vocabulary=corpus.vocabulary)
    return str(path)
