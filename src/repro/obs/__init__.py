"""Performance observatory: benchmark snapshots and the regression gate.

``repro.obs`` turns the repo's performance surface into a curated,
versioned artifact:

- :mod:`repro.obs.registry` — scenario registry and the
  :class:`Measurement` gate semantics (exact vs wall, direction).
- :mod:`repro.obs.scenarios` — the curated suite (train / sync / serve /
  kernel groups); importing it populates :data:`REGISTRY`.
- :mod:`repro.obs.snapshot` — run the suite, write/load ``BENCH_<n>.json``.
- :mod:`repro.obs.compare` — noise-aware snapshot comparison; the
  ``bench --compare`` CI gate.
- :mod:`repro.obs.workloads` — seeded workload builders shared with
  ``benchmarks/``.
- :mod:`repro.obs.timing` — repeated-median wall-clock measurement.
- :mod:`repro.obs.profiling` — the ``repro-lda profile --format json``
  schema.

See ``docs/BENCHMARKS.md`` for the workflow.
"""

from repro.obs.compare import Delta, compare_snapshots, format_deltas, gate
from repro.obs.profiling import PROFILE_SCHEMA, profile_json
from repro.obs.registry import (
    REGISTRY,
    BenchRegistry,
    Measurement,
    Scenario,
    params_digest,
)
from repro.obs.snapshot import (
    SNAPSHOT_SCHEMA,
    format_snapshot,
    load_snapshot,
    machine_fingerprint,
    run_suite,
    write_snapshot,
)
from repro.obs.timing import WallTiming, repeated_median

__all__ = [
    "Measurement",
    "Scenario",
    "BenchRegistry",
    "REGISTRY",
    "params_digest",
    "SNAPSHOT_SCHEMA",
    "run_suite",
    "write_snapshot",
    "load_snapshot",
    "format_snapshot",
    "machine_fingerprint",
    "Delta",
    "compare_snapshots",
    "format_deltas",
    "gate",
    "WallTiming",
    "repeated_median",
    "PROFILE_SCHEMA",
    "profile_json",
]
