"""Simulated-hardware fault exceptions.

The fault-injection subsystem (:mod:`repro.faults`) flips fault state on
:class:`~repro.gpusim.device.Device` and
:class:`~repro.gpusim.interconnect.Link` objects; the simulator raises
these exceptions at the same points real CUDA surfaces the corresponding
errors — a kernel launch on a lost device, a peer copy over a dead link.
The recovery layer in :mod:`repro.engine.recovery` catches them and
reacts per the run's :class:`~repro.engine.recovery.RecoveryPolicy`.

These classes live in ``gpusim`` (not ``repro.faults``) because the
hardware model must be able to raise them without importing the
fault-plan machinery layered on top of it.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "DeviceLost",
    "NodeLost",
    "LinkDown",
    "SyncPathError",
    "KernelFault",
]


class FaultError(RuntimeError):
    """Base class for simulated hardware faults."""


class DeviceLost(FaultError):
    """An operation touched a device that has failed (permanent loss)."""

    #: Human name of the failed unit ("GPU" here, "node" for NodeLost);
    #: recovery messages use it so a cluster failure never reads "GPU 2".
    unit = "GPU"

    def __init__(self, device_id: int, message: str | None = None):
        self.device_id = int(device_id)
        super().__init__(
            message or f"device {device_id} is lost (simulated failure)"
        )


class NodeLost(DeviceLost):
    """A cluster node was declared dead by the membership failure
    detector (heartbeat lease expired — see
    :mod:`repro.cluster.membership`).

    Subclasses :class:`DeviceLost` because a node is the cluster's unit
    of permanent loss exactly as a GPU is the machine's: the engine's
    elastic-recovery path (snapshot restore + re-partition over the
    survivors) handles both through the same
    :meth:`~repro.engine.algorithm.Algorithm.handle_device_loss` hook.
    """

    unit = "node"

    def __init__(self, node_id: int, message: str | None = None):
        super().__init__(
            node_id,
            message or f"node {node_id} is lost (heartbeat lease expired)",
        )
        self.node_id = int(node_id)


class LinkDown(FaultError):
    """A transfer was attempted over a failed link.

    ``transient=True`` marks a flaky-link fault (the link recovers on a
    later attempt); ``False`` marks an outage that persists until the
    fault plan restores the link.
    """

    def __init__(
        self,
        link_name: str,
        message: str | None = None,
        transient: bool = False,
    ):
        self.link_name = str(link_name)
        self.transient = bool(transient)
        kind = "transient failure on" if transient else "down:"
        super().__init__(message or f"link {kind} {link_name} (simulated)")


class SyncPathError(LinkDown):
    """A collective operation found no usable path for a transfer.

    Raised by the communication layer (:mod:`repro.comm`) when a
    transfer exhausts its retry budget — or has none — on a down link,
    so every collective (tree, ring, cpu_gather, hierarchical) surfaces
    the *same* structured error naming the dead link, the operation,
    and the endpoint devices, instead of a bare mid-transfer
    :class:`LinkDown` whose context depends on the algorithm.

    Subclasses :class:`LinkDown` so existing handlers (recovery
    policies, fault tests) keep working unchanged.
    """

    def __init__(
        self,
        link_name: str,
        op: str,
        devices: tuple[int, ...] = (),
        transient: bool = False,
        message: str | None = None,
    ):
        self.op = str(op)
        self.devices = tuple(int(d) for d in devices)
        if len(self.devices) >= 2:
            where = " between devices " + "->".join(
                str(d) for d in self.devices
            )
        elif self.devices:
            where = f" on device {self.devices[0]}"
        else:
            where = ""
        super().__init__(
            link_name,
            message
            or (
                f"no usable path for {self.op}{where}: "
                f"link {link_name} is down (simulated)"
            ),
            transient=transient,
        )


class KernelFault(FaultError):
    """A kernel launch failed (simulated NaN / sticky ECC error).

    The device survives; the iteration's outputs are unusable and must
    be rolled back.
    """

    def __init__(self, device_id: int, label: str, message: str | None = None):
        self.device_id = int(device_id)
        self.label = str(label)
        super().__init__(
            message
            or f"kernel {label!r} faulted on device {device_id} (simulated)"
        )
