"""Device memory: capacity-enforced allocation of real NumPy buffers.

The paper's scheduling algorithm (§5.1) is driven by device memory
capacity — ``M`` is chosen so a GPU holds one chunk (M = 1) or two
(M > 1, for double buffering). The simulator enforces real capacities so
that choosing M wrong fails the same way it would on hardware:
:class:`DeviceOutOfMemoryError`.

A :class:`DeviceArray` owns a NumPy array (the *functional* content) and
an allocation ticket (the *capacity* content). Data access from "host"
code goes through :meth:`DeviceArray.data`; kernels receive DeviceArrays
and operate on ``.data`` in place, mirroring CUDA's device-pointer
discipline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import Device

__all__ = ["DeviceOutOfMemoryError", "DeviceAllocator", "DeviceArray"]


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's remaining capacity."""


class DeviceAllocator:
    """Tracks allocated bytes against a fixed capacity."""

    def __init__(self, capacity_bytes: int, owner: str = "device"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.owner = owner
        self._in_use = 0
        self._peak = 0
        self._live: set[int] = set()
        self._next_ticket = 0

    @property
    def bytes_in_use(self) -> int:
        return self._in_use

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self._in_use

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def num_live(self) -> int:
        return len(self._live)

    def allocate(self, nbytes: int) -> int:
        """Reserve *nbytes*; returns a ticket id for :meth:`free`."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._in_use + nbytes > self.capacity_bytes:
            raise DeviceOutOfMemoryError(
                f"{self.owner}: cannot allocate {nbytes / 2**20:.1f} MiB "
                f"({self._in_use / 2**20:.1f} MiB in use of "
                f"{self.capacity_bytes / 2**20:.1f} MiB)"
            )
        ticket = self._next_ticket
        self._next_ticket += 1
        self._in_use += nbytes
        self._peak = max(self._peak, self._in_use)
        self._live.add(ticket)
        self._ticket_sizes = getattr(self, "_ticket_sizes", {})
        self._ticket_sizes[ticket] = nbytes
        return ticket

    def free(self, ticket: int) -> None:
        """Release a previous allocation. Double-free raises."""
        if ticket not in self._live:
            raise ValueError(f"{self.owner}: ticket {ticket} is not live")
        self._live.remove(ticket)
        self._in_use -= self._ticket_sizes.pop(ticket)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceAllocator({self.owner}, in_use={self._in_use}, "
            f"capacity={self.capacity_bytes})"
        )


class DeviceArray:
    """A typed buffer resident in a simulated device's memory.

    Parameters
    ----------
    device: owning device.
    shape / dtype: logical array shape and element type. The *charged*
        size is ``prod(shape) * dtype.itemsize`` — so using ``uint16``
        topic indices genuinely halves the footprint, which is the
        paper's data-compression optimization (§6.1.3).
    fill: optional initial NumPy array (copied) or scalar.
    label: debugging/tracing label.
    """

    def __init__(
        self,
        device: "Device",
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float32,
        fill: np.ndarray | float | int | None = None,
        label: str = "buf",
    ):
        self.device = device
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self.dtype = np.dtype(dtype)
        self.label = label
        self.nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self._ticket = device.allocator.allocate(self.nbytes)
        self._freed = False
        if isinstance(fill, np.ndarray):
            if fill.shape != self.shape:
                device.allocator.free(self._ticket)
                raise ValueError(f"fill shape {fill.shape} != {self.shape}")
            self._data = np.ascontiguousarray(fill, dtype=self.dtype).copy()
        elif fill is None:
            self._data = np.zeros(self.shape, dtype=self.dtype)
        else:
            self._data = np.full(self.shape, fill, dtype=self.dtype)

    @property
    def data(self) -> np.ndarray:
        """The underlying NumPy buffer (raises after :meth:`free`)."""
        if self._freed:
            raise RuntimeError(f"use-after-free of device buffer {self.label!r}")
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        if self._freed:
            raise RuntimeError(f"use-after-free of device buffer {self.label!r}")
        if value.shape != self.shape or np.dtype(value.dtype) != self.dtype:
            raise ValueError("replacement buffer must match shape and dtype")
        self._data = np.ascontiguousarray(value)

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release the device memory. Safe to call once."""
        if self._freed:
            raise RuntimeError(f"double free of device buffer {self.label!r}")
        self.device.allocator.free(self._ticket)
        self._freed = True
        self._data = np.empty(0, dtype=self.dtype)

    def copy_to_host(self) -> np.ndarray:
        """A host-side copy of the buffer's contents (no time charged —
        use :meth:`Machine.memcpy_d2h` for timed transfers)."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "freed" if self._freed else f"{self.nbytes}B"
        return (
            f"DeviceArray({self.label!r}, shape={self.shape}, "
            f"dtype={self.dtype.name}, {state}, dev={self.device.device_id})"
        )
