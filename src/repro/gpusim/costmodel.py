"""Roofline cost model.

The paper's §3 characterization shows LDA sampling performs ~0.27
floating-point operations per byte of memory traffic (Table 1), far
below the compute/bandwidth ratio of any evaluated processor, so the
sampling time is governed by memory traffic. The simulator therefore
charges each kernel

.. math::

    t = \\max\\left(\\frac{B}{BW_{eff}},\\; \\frac{F}{FLOPS_{eff}},\\;
                  t_{atomic}\\right) + t_{launch} + t_{wave}

where :math:`BW_{eff}` is the device's peak bandwidth derated by an
architecture-specific efficiency (Table 2 platforms differ in cache and
scheduling quality — this is how the paper's Volta achieves a
super-bandwidth-ratio speedup), and :math:`t_{wave}` charges the tail
effect when the block count is not a multiple of what the SMs co-run.

Shared-memory and L1 reuse are modeled by the *kernels themselves*:
bytes served from shared memory are simply not counted in ``bytes_read``
(they were counted once, when the block staged them). This keeps the
cost model mechanism-free and puts the optimization story (sub-expression
reuse, shared p2 tree, compression) where the paper puts it — in the
kernel's traffic, not in a magic constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["KernelCost", "TransferCost", "CostModel"]


@dataclass(frozen=True)
class KernelCost:
    """Resource footprint of one kernel launch.

    Attributes
    ----------
    bytes_read / bytes_written:
        Global (off-chip) memory traffic in bytes. On-chip traffic
        (shared memory, register shuffles) is free by design.
    flops:
        Floating-point operations.
    atomic_ops:
        Global atomic operations; charged at the device's atomic
        throughput *scaled by the locality factor* — the paper (§6.2)
        observes that atomics with good locality are fast on NVIDIA GPUs.
    atomic_locality:
        In [0, 1]; 1.0 = perfectly coalesced/local atomics (word-sorted φ
        update), 0.0 = fully scattered.
    num_blocks / shared_mem_per_block:
        Launch geometry, used for the wave/tail charge and shared-memory
        capacity checks.
    """

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    atomic_ops: float = 0.0
    atomic_locality: float = 1.0
    num_blocks: int = 1
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        for name in ("bytes_read", "bytes_written", "flops", "atomic_ops"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.atomic_locality <= 1.0:
            raise ValueError("atomic_locality must be in [0, 1]")
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def flops_per_byte(self) -> float:
        """Arithmetic intensity (Eq 3 of the paper)."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def __add__(self, other: "KernelCost") -> "KernelCost":
        """Combine two cost footprints launched as one kernel."""
        if not isinstance(other, KernelCost):
            return NotImplemented
        total_atomics = self.atomic_ops + other.atomic_ops
        locality = (
            (self.atomic_ops * self.atomic_locality + other.atomic_ops * other.atomic_locality)
            / total_atomics
            if total_atomics
            else 1.0
        )
        return KernelCost(
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            flops=self.flops + other.flops,
            atomic_ops=total_atomics,
            atomic_locality=locality,
            num_blocks=max(self.num_blocks, other.num_blocks),
            shared_mem_per_block=max(
                self.shared_mem_per_block, other.shared_mem_per_block
            ),
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Cost with traffic/flops/blocks multiplied by *factor*.

        Used by the analytic projection to scale measured per-token costs
        to full-dataset token counts.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return replace(
            self,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            flops=self.flops * factor,
            atomic_ops=self.atomic_ops * factor,
            num_blocks=max(1, int(round(self.num_blocks * factor))),
        )


@dataclass(frozen=True)
class TransferCost:
    """Footprint of one host↔device or peer-to-peer copy."""

    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class CostModel:
    """Timing rules shared by all devices (pure functions of a spec)."""

    #: Fraction of launch geometry below which the tail charge vanishes.
    min_wave_blocks: int = 1

    def kernel_seconds(self, spec: "DeviceSpec", cost: KernelCost) -> float:  # noqa: F821
        """Simulated execution time of *cost* on *spec*.

        Raises
        ------
        ValueError
            If the kernel requests more shared memory per block than the
            device provides (a real launch failure).
        """
        if cost.shared_mem_per_block > spec.shared_mem_per_block:
            raise ValueError(
                f"kernel requests {cost.shared_mem_per_block} B shared memory "
                f"per block; {spec.name} provides {spec.shared_mem_per_block} B"
            )
        bw = spec.peak_bandwidth_bytes * spec.mem_efficiency
        fl = spec.peak_flops * spec.compute_efficiency
        mem_t = cost.total_bytes / bw if bw > 0 else 0.0
        cmp_t = cost.flops / fl if fl > 0 else 0.0
        atom_rate = spec.atomic_ops_per_sec * (
            spec.atomic_locality_floor
            + (1.0 - spec.atomic_locality_floor) * cost.atomic_locality
        )
        atm_t = cost.atomic_ops / atom_rate if cost.atomic_ops else 0.0
        body = max(mem_t, cmp_t, atm_t)
        # Tail (wave) effect: the last partial wave of blocks underuses SMs.
        concurrent = max(self.min_wave_blocks, spec.num_sms * spec.blocks_per_sm)
        waves = -(-cost.num_blocks // concurrent)  # ceil
        tail = (waves * concurrent - cost.num_blocks) / (waves * concurrent)
        body *= 1.0 + spec.tail_penalty * tail
        return body + spec.kernel_launch_seconds

    def transfer_seconds(self, link: "Link", cost: TransferCost) -> float:  # noqa: F821
        """Simulated duration of a copy over *link*."""
        return link.latency_seconds + cost.nbytes / link.bandwidth_bytes
