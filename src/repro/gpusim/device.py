"""Device specifications and runtime devices.

A :class:`DeviceSpec` is a pure description of a processor (GPU or CPU —
the cost model does not care, only the numbers differ). A
:class:`Device` is a live simulated processor: it owns an allocator, a
default stream, and a reference to the machine clock/trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.gpusim.memory import DeviceAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.platform import Machine
    from repro.gpusim.stream import Stream

__all__ = ["DeviceSpec", "Device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a processor.

    The headline numbers (bandwidth, FLOPS, SM count, memory capacity)
    come from the paper's Table 2 / §3; the efficiency and overhead knobs
    are calibration parameters documented in EXPERIMENTS.md.

    Attributes
    ----------
    name: human-readable label ("NVIDIA Titan X (Maxwell)").
    arch: architecture tag ("maxwell", "pascal", "volta", "cpu").
    num_sms: streaming multiprocessors (cores for a CPU).
    peak_bandwidth_gbps: peak off-chip memory bandwidth in GB/s.
    peak_gflops: peak single-precision GFLOP/s.
    mem_capacity_bytes: device memory capacity (paper: 12–16 GB GPUs).
    shared_mem_per_block: shared-memory bytes available per thread block.
    warp_size: SIMD width (32 on NVIDIA; the paper notes 64 on AMD).
    blocks_per_sm: concurrently resident blocks per SM (occupancy knob).
    mem_efficiency: achieved fraction of peak bandwidth for the irregular
        LDA access mix. Newer architectures achieve more (better caches,
        better coalescers) — this is the paper's observed Volta win.
    compute_efficiency: achieved fraction of peak FLOPS.
    atomic_ops_per_sec: global-atomic throughput at perfect locality.
    atomic_locality_floor: fraction of atomic throughput retained at
        fully scattered access (paper §6.2: local atomics are fast).
    kernel_launch_seconds: fixed per-launch overhead.
    tail_penalty: weight of the last-wave underutilization charge.
    tdp_watts / idle_power_fraction: the energy model's power numbers.
    """

    name: str
    arch: str
    num_sms: int
    peak_bandwidth_gbps: float
    peak_gflops: float
    mem_capacity_bytes: int
    shared_mem_per_block: int = 48 * 1024
    warp_size: int = 32
    blocks_per_sm: int = 8
    mem_efficiency: float = 0.60
    compute_efficiency: float = 0.50
    atomic_ops_per_sec: float = 2.0e10
    atomic_locality_floor: float = 0.05
    kernel_launch_seconds: float = 5.0e-6
    tail_penalty: float = 0.3
    #: Board/package power at full load (energy model; see
    #: :meth:`repro.gpusim.platform.Machine.energy_joules`).
    tdp_watts: float = 250.0
    #: Fraction of TDP drawn while idle.
    idle_power_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.peak_bandwidth_gbps <= 0 or self.peak_gflops <= 0:
            raise ValueError("peak bandwidth and FLOPS must be positive")
        if self.mem_capacity_bytes <= 0:
            raise ValueError("mem_capacity_bytes must be positive")
        if not 0 < self.mem_efficiency <= 1 or not 0 < self.compute_efficiency <= 1:
            raise ValueError("efficiencies must be in (0, 1]")
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Peak bandwidth in bytes/second."""
        return self.peak_bandwidth_gbps * 1e9

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s."""
        return self.peak_gflops * 1e9

    @property
    def ridge_flops_per_byte(self) -> float:
        """The roofline ridge point (peak FLOPS / peak bandwidth).

        The paper quotes 9.2 for the Volta host CPU (470 GFLOPS /
        51.2 GB/s); any workload below this is memory-bound.
        """
        return self.peak_flops / self.peak_bandwidth_bytes


class Device:
    """A live simulated processor bound to a :class:`Machine`."""

    def __init__(self, device_id: int, spec: DeviceSpec, machine: "Machine"):
        self.device_id = device_id
        self.spec = spec
        self.machine = machine
        self.allocator = DeviceAllocator(spec.mem_capacity_bytes, owner=spec.name)
        self._streams: list["Stream"] = []
        self._default_stream: "Stream | None" = None
        # Fault-injection state (see repro.faults). Healthy defaults.
        self.alive = True
        self._kernel_fault_op: str | None = None
        self._kernel_fault_pending = False

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Permanently lose this device; any later stream operation on
        it raises :class:`~repro.gpusim.errors.DeviceLost`."""
        self.alive = False

    def inject_kernel_fault(self, op: str | None = None) -> None:
        """Arm a one-shot kernel fault: the next operation of kind *op*
        (any kind when None) raises
        :class:`~repro.gpusim.errors.KernelFault`."""
        self._kernel_fault_pending = True
        self._kernel_fault_op = op

    def take_kernel_fault(self, kind: str) -> bool:
        """Consume the armed kernel fault if *kind* matches."""
        if not self._kernel_fault_pending:
            return False
        if self._kernel_fault_op is not None and self._kernel_fault_op != kind:
            return False
        self._kernel_fault_pending = False
        self._kernel_fault_op = None
        return True

    @property
    def default_stream(self) -> "Stream":
        """The device's stream 0 (created on first use)."""
        if self._default_stream is None:
            self._default_stream = self.create_stream("default")
        return self._default_stream

    def create_stream(self, label: str | None = None) -> "Stream":
        """Create a new asynchronous stream on this device."""
        from repro.gpusim.stream import Stream

        stream = Stream(
            device=self,
            stream_id=len(self._streams),
            label=label or f"stream{len(self._streams)}",
        )
        self._streams.append(stream)
        return stream

    @property
    def streams(self) -> tuple["Stream", ...]:
        return tuple(self._streams)

    def busy_until(self) -> float:
        """Simulated time at which all of this device's streams are idle."""
        if not self._streams:
            return 0.0
        return max(s.available_at for s in self._streams)

    def synchronize(self) -> float:
        """Block the host until the device is idle; returns that time."""
        t = self.busy_until()
        self.machine.advance_host(t)
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        used = self.allocator.bytes_in_use
        return (
            f"Device(id={self.device_id}, {self.spec.name}, "
            f"mem={used / 2**20:.1f}/{self.spec.mem_capacity_bytes / 2**20:.0f} MiB)"
        )
