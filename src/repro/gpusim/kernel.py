r"""Kernel launch abstraction.

A simulated "kernel" is a Python callable plus a :class:`KernelCost`.
Launching it on a stream executes the callable immediately (real NumPy
numerics on :class:`~repro.gpusim.memory.DeviceArray` buffers) and
charges the roofline time on the stream's simulated timeline.

Kernels in :mod:`repro.core.kernels` follow the CUDA discipline the
paper describes: they derive their cost from launch geometry (blocks of
32 warps × 32 threads), count their *global* traffic with the Table 1
byte formulas, and omit traffic served by shared memory (staged p\*
columns, index trees) — which is how the paper's shared-memory
optimizations show up as speedups here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.gpusim.costmodel import KernelCost

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.stream import Stream

__all__ = ["KernelLaunch"]


@dataclass
class KernelLaunch:
    """A (callable, cost, label) triple ready to run on a stream.

    Attributes
    ----------
    fn: zero-argument callable performing the kernel's real work
        (typically a closure over DeviceArrays).
    cost: resource footprint used by the cost model.
    label: trace label (e.g. ``"sampling"``, ``"update_theta"``).
    kind: trace kind used for breakdowns; defaults to the label.
    """

    fn: Callable[[], object]
    cost: KernelCost
    label: str
    kind: str | None = None

    def launch(self, stream: "Stream", not_before: float = 0.0) -> tuple[float, float, object]:
        """Execute on *stream*; returns ``(start, end, result)``."""
        machine = stream.device.machine
        duration = machine.cost_model.kernel_seconds(stream.device.spec, self.cost)
        return stream.enqueue(
            duration=duration,
            kind=self.kind or self.label,
            label=self.label,
            fn=self.fn,
            not_before=not_before,
            bytes_moved=self.cost.total_bytes,
            flops=self.cost.flops,
        )
