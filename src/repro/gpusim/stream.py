"""Streams and events over the simulated clock.

Timing semantics mirror CUDA's:

- Operations enqueued on one stream execute in order; the stream's
  ``available_at`` advances past each.
- Operations on different streams (or devices) may overlap — this is
  what makes the paper's WorkSchedule2 transfer/compute overlap (§5.1)
  observable in the simulated timeline.
- :class:`Event` captures a point on a stream's timeline
  (:meth:`Stream.record`); :meth:`Stream.wait_event` makes a stream's
  next operation start no earlier than the event.

An operation is *executed functionally at enqueue time* (its NumPy work
happens immediately) but is *charged* on the simulated timeline. That is
sound because the harness only enqueues an operation after everything it
depends on has been enqueued, matching the stream/event dependencies it
declares — the schedulers in :mod:`repro.sched` are written in that
(standard CUDA) style.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.gpusim.errors import DeviceLost, KernelFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import Device

__all__ = ["Event", "Stream"]


class Event:
    """A recorded point on the simulated timeline (CUDA event)."""

    def __init__(self, label: str = "event"):
        self.label = label
        self._time: float | None = None

    @property
    def recorded(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> float:
        """The simulated time of the event; raises if never recorded."""
        if self._time is None:
            raise RuntimeError(f"event {self.label!r} was never recorded")
        return self._time

    def _record(self, t: float) -> None:
        self._time = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.label!r}, t={self._time})"


class Stream:
    """An in-order queue of simulated operations on one device."""

    def __init__(self, device: "Device", stream_id: int, label: str):
        self.device = device
        self.stream_id = stream_id
        self.label = label
        self.available_at = 0.0
        self._pending_after = 0.0  # max event time waited on

    # ------------------------------------------------------------------
    # Dependencies
    # ------------------------------------------------------------------
    def wait_event(self, event: Event) -> None:
        """Delay subsequent operations until *event* has occurred."""
        self._pending_after = max(self._pending_after, event.time)

    def record(self, event: Event | None = None, label: str = "event") -> Event:
        """Record an event at the stream's current frontier."""
        if event is None:
            event = Event(label)
        event._record(self.available_at)
        return event

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def enqueue(
        self,
        duration: float,
        kind: str,
        label: str,
        fn: Callable[[], object] | None = None,
        not_before: float = 0.0,
        bytes_moved: float = 0.0,
        flops: float = 0.0,
    ) -> tuple[float, float, object]:
        """Run *fn* now; charge ``duration`` seconds on this stream.

        Returns ``(start, end, result)`` in simulated time. ``not_before``
        lets callers add extra dependencies (e.g. a link grant or the
        host clock for host-issued work).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if not self.device.alive:
            raise DeviceLost(self.device.device_id)
        if self.device.take_kernel_fault(kind):
            raise KernelFault(self.device.device_id, label)
        start = max(
            self.available_at,
            self._pending_after,
            not_before,
            self.device.machine.host_time,
        )
        end = start + duration
        self.available_at = end
        self._pending_after = 0.0
        result = fn() if fn is not None else None
        self.device.machine.trace.add(
            device_id=self.device.device_id,
            stream=f"{self.device.device_id}.{self.label}",
            kind=kind,
            label=label,
            start=start,
            end=end,
            bytes_moved=bytes_moved,
            flops=flops,
        )
        return start, end, result

    def synchronize(self) -> float:
        """Block the host until this stream drains; returns that time."""
        self.device.machine.advance_host(self.available_at)
        return self.available_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Stream(dev={self.device.device_id}, {self.label!r}, "
            f"available_at={self.available_at:.6f})"
        )
