"""Execution-driven GPU simulator.

This subpackage substitutes for the CUDA machines of the paper (see
DESIGN.md §2). It models a single host with one or more GPUs:

- :mod:`repro.gpusim.device` — device specifications (SM count, peak
  bandwidth/FLOPS, memory capacity, shared memory) and runtime devices.
- :mod:`repro.gpusim.memory` — device memory allocation with capacity
  enforcement; :class:`DeviceArray` buffers that hold real NumPy data.
- :mod:`repro.gpusim.stream` — CUDA-style streams and events over a
  simulated clock; operations on one stream serialize, operations on
  different streams (or devices) overlap.
- :mod:`repro.gpusim.kernel` — the kernel-launch abstraction: a kernel
  executes its real numerics immediately and is charged simulated time
  from its reported :class:`KernelCost`.
- :mod:`repro.gpusim.costmodel` — the roofline timing model (paper §3):
  kernel time = max(bytes / effective bandwidth, flops / effective
  FLOPS) + launch overheads; link time = latency + bytes / bandwidth.
- :mod:`repro.gpusim.interconnect` — PCIe / NVLink links with contention.
- :mod:`repro.gpusim.platform` — the paper's Table 2 platforms (Maxwell /
  Pascal / Volta) plus the host CPU spec used for the characterization.
- :mod:`repro.gpusim.trace` — a timeline recorder for breakdowns
  (Table 5) and overlap inspection.

The simulator's *functional* semantics are exact (kernels compute real
results); its *temporal* semantics are a coarse-grained analytic model,
which is precisely the fidelity the paper's own roofline analysis (§3)
argues is the determining one for LDA.
"""

from repro.gpusim.costmodel import CostModel, KernelCost, TransferCost
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.errors import DeviceLost, FaultError, KernelFault, LinkDown
from repro.gpusim.interconnect import Link
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import DeviceArray, DeviceOutOfMemoryError
from repro.gpusim.platform import (
    CPU_E5_2670,
    CPU_E5_2650V3,
    CPU_E5_2690V4,
    GPU_TITAN_X,
    GPU_TITAN_XP,
    GPU_V100,
    Machine,
    dgx_platform,
    maxwell_platform,
    pascal_platform,
    volta_platform,
)
from repro.gpusim.stream import Event, Stream
from repro.gpusim.trace import Interval, TraceRecorder, to_chrome_json

__all__ = [
    "CostModel",
    "KernelCost",
    "TransferCost",
    "Device",
    "DeviceLost",
    "DeviceSpec",
    "FaultError",
    "KernelFault",
    "Link",
    "LinkDown",
    "KernelLaunch",
    "DeviceArray",
    "DeviceOutOfMemoryError",
    "Machine",
    "maxwell_platform",
    "pascal_platform",
    "volta_platform",
    "dgx_platform",
    "CPU_E5_2670",
    "CPU_E5_2650V3",
    "CPU_E5_2690V4",
    "GPU_TITAN_X",
    "GPU_TITAN_XP",
    "GPU_V100",
    "Event",
    "Stream",
    "Interval",
    "TraceRecorder",
    "to_chrome_json",
]
