"""Timeline recording and breakdown reporting.

Every simulated operation (kernel, copy) lands here as an
:class:`Interval`. The recorder answers the questions the paper's
evaluation asks of its profiler:

- per-kind time breakdown (Table 5: Sampling / Update θ / Update φ),
- busy time per device (multi-GPU load balance),
- overlap checks (did WorkSchedule2 actually hide the transfers?).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Interval", "TraceRecorder", "to_chrome_json"]


@dataclass(frozen=True)
class Interval:
    """One operation on the simulated timeline."""

    device_id: int
    stream: str
    kind: str
    label: str
    start: float
    end: float
    bytes_moved: float = 0.0
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates :class:`Interval` records for one machine."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.intervals: list[Interval] = []

    def add(
        self,
        device_id: int,
        stream: str,
        kind: str,
        label: str,
        start: float,
        end: float,
        bytes_moved: float = 0.0,
        flops: float = 0.0,
    ) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError("interval end precedes start")
        self.intervals.append(
            Interval(device_id, stream, kind, label, start, end, bytes_moved, flops)
        )

    def clear(self) -> None:
        self.intervals.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_time_by_kind(self) -> dict[str, float]:
        """Summed durations per operation kind (may overlap in time)."""
        out: dict[str, float] = defaultdict(float)
        for iv in self.intervals:
            out[iv.kind] += iv.duration
        return dict(out)

    def breakdown_fractions(self, kinds: Iterable[str] | None = None) -> dict[str, float]:
        """Each kind's share of the summed busy time (Table 5 format)."""
        totals = self.total_time_by_kind()
        if kinds is not None:
            totals = {k: totals.get(k, 0.0) for k in kinds}
        grand = sum(totals.values())
        if grand == 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}

    def device_busy_time(self, device_id: int) -> float:
        """Union length of the device's busy intervals (overlap-merged)."""
        spans = sorted(
            (iv.start, iv.end)
            for iv in self.intervals
            if iv.device_id == device_id
        )
        busy = 0.0
        cur_s = cur_e = None
        for s, e in spans:
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    busy += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            busy += cur_e - cur_s
        return busy

    def makespan(self) -> float:
        """End time of the last interval (0.0 if empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def overlap_seconds(self, kind_a: str, kind_b: str) -> float:
        """Total time during which a *kind_a* interval and a *kind_b*
        interval are simultaneously in flight (anywhere in the machine).

        Used by tests to assert that WorkSchedule2 pipelining really
        overlaps transfers with compute.
        """
        a = sorted(
            (iv.start, iv.end) for iv in self.intervals if iv.kind == kind_a
        )
        b = sorted(
            (iv.start, iv.end) for iv in self.intervals if iv.kind == kind_b
        )
        i = j = 0
        total = 0.0
        while i < len(a) and j < len(b):
            s = max(a[i][0], b[j][0])
            e = min(a[i][1], b[j][1])
            if e > s:
                total += e - s
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def gantt_text(self, width: int = 72) -> str:
        """A coarse text Gantt chart of the timeline (one row per stream).

        Rows group by device id, then stream name — numerically, so on
        a big box ``10.compute`` sorts after ``2.compute`` instead of
        lexicographically before it.
        """
        if not self.intervals:
            return "(empty trace)"
        t_end = self.makespan()
        if t_end == 0:
            return "(zero-length trace)"
        rows: dict[str, list[str]] = {}
        stream_device: dict[str, int] = {}
        for iv in sorted(self.intervals, key=lambda x: (x.stream, x.start)):
            row = rows.setdefault(iv.stream, [" "] * width)
            stream_device.setdefault(iv.stream, iv.device_id)
            lo = min(width - 1, int(iv.start / t_end * width))
            hi = min(width, max(lo + 1, int(iv.end / t_end * width)))
            mark = iv.kind[0].upper() if iv.kind else "#"
            for c in range(lo, hi):
                row[c] = mark
        lines = [f"timeline 0 .. {t_end:.6f}s"]
        for stream in sorted(rows, key=lambda s: (stream_device[s], s)):
            lines.append(f"{stream:>16s} |{''.join(rows[stream])}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.intervals)


def to_chrome_json(trace: TraceRecorder, extra: TraceRecorder | None = None) -> str:
    """Export a trace as Chrome-tracing JSON (chrome://tracing, Perfetto).

    Devices map to processes, streams to threads; times are microseconds
    as the format requires. Thread ids are stable integers — streams of
    one device are numbered in sorted-name order — with ``thread_name``
    metadata events carrying the stream names (appended after the slice
    events, so consumers indexing ``traceEvents[0]`` still see a slice).

    *extra* optionally merges a second recorder (e.g. the telemetry
    session's host-span trace) into the same document.

    Load the returned string from a ``.json`` file to inspect kernel
    overlap visually.
    """
    import json

    intervals = list(trace.intervals)
    if extra is not None:
        intervals.extend(extra.intervals)

    # Stable integer tids: per device, streams numbered by sorted name.
    by_device: dict[int, set[str]] = defaultdict(set)
    for iv in intervals:
        by_device[iv.device_id].add(iv.stream)
    tid_of: dict[tuple[int, str], int] = {}
    for dev, streams in by_device.items():
        for tid, stream in enumerate(sorted(streams)):
            tid_of[(dev, stream)] = tid

    events = []
    for iv in intervals:
        events.append(
            {
                "name": iv.label,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * 1e6,
                "dur": iv.duration * 1e6,
                "pid": iv.device_id,
                "tid": tid_of[(iv.device_id, iv.stream)],
                "args": {
                    "bytes": iv.bytes_moved,
                    "flops": iv.flops,
                },
            }
        )
    for (dev, stream), tid in sorted(tid_of.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": dev,
                "tid": tid,
                "args": {"name": stream},
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
