"""Interconnect links: PCIe, NVLink, Ethernet.

A :class:`Link` is a contended, half-duplex-per-direction resource with
latency + bandwidth timing. Each transfer reserves the link's timeline,
so two simultaneous copies over the same PCIe lane serialize — which is
exactly the effect the paper's reduce *tree* (Fig 4) exploits by pairing
disjoint GPU pairs in each step.
"""

from __future__ import annotations

__all__ = ["Link"]


class Link:
    """A point-to-point (or shared-bus) communication resource.

    Parameters
    ----------
    name: label ("pcie[0]", "p2p[0-1]", "eth").
    bandwidth_gbps: bandwidth in **gigabytes** per second.
    latency_seconds: per-message latency.
    duplex: if True, each direction has an independent timeline
        (PCIe 3.0 is full duplex); if False both directions contend.
    """

    def __init__(
        self,
        name: str,
        bandwidth_gbps: float,
        latency_seconds: float = 5e-6,
        duplex: bool = True,
    ):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bandwidth_gbps = bandwidth_gbps
        self.latency_seconds = latency_seconds
        self.duplex = duplex
        self._busy_until = {0: 0.0, 1: 0.0}  # direction -> frontier
        self.bytes_carried = 0.0
        self.num_transfers = 0

    @property
    def bandwidth_bytes(self) -> float:
        return self.bandwidth_gbps * 1e9

    def reserve(self, nbytes: float, earliest: float, direction: int = 0) -> tuple[float, float]:
        """Reserve the link for *nbytes* starting no earlier than *earliest*.

        Returns the ``(start, end)`` simulated interval. ``direction`` is
        0 or 1; ignored (mapped to 0) on non-duplex links.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        d = direction if self.duplex else 0
        if d not in (0, 1):
            raise ValueError("direction must be 0 or 1")
        start = max(earliest, self._busy_until[d])
        end = start + self.latency_seconds + nbytes / self.bandwidth_bytes
        self._busy_until[d] = end
        self.bytes_carried += nbytes
        self.num_transfers += 1
        return start, end

    def busy_until(self, direction: int = 0) -> float:
        return self._busy_until[direction if self.duplex else 0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, {self.bandwidth_gbps} GB/s)"
