"""Interconnect links: PCIe, NVLink, Ethernet.

A :class:`Link` is a contended, half-duplex-per-direction resource with
latency + bandwidth timing. Each transfer reserves the link's timeline,
so two simultaneous copies over the same PCIe lane serialize — which is
exactly the effect the paper's reduce *tree* (Fig 4) exploits by pairing
disjoint GPU pairs in each step.
"""

from __future__ import annotations

from repro.gpusim.errors import LinkDown

__all__ = ["Link"]


class Link:
    """A point-to-point (or shared-bus) communication resource.

    Parameters
    ----------
    name: label ("pcie[0]", "p2p[0-1]", "eth").
    bandwidth_gbps: bandwidth in **gigabytes** per second.
    latency_seconds: per-message latency.
    duplex: if True, each direction has an independent timeline
        (PCIe 3.0 is full duplex); if False both directions contend.
    """

    def __init__(
        self,
        name: str,
        bandwidth_gbps: float,
        latency_seconds: float = 5e-6,
        duplex: bool = True,
    ):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bandwidth_gbps = bandwidth_gbps
        self.latency_seconds = latency_seconds
        self.duplex = duplex
        self._busy_until = {0: 0.0, 1: 0.0}  # direction -> frontier
        self.bytes_carried = 0.0
        self.num_transfers = 0
        # Fault-injection state (see repro.faults). Healthy defaults.
        self.up = True
        self.bandwidth_scale = 1.0
        self._fail_next = 0
        self._corrupt_next = 0
        self.num_failed_transfers = 0

    @property
    def bandwidth_bytes(self) -> float:
        return self.bandwidth_gbps * 1e9

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def set_down(self, down: bool = True) -> None:
        """Take the link out of (or back into) service permanently."""
        self.up = not down

    def fail_next(self, count: int = 1) -> None:
        """Make the next *count* transfer attempts fail transiently."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._fail_next += int(count)

    def degrade(self, scale: float) -> None:
        """Scale the link's effective bandwidth (1.0 restores it)."""
        if scale <= 0:
            raise ValueError("bandwidth scale must be positive")
        self.bandwidth_scale = float(scale)

    def corrupt_next(self, count: int = 1) -> None:
        """Silently corrupt the payload of the next *count* transfers."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._corrupt_next += int(count)

    def take_corruption(self) -> bool:
        """Consume one pending corruption (called by the machine's
        memcpy paths when a transfer is granted)."""
        if self._corrupt_next > 0:
            self._corrupt_next -= 1
            return True
        return False

    def reserve(self, nbytes: float, earliest: float, direction: int = 0) -> tuple[float, float]:
        """Reserve the link for *nbytes* starting no earlier than *earliest*.

        Returns the ``(start, end)`` simulated interval. ``direction`` is
        0 or 1; ignored (mapped to 0) on non-duplex links.

        Raises :class:`~repro.gpusim.errors.LinkDown` when the link is
        out of service or a transient fault is pending.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not self.up:
            self.num_failed_transfers += 1
            raise LinkDown(self.name)
        if self._fail_next > 0:
            self._fail_next -= 1
            self.num_failed_transfers += 1
            raise LinkDown(self.name, transient=True)
        d = direction if self.duplex else 0
        if d not in (0, 1):
            raise ValueError("direction must be 0 or 1")
        start = max(earliest, self._busy_until[d])
        end = start + self.latency_seconds + nbytes / (
            self.bandwidth_bytes * self.bandwidth_scale
        )
        self._busy_until[d] = end
        self.bytes_carried += nbytes
        self.num_transfers += 1
        return start, end

    def busy_until(self, direction: int = 0) -> float:
        return self._busy_until[direction if self.duplex else 0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, {self.bandwidth_gbps} GB/s)"
