"""Machines and the paper's Table 2 platform presets.

A :class:`Machine` is one host (CPU spec + host clock) with zero or more
GPUs, a PCIe link per GPU, and peer-to-peer links between GPU pairs.
Factory functions build the paper's three platforms:

- :func:`maxwell_platform` — 2× E5-2670 host, 1× Titan X (336 GB/s).
- :func:`pascal_platform` — 2× E5-2650 v3 host, up to 4× Titan Xp
  (550 GB/s); the multi-GPU scaling platform of Fig 9.
- :func:`volta_platform` — 2× E5-2690 v4 host, up to 2× V100 (900 GB/s).

Calibration
-----------
Peak numbers are the paper's. The per-architecture ``mem_efficiency``
derates (achieved fraction of peak bandwidth on LDA's irregular access
mix) are the model's calibration knobs, fitted once against the paper's
Table 4 and recorded in EXPERIMENTS.md: Volta's HBM2 + larger L1 achieve
a much higher fraction than Pascal's GDDR5X (whose random-access derate
is a well-known effect), which is why the paper's Volta speedup (3.65×
over Maxwell) exceeds its raw bandwidth ratio (2.68×).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gpusim.costmodel import CostModel, KernelCost
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.interconnect import Link
from repro.gpusim.memory import DeviceArray
from repro.gpusim.stream import Stream
from repro.gpusim.trace import TraceRecorder

__all__ = [
    "Machine",
    "make_machine",
    "maxwell_platform",
    "pascal_platform",
    "volta_platform",
    "dgx_platform",
    "ampere_platform",
    "CPU_E5_2670",
    "CPU_E5_2650V3",
    "CPU_E5_2690V4",
    "GPU_TITAN_X",
    "GPU_TITAN_XP",
    "GPU_V100",
    "GPU_A100",
]

# ----------------------------------------------------------------------
# Table 2 device specs
# ----------------------------------------------------------------------

#: Maxwell-platform host: 2× Intel Xeon E5-2670, 64 GB.
CPU_E5_2670 = DeviceSpec(
    name="2x Intel Xeon E5-2670",
    arch="cpu",
    num_sms=16,
    peak_bandwidth_gbps=42.6,
    peak_gflops=332.8,
    mem_capacity_bytes=64 * 2**30,
    shared_mem_per_block=0,
    warp_size=8,
    mem_efficiency=0.70,
    compute_efficiency=0.60,
    kernel_launch_seconds=1e-6,
    tail_penalty=0.0,
    tdp_watts=2 * 115.0,
)

#: Pascal-platform host: 2× Intel Xeon E5-2650 v3, 64 GB.
CPU_E5_2650V3 = DeviceSpec(
    name="2x Intel Xeon E5-2650 v3",
    arch="cpu",
    num_sms=20,
    peak_bandwidth_gbps=68.0,
    peak_gflops=416.0,
    mem_capacity_bytes=64 * 2**30,
    shared_mem_per_block=0,
    warp_size=8,
    mem_efficiency=0.70,
    compute_efficiency=0.60,
    kernel_launch_seconds=1e-6,
    tail_penalty=0.0,
    tdp_watts=2 * 105.0,
)

#: Volta-platform host: 2× Intel Xeon E5-2690 v4 — the paper's §3
#: characterization CPU (470 GFLOPS, 51.2 GB/s ⇒ ridge 9.2 Flops/Byte).
CPU_E5_2690V4 = DeviceSpec(
    name="2x Intel Xeon E5-2690 v4",
    arch="cpu",
    num_sms=28,
    peak_bandwidth_gbps=51.2,
    peak_gflops=470.0,
    mem_capacity_bytes=64 * 2**30,
    shared_mem_per_block=0,
    warp_size=8,
    mem_efficiency=0.70,
    compute_efficiency=0.60,
    kernel_launch_seconds=1e-6,
    tail_penalty=0.0,
    tdp_watts=2 * 135.0,
)

#: NVIDIA Titan X (Maxwell), 336 GB/s, 24 SMs, 12 GB.
GPU_TITAN_X = DeviceSpec(
    name="NVIDIA Titan X (Maxwell)",
    arch="maxwell",
    num_sms=24,
    peak_bandwidth_gbps=336.0,
    peak_gflops=6144.0,
    mem_capacity_bytes=12 * 2**30,
    shared_mem_per_block=48 * 1024,
    mem_efficiency=0.63,
    compute_efficiency=0.45,
    atomic_ops_per_sec=1.0e10,
    tdp_watts=250.0,
)

#: NVIDIA Titan Xp (Pascal), 550 GB/s, 28 SMs, 12 GB. GDDR5X suffers a
#: strong random-access derate, visible in the paper's modest 1.28×
#: speedup over Maxwell despite a 1.64× bandwidth ratio.
GPU_TITAN_XP = DeviceSpec(
    name="NVIDIA Titan Xp (Pascal)",
    arch="pascal",
    num_sms=28,
    peak_bandwidth_gbps=550.0,
    peak_gflops=12150.0,
    mem_capacity_bytes=12 * 2**30,
    shared_mem_per_block=48 * 1024,
    mem_efficiency=0.46,
    compute_efficiency=0.45,
    atomic_ops_per_sec=1.6e10,
    tdp_watts=250.0,
)

#: NVIDIA V100 (Volta), 900 GB/s HBM2, 80 SMs, 16 GB.
GPU_V100 = DeviceSpec(
    name="NVIDIA V100 (Volta)",
    arch="volta",
    num_sms=80,
    peak_bandwidth_gbps=900.0,
    peak_gflops=14000.0,
    mem_capacity_bytes=16 * 2**30,
    shared_mem_per_block=96 * 1024,
    mem_efficiency=0.86,
    compute_efficiency=0.50,
    atomic_ops_per_sec=4.0e10,
    tdp_watts=300.0,
)

#: NVIDIA A100 (Ampere), 1555 GB/s HBM2e, 108 SMs, 40 GB — a
#: post-publication GPU used to test the paper's claim that CuLDA_CGS
#: "can be scaled to future GPUs as well" (§7.1). Efficiency follows the
#: Volta calibration (same HBM generation family).
GPU_A100 = DeviceSpec(
    name="NVIDIA A100 (Ampere)",
    arch="ampere",
    num_sms=108,
    peak_bandwidth_gbps=1555.0,
    peak_gflops=19500.0,
    mem_capacity_bytes=40 * 2**30,
    shared_mem_per_block=160 * 1024,
    mem_efficiency=0.86,
    compute_efficiency=0.50,
    atomic_ops_per_sec=6.0e10,
    tdp_watts=400.0,
)

#: PCIe 3.0 x16: 16 GB/s nominal, ~13 GB/s achieved.
PCIE3_EFFECTIVE_GBPS = 13.0
#: GPU-to-GPU P2P through the host bridge: about half the host-link rate
#: on boxes without NVLink (the paper's platforms).
PCIE_P2P_GBPS = 6.0


def _corrupt_payload(arr: np.ndarray) -> None:
    """Deterministically flip one element of a delivered payload.

    Models silent data corruption on a link: the perturbation breaks
    count-conservation invariants (Σφ over all words and topics equals
    the corpus token count) so the engine's post-sync validation can
    detect it.
    """
    if arr.size:
        flat = arr.reshape(-1)
        flat[0] = flat[0] + 1  # wraps on unsigned dtypes; still detectable


class Machine:
    """One host with GPUs, links, a clock, and a trace.

    Parameters
    ----------
    host_spec: CPU spec for host-side compute charges.
    gpu_specs: one spec per GPU to instantiate.
    pcie_gbps: effective host↔device bandwidth per root-complex uplink.
    p2p_gbps: effective GPU↔GPU bandwidth (PCIe P2P by default; pass
        e.g. 150.0 to model NVLink).
    num_host_links: independent host↔GPU uplinks. The Table 2 platforms
        are all dual-socket, i.e. two root complexes — GPUs map onto
        them round-robin, so on a 4-GPU box pairs of GPUs contend for
        a shared uplink (the effect that makes gather-to-CPU model
        synchronization lose to the GPU reduce tree, §5.2). Defaults to
        min(#GPUs, 2).
    name: platform label used by benchmark output.
    """

    def __init__(
        self,
        host_spec: DeviceSpec,
        gpu_specs: list[DeviceSpec],
        pcie_gbps: float = PCIE3_EFFECTIVE_GBPS,
        p2p_gbps: float | None = None,
        num_host_links: int | None = None,
        name: str = "machine",
    ):
        self.name = name
        self.host_spec = host_spec
        self.cost_model = CostModel()
        self.trace = TraceRecorder()
        self.host_time = 0.0
        self.gpus: list[Device] = [
            Device(i, spec, self) for i, spec in enumerate(gpu_specs)
        ]
        G = len(gpu_specs)
        n_links = num_host_links or max(1, min(G, 2))
        if n_links < 1:
            raise ValueError("num_host_links must be >= 1")
        uplinks = [Link(f"pcie[{i}]", pcie_gbps) for i in range(n_links)]

        def socket_of(i: int) -> int:
            # Contiguous halves: GPUs 0..G/2-1 on socket 0, rest on 1.
            return min(i * n_links // G, n_links - 1) if G else 0

        self._socket_of = socket_of
        #: GPU id -> its (possibly shared) host uplink.
        self.pcie: list[Link] = [uplinks[socket_of(i)] for i in range(G)]
        # P2P topology: GPUs under the same PCIe switch (same socket)
        # talk at full switch speed; cross-socket P2P crosses the
        # inter-socket bridge at the (slower) p2p rate.
        cross = p2p_gbps if p2p_gbps is not None else pcie_gbps
        # With a fast fabric (NVLink), same-socket pairs are at least as
        # fast as cross-socket ones; with PCIe P2P they run at switch
        # speed while cross-socket traffic crosses the (slower) bridge.
        local = max(pcie_gbps, cross)
        self._p2p: dict[tuple[int, int], Link] = {}
        for i in range(G):
            for j in range(i + 1, G):
                rate = local if socket_of(i) == socket_of(j) else cross
                self._p2p[(i, j)] = Link(f"p2p[{i}-{j}]", rate)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance_host(self, t: float) -> None:
        """Move the host clock forward to *t* (never backward)."""
        self.host_time = max(self.host_time, t)

    def synchronize(self) -> float:
        """Host waits for every GPU; returns the new host time."""
        for gpu in self.gpus:
            self.advance_host(gpu.busy_until())
        return self.host_time

    def reset_clock(self) -> None:
        """Zero all clocks and clear the trace (memory state is kept).

        Used between a warm-up and a measured run, like resetting a
        profiler."""
        self.host_time = 0.0
        for gpu in self.gpus:
            for s in gpu.streams:
                s.available_at = 0.0
        for link in self.pcie:
            link._busy_until = {0: 0.0, 1: 0.0}
        for link in self._p2p.values():
            link._busy_until = {0: 0.0, 1: 0.0}
        self.trace.clear()

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def socket_of(self, device_id: int) -> int:
        """Which host socket (root complex) GPU *device_id* hangs off.

        GPUs sharing a socket also share a PCIe uplink and talk P2P at
        switch speed; cross-socket traffic crosses the (slower) bridge.
        """
        return self._socket_of(device_id)

    def p2p_link(self, a: int, b: int) -> Link:
        """The peer-to-peer link between GPUs *a* and *b*."""
        if a == b:
            raise ValueError("no p2p link from a device to itself")
        key = (min(a, b), max(a, b))
        return self._p2p[key]

    def iter_links(self) -> list[Link]:
        """Every distinct link on the machine (host uplinks + P2P)."""
        seen: list[Link] = []
        for link in list(self.pcie) + list(self._p2p.values()):
            if link not in seen:
                seen.append(link)
        return seen

    def find_link(self, name: str) -> Link:
        """Look a link up by its label (``pcie[0]``, ``p2p[1-3]``)."""
        for link in self.iter_links():
            if link.name == name:
                return link
        raise KeyError(
            f"no link named {name!r}; machine has "
            f"{[link.name for link in self.iter_links()]}"
        )

    @property
    def alive_gpus(self) -> list[Device]:
        """GPUs that have not been failed by fault injection."""
        return [g for g in self.gpus if g.alive]

    # ------------------------------------------------------------------
    # Timed transfers
    # ------------------------------------------------------------------
    def memcpy_h2d(
        self,
        dst: DeviceArray,
        src: np.ndarray,
        stream: Stream | None = None,
        label: str = "h2d",
        pinned: bool = True,
    ) -> tuple[float, float]:
        """Copy host array *src* into device buffer *dst* (timed).

        ``pinned=False`` models a copy from pageable host memory, which
        runs at roughly half the pinned DMA rate (the staging copy).
        """
        if src.shape != dst.shape:
            raise ValueError(f"h2d shape mismatch {src.shape} != {dst.shape}")
        stream = stream or dst.device.default_stream
        if stream.device is not dst.device:
            raise ValueError("stream and destination buffer on different devices")
        link = self.pcie[dst.device.device_id]
        nbytes = dst.nbytes
        charged = nbytes if pinned else 2 * nbytes
        # Reserve the link starting at the stream frontier / host clock.
        earliest = max(stream.available_at, stream._pending_after, self.host_time)
        l_start, l_end = link.reserve(charged, earliest, direction=0)
        corrupt = link.take_corruption()

        def do_copy() -> None:
            dst.data[...] = src.astype(dst.dtype, copy=False)
            if corrupt:
                _corrupt_payload(dst.data)

        start, end, _ = stream.enqueue(
            duration=l_end - l_start,
            kind="h2d",
            label=label,
            fn=do_copy,
            not_before=l_start,
            bytes_moved=nbytes,
        )
        return start, end

    def memcpy_d2h(
        self,
        src: DeviceArray,
        stream: Stream | None = None,
        label: str = "d2h",
        pinned: bool = True,
    ) -> tuple[float, float, np.ndarray]:
        """Copy device buffer *src* back to the host (timed).

        ``pinned=False`` models a copy into pageable host memory (half
        the pinned DMA rate).
        """
        stream = stream or src.device.default_stream
        if stream.device is not src.device:
            raise ValueError("stream and source buffer on different devices")
        link = self.pcie[src.device.device_id]
        charged = src.nbytes if pinned else 2 * src.nbytes
        earliest = max(stream.available_at, stream._pending_after, self.host_time)
        l_start, l_end = link.reserve(charged, earliest, direction=1)
        corrupt = link.take_corruption()

        def fetch() -> np.ndarray:
            arr = src.copy_to_host()
            if corrupt:
                _corrupt_payload(arr)
            return arr

        start, end, result = stream.enqueue(
            duration=l_end - l_start,
            kind="d2h",
            label=label,
            fn=fetch,
            not_before=l_start,
            bytes_moved=src.nbytes,
        )
        return start, end, result

    def memcpy_p2p(
        self,
        dst: DeviceArray,
        src: DeviceArray,
        stream: Stream | None = None,
        label: str = "p2p",
    ) -> tuple[float, float]:
        """Copy between two GPUs over their peer link (timed on the
        destination device's stream, as cudaMemcpyPeerAsync does)."""
        if dst.shape != src.shape:
            raise ValueError("p2p shape mismatch")
        if dst.device is src.device:
            raise ValueError("p2p endpoints must be distinct devices")
        stream = stream or dst.device.default_stream
        link = self.p2p_link(src.device.device_id, dst.device.device_id)
        direction = 0 if src.device.device_id < dst.device.device_id else 1
        # Source readiness is the caller's responsibility (record an event
        # on the producer stream and wait_event on *stream*), as in CUDA.
        earliest = max(stream.available_at, stream._pending_after, self.host_time)
        l_start, l_end = link.reserve(src.nbytes, earliest, direction=direction)
        corrupt = link.take_corruption()
        src_data = src.data  # bind before enqueue; src must stay live

        def do_copy() -> None:
            dst.data[...] = src_data.astype(dst.dtype, copy=False)
            if corrupt:
                _corrupt_payload(dst.data)

        start, end, _ = stream.enqueue(
            duration=l_end - l_start,
            kind="p2p",
            label=label,
            fn=do_copy,
            not_before=l_start,
            bytes_moved=src.nbytes,
        )
        return start, end

    # ------------------------------------------------------------------
    # Host compute
    # ------------------------------------------------------------------
    def host_compute(
        self,
        fn: Callable[[], object],
        cost: KernelCost,
        label: str = "host",
    ) -> object:
        """Run *fn* on the host, charging roofline time on the host clock."""
        duration = self.cost_model.kernel_seconds(self.host_spec, cost)
        start = self.host_time
        self.host_time = start + duration
        result = fn()
        self.trace.add(
            device_id=-1,
            stream="host",
            kind="host",
            label=label,
            start=start,
            end=self.host_time,
            bytes_moved=cost.total_bytes,
            flops=cost.flops,
        )
        return result

    def energy_joules(self, elapsed: float | None = None) -> float:
        """Energy estimate over the simulated run so far.

        Each device draws its TDP while busy (trace busy time) and
        ``idle_power_fraction × TDP`` for the remaining wall time; the
        host draws its CPU power for the whole makespan. *elapsed*
        overrides the wall time (defaults to the trace makespan).
        """
        wall = self.trace.makespan() if elapsed is None else elapsed
        total = self.host_spec.tdp_watts * wall
        for gpu in self.gpus:
            busy = min(self.trace.device_busy_time(gpu.device_id), wall)
            idle = max(wall - busy, 0.0)
            total += gpu.spec.tdp_watts * (
                busy + gpu.spec.idle_power_fraction * idle
            )
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Machine({self.name!r}, gpus={len(self.gpus)})"


# ----------------------------------------------------------------------
# Table 2 platform factories
# ----------------------------------------------------------------------

def maxwell_platform(num_gpus: int = 1) -> Machine:
    """The paper's Maxwell platform: E5-2670 host + Titan X GPU(s)."""
    if not 1 <= num_gpus <= 1:
        raise ValueError("the Maxwell platform has exactly 1 GPU")
    return Machine(
        CPU_E5_2670, [GPU_TITAN_X] * num_gpus, p2p_gbps=PCIE_P2P_GBPS,
        name="Maxwell Platform",
    )


def pascal_platform(num_gpus: int = 1) -> Machine:
    """The paper's Pascal platform: E5-2650 v3 host + up to 4 Titan Xp."""
    if not 1 <= num_gpus <= 4:
        raise ValueError("the Pascal platform has 1-4 GPUs")
    return Machine(
        CPU_E5_2650V3, [GPU_TITAN_XP] * num_gpus, p2p_gbps=PCIE_P2P_GBPS,
        name="Pascal Platform",
    )


def volta_platform(num_gpus: int = 1) -> Machine:
    """The paper's Volta platform: E5-2690 v4 host + up to 2 V100."""
    if not 1 <= num_gpus <= 2:
        raise ValueError("the Volta platform has 1-2 GPUs")
    return Machine(
        CPU_E5_2690V4, [GPU_V100] * num_gpus, p2p_gbps=PCIE_P2P_GBPS,
        name="Volta Platform",
    )


#: NVLink 2.0: the paper (§3) cites "up to 300 GB/s" aggregate; one
#: direction of one link bundle achieves ~130 GB/s effective.
NVLINK_P2P_GBPS = 130.0


def ampere_platform(num_gpus: int = 1) -> Machine:
    """A hypothetical future platform: E5-2690 v4 host + up to 8 A100.

    Not in the paper (the A100 shipped two years later); used by
    ``bench_ext_future_gpu.py`` to evaluate the §7.1 claim that the
    design keeps scaling with device bandwidth.
    """
    if not 1 <= num_gpus <= 8:
        raise ValueError("the Ampere platform has 1-8 GPUs")
    return Machine(
        CPU_E5_2690V4,
        [GPU_A100] * num_gpus,
        p2p_gbps=NVLINK_P2P_GBPS,
        name="Ampere Platform (hypothetical)",
    )


#: GPU spec and interconnect per platform name, for ``make_machine``.
_PLATFORM_PARTS = {
    "maxwell": (CPU_E5_2670, GPU_TITAN_X, PCIE_P2P_GBPS, "Maxwell"),
    "pascal": (CPU_E5_2650V3, GPU_TITAN_XP, PCIE_P2P_GBPS, "Pascal"),
    "volta": (CPU_E5_2690V4, GPU_V100, PCIE_P2P_GBPS, "Volta"),
    "ampere": (CPU_E5_2690V4, GPU_A100, NVLINK_P2P_GBPS, "Ampere"),
    "dgx": (CPU_E5_2690V4, GPU_V100, NVLINK_P2P_GBPS, "DGX"),
}


def make_machine(platform: str, num_gpus: int = 1) -> Machine:
    """Build *any* GPU count on a named platform's device specs.

    The ``*_platform`` factories above enforce the paper's Table 2 GPU
    counts (e.g. the Volta box tops out at 2 V100s) so reproduction
    scripts can't silently model hardware the paper never ran. Profiling
    and what-if runs want the specs without the cap — this builder keeps
    the same CPU/GPU/interconnect parts but accepts any ``num_gpus``.
    """
    try:
        cpu, gpu, p2p, label = _PLATFORM_PARTS[platform]
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; "
            f"choose from {sorted(_PLATFORM_PARTS)}"
        ) from None
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    return Machine(
        cpu, [gpu] * num_gpus, p2p_gbps=p2p,
        name=f"{label} Platform ({num_gpus} GPU)",
    )


def dgx_platform(num_gpus: int = 8) -> Machine:
    """An NVLink-connected V100 box (the DGX-1 the paper cites in §3).

    Extension beyond the paper's evaluated platforms: same V100 GPUs as
    the Volta platform, but GPU↔GPU traffic rides NVLink instead of
    PCIe P2P — the regime where the reduce-tree synchronization cost
    almost vanishes (see ``bench_ext_nvlink.py``).
    """
    if not 1 <= num_gpus <= 8:
        raise ValueError("the DGX platform has 1-8 GPUs")
    return Machine(
        CPU_E5_2690V4,
        [GPU_V100] * num_gpus,
        p2p_gbps=NVLINK_P2P_GBPS,
        name="DGX Platform (NVLink)",
    )
