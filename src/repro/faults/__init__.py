"""Fault injection for chaos-testing the training stack.

Declarative :class:`FaultPlan` (JSON-loadable) applied to the simulated
machine by a :class:`FaultInjector` at iteration boundaries. Fault
kinds split into two domains: GPU kinds target the simulated multi-GPU
machine, cluster kinds (``node_failure``, the ``eth_link_*`` family,
``ps_shard_corruption``) target the Ethernet cluster and its parameter
server. The fault *exceptions* live in :mod:`repro.gpusim.errors` (the
simulator raises them without depending on this package); the recovery
policies that react to them live in :mod:`repro.engine.recovery`.

See ``docs/ROBUSTNESS.md`` for the fault model and worked examples.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    GPU_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    cluster_chaos_plan,
)

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "FAULT_KINDS",
    "GPU_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "cluster_chaos_plan",
]
