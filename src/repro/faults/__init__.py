"""Fault injection for chaos-testing the training stack.

Declarative :class:`FaultPlan` (JSON-loadable) applied to the simulated
machine by a :class:`FaultInjector` at iteration boundaries. The fault
*exceptions* live in :mod:`repro.gpusim.errors` (the simulator raises
them without depending on this package); the recovery policies that
react to them live in :mod:`repro.engine.recovery`.

See ``docs/ROBUSTNESS.md`` for the fault model and worked examples.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultPlan", "FaultSpec"]
