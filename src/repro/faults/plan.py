"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries,
each describing one fault to inject at a given training iteration (or,
for checkpoint faults, at the N-th checkpoint write). Plans are plain
data — JSON in, JSON out — so chaos scenarios live in version control
next to the experiments they harden:

.. code-block:: json

    {"faults": [
        {"kind": "link_flaky", "iteration": 2, "link": "p2p[0-1]", "count": 3},
        {"kind": "device_failure", "iteration": 5, "device": 1}
    ]}

Supported kinds (see ``docs/ROBUSTNESS.md`` for the full fault model):

- ``device_failure`` — GPU ``device`` is permanently lost at
  ``iteration``.
- ``link_down`` — ``link`` goes out of service at ``iteration``;
  optional ``until`` restores it at that iteration (exclusive).
- ``link_flaky`` — the next ``count`` transfer attempts on ``link``
  fail transiently (each failed attempt consumes one).
- ``link_degraded`` — ``link`` bandwidth is multiplied by ``scale``
  (< 1 slows it) at ``iteration``; optional ``until`` restores it.
- ``transfer_corruption`` — the next ``count`` transfers granted on
  ``link`` deliver silently corrupted payloads.
- ``kernel_fault`` — the next kernel of kind ``op`` (any kind when
  omitted) on ``device`` raises a detected fault at ``iteration``.
- ``checkpoint_truncation`` — the ``at_save``-th run-state checkpoint
  written (1-based) is truncated to half its size after the write,
  simulating a crash mid-``fsync``.

Cluster-level kinds (the LDA* fault domain, docs/ROBUSTNESS.md §8):

- ``node_failure`` — cluster ``node`` dies permanently at
  ``iteration`` (machine gone, NIC with it); detected by the heartbeat
  membership monitor.
- ``eth_link_down`` / ``eth_link_flaky`` / ``eth_link_degraded`` — the
  Ethernet NIC ``link`` (``eth[2]``) mirrors the GPU link fault family:
  out of service (optionally ``until``), next ``count`` transfers fail
  transiently, or bandwidth scaled by ``scale``.
- ``ps_shard_corruption`` — the primary φ shard copies homed on
  ``node`` are silently corrupted at ``iteration`` (detected by shard
  checksums on the next pull and repaired from the chained replica).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FAULT_KINDS",
    "CLUSTER_FAULT_KINDS",
    "GPU_FAULT_KINDS",
    "cluster_chaos_plan",
]

#: Kinds that target the simulated multi-GPU machine.
GPU_FAULT_KINDS = (
    "device_failure",
    "link_down",
    "link_flaky",
    "link_degraded",
    "transfer_corruption",
    "kernel_fault",
)

#: Kinds that target the simulated cluster (LDA*'s fault domain).
CLUSTER_FAULT_KINDS = (
    "node_failure",
    "eth_link_down",
    "eth_link_flaky",
    "eth_link_degraded",
    "ps_shard_corruption",
)

FAULT_KINDS = GPU_FAULT_KINDS + CLUSTER_FAULT_KINDS + (
    "checkpoint_truncation",
)

#: Every field a fault entry may carry (validated in from_dict).
_FIELDS = frozenset(
    ("kind", "iteration", "device", "node", "link", "count", "until",
     "scale", "op", "at_save")
)

#: Which optional fields each kind requires (beyond kind itself).
_REQUIRED = {
    "device_failure": ("iteration", "device"),
    "link_down": ("iteration", "link"),
    "link_flaky": ("iteration", "link"),
    "link_degraded": ("iteration", "link", "scale"),
    "transfer_corruption": ("iteration", "link"),
    "kernel_fault": ("iteration", "device"),
    "checkpoint_truncation": ("at_save",),
    "node_failure": ("iteration", "node"),
    "eth_link_down": ("iteration", "link"),
    "eth_link_flaky": ("iteration", "link"),
    "eth_link_degraded": ("iteration", "link", "scale"),
    "ps_shard_corruption": ("iteration", "node"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject. Field applicability depends on ``kind``."""

    kind: str
    iteration: int | None = None     # trigger iteration (0-based)
    device: int | None = None        # GPU id (device faults)
    node: int | None = None          # cluster node id (cluster faults)
    link: str | None = None          # link label (link faults)
    count: int = 1                   # flaky / corruption repetitions
    until: int | None = None         # restore iteration (link outages)
    scale: float | None = None       # bandwidth multiplier (degradation)
    op: str | None = None            # kernel kind filter (kernel_fault)
    at_save: int | None = None       # 1-based checkpoint index

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        for name in _REQUIRED[self.kind]:
            if getattr(self, name) is None:
                raise ValueError(
                    f"fault kind {self.kind!r} requires field {name!r}"
                )
        if self.iteration is not None and self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        if self.node is not None and self.node < 0:
            raise ValueError("node must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.until is not None:
            if self.iteration is None or self.until <= self.iteration:
                raise ValueError("until must be greater than iteration")
        if self.scale is not None and self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.at_save is not None and self.at_save < 1:
            raise ValueError("at_save is 1-based and must be >= 1")

    @property
    def domain(self) -> str:
        """What this fault targets: ``"gpu"`` (the simulated machine),
        ``"cluster"`` (the Ethernet cluster), or ``"checkpoint"``."""
        if self.kind in CLUSTER_FAULT_KINDS:
            return "cluster"
        if self.kind in GPU_FAULT_KINDS:
            return "gpu"
        return "checkpoint"

    def to_dict(self) -> dict:
        """JSON-ready dict with defaulted/None fields dropped."""
        out = {"kind": self.kind}
        for key, value in asdict(self).items():
            if key == "kind" or value is None:
                continue
            if key == "count" and value == 1:
                continue
            out[key] = value
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults for one training run."""

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def needs_machine(self) -> bool:
        """True when any fault targets the simulated GPU machine."""
        return any(f.domain == "gpu" for f in self.faults)

    @property
    def needs_cluster(self) -> bool:
        """True when any fault targets the simulated cluster."""
        return any(f.domain == "cluster" for f in self.faults)

    # -- serialization -------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Parse a plan dict, naming the offending entry and field.

        Every rejection says *which* fault entry (``fault #i``) and
        *which* field is wrong — a chaos plan that silently drops or
        misreads an entry tests nothing.
        """
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError('fault plan must be an object {"faults": [...]}')
        faults = data["faults"]
        if not isinstance(faults, list):
            raise ValueError(
                f"'faults' must be a list, got {type(faults).__name__}"
            )
        specs = []
        for i, entry in enumerate(faults):
            if not isinstance(entry, dict):
                raise ValueError(
                    f"fault #{i} must be an object, "
                    f"got {type(entry).__name__}"
                )
            if "kind" not in entry:
                raise ValueError(f"fault #{i} is missing the 'kind' field")
            kind = entry["kind"]
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"fault #{i}: unknown fault kind {kind!r}; "
                    f"choose from {FAULT_KINDS}"
                )
            unknown = sorted(set(entry) - _FIELDS)
            if unknown:
                raise ValueError(
                    f"fault #{i} ({kind}): unknown field(s) "
                    f"{', '.join(repr(u) for u in unknown)}; "
                    f"allowed fields are {tuple(sorted(_FIELDS))}"
                )
            missing = [
                name for name in _REQUIRED[kind] if entry.get(name) is None
            ]
            if missing:
                raise ValueError(
                    f"fault #{i} ({kind}): missing required field(s) "
                    f"{', '.join(repr(m) for m in missing)}"
                )
            try:
                specs.append(FaultSpec(**entry))
            except ValueError as exc:
                raise ValueError(f"fault #{i} ({kind}): {exc}") from exc
        return cls(faults=tuple(specs))

    def to_dict(self) -> dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan {path} is not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(data)
        except ValueError as exc:
            raise ValueError(f"fault plan {path}: {exc}") from exc

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def cluster_chaos_plan(num_nodes: int = 4) -> FaultPlan:
    """The default cluster chaos plan (docs/ROBUSTNESS.md §8).

    One node death plus one Ethernet flap on a *num_nodes*-node LDA*
    run: node ``num_nodes − 2`` dies permanently at iteration 2, and
    node 0's NIC drops its next three transfer attempts at iteration 4.
    Under ``--recovery elastic`` the run must complete with a final φ
    bit-identical to the fault-free run; under ``--recovery none`` it
    must fail with a structured :class:`TrainingFailure` naming the
    dead node and the membership timeline.
    """
    if num_nodes < 2:
        raise ValueError("the cluster chaos plan needs at least 2 nodes")
    return FaultPlan(faults=(
        FaultSpec(kind="node_failure", iteration=2, node=num_nodes - 2),
        FaultSpec(kind="eth_link_flaky", iteration=4, link="eth[0]", count=3),
    ))
