"""Apply a :class:`~repro.faults.plan.FaultPlan` to a running machine.

The injector is driven by the training loop at two boundaries:

- :meth:`FaultInjector.on_iteration_start` — called with the 0-based
  iteration about to run; applies every hardware fault due at that
  iteration (and restores ``until``-bounded link outages whose window
  has closed).
- :meth:`FaultInjector.on_checkpoint_saved` — called after each
  run-state checkpoint write; truncates the file for matching
  ``checkpoint_truncation`` specs.

Faults target one of two substrates: GPU kinds flip state on the
simulated :class:`~repro.gpusim.platform.Machine` (devices, PCIe/NVLink
links), cluster kinds on the
:class:`~repro.cluster.network.ClusterNetwork` (nodes, Ethernet NICs)
and the :class:`~repro.cluster.paramserver.ShardedParameterServer`
(shard corruption). A plan whose kinds have no matching substrate is
rejected at construction with an actionable error.

Each applied fault is appended to :attr:`FaultInjector.events` (plain
dicts: kind, iteration, target, sim-agnostic details) and counted in the
telemetry counter ``faults_injected_total{kind=...}`` so chaos runs show
up in ``repro-lda profile`` output.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.telemetry.context import emit_counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import ClusterNetwork
    from repro.cluster.paramserver import ShardedParameterServer
    from repro.gpusim.platform import Machine

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stateful executor for one :class:`FaultPlan` over one run."""

    def __init__(
        self,
        plan: FaultPlan,
        machine: "Machine | None" = None,
        cluster: "ClusterNetwork | None" = None,
        server: "ShardedParameterServer | None" = None,
        machines: "list[Machine] | None" = None,
    ):
        self.plan = plan
        #: All machines device faults can target; device ids are global
        #: (node n, local GPU j → n·G + j on a homogeneous cluster).
        self.machines = list(machines) if machines else (
            [machine] if machine is not None else []
        )
        self.machine = machine if machine is not None else (
            self.machines[0] if self.machines else None
        )
        self.cluster = cluster
        self.server = server
        self.events: list[dict] = []
        self._saves_seen = 0
        # Each spec fires at most once, even when recovery rolls the run
        # back and the trigger iteration is executed again.
        self._applied: set[int] = set()
        if machine is None and plan.needs_machine:
            kinds = sorted({f.kind for f in plan if f.domain == "gpu"})
            raise ValueError(
                "fault plan targets simulated GPU hardware "
                f"({', '.join(kinds)}) but no machine was provided"
            )
        if cluster is None and plan.needs_cluster:
            kinds = sorted({f.kind for f in plan if f.domain == "cluster"})
            raise ValueError(
                "fault plan targets the simulated cluster "
                f"({', '.join(kinds)}) but no cluster network was provided"
            )
        if server is None and any(
            f.kind == "ps_shard_corruption" for f in plan
        ):
            raise ValueError(
                "fault plan targets parameter-server shards "
                "(ps_shard_corruption) but no parameter server was provided"
            )
        # (restore_iteration, spec) for until-bounded link outages.
        self._pending_restores: list[tuple[int, object]] = []

    # ------------------------------------------------------------------
    def _record(self, spec, **details) -> None:
        event = {"kind": spec.kind, "iteration": spec.iteration}
        event.update(details)
        self.events.append(event)
        emit_counter(
            "faults_injected_total",
            1,
            help="Faults injected by the chaos plan.",
            kind=spec.kind,
        )

    def _device(self, device_id: int):
        total = sum(len(m.gpus) for m in self.machines)
        if not 0 <= device_id < total:
            raise ValueError(
                f"fault targets device {device_id} but the run has "
                f"GPUs 0..{total - 1}"
            )
        local = device_id
        for m in self.machines:
            if local < len(m.gpus):
                return m.gpus[local]
            local -= len(m.gpus)
        raise AssertionError("unreachable")

    def _node(self, node_id: int) -> int:
        if not 0 <= node_id < self.cluster.num_nodes:
            raise ValueError(
                f"fault targets node {node_id} but cluster has nodes "
                f"0..{self.cluster.num_nodes - 1}"
            )
        return node_id

    def _find_link(self, spec):
        """Resolve a link label on the substrate the fault kind targets."""
        if spec.kind.startswith("eth_"):
            return self.cluster.find_link(spec.link)
        return self.machine.find_link(spec.link)

    # ------------------------------------------------------------------
    def on_iteration_start(self, iteration: int) -> None:
        """Apply all hardware faults due at *iteration*."""
        # Restore expired until-bounded outages first so a plan can
        # re-fault the same link in a later window.
        still_pending = []
        for restore_at, spec in self._pending_restores:
            if iteration >= restore_at:
                link = self._find_link(spec)
                if spec.kind.endswith("link_down"):
                    link.set_down(False)
                else:  # link_degraded
                    link.degrade(1.0)
                self.events.append(
                    {"kind": f"{spec.kind}_restored", "iteration": iteration,
                     "link": spec.link}
                )
            else:
                still_pending.append((restore_at, spec))
        self._pending_restores = still_pending

        for idx, spec in enumerate(self.plan):
            if spec.kind == "checkpoint_truncation" or spec.iteration != iteration:
                continue
            if idx in self._applied:
                continue
            self._applied.add(idx)
            if spec.kind == "device_failure":
                self._device(spec.device).fail()
                self._record(spec, device=spec.device)
            elif spec.kind == "node_failure":
                self.cluster.fail_node(self._node(spec.node))
                self._record(spec, node=spec.node)
            elif spec.kind in ("link_down", "eth_link_down"):
                link = self._find_link(spec)
                link.set_down(True)
                if spec.until is not None:
                    self._pending_restores.append((spec.until, spec))
                self._record(spec, link=spec.link, until=spec.until)
            elif spec.kind in ("link_flaky", "eth_link_flaky"):
                self._find_link(spec).fail_next(spec.count)
                self._record(spec, link=spec.link, count=spec.count)
            elif spec.kind in ("link_degraded", "eth_link_degraded"):
                self._find_link(spec).degrade(spec.scale)
                if spec.until is not None:
                    self._pending_restores.append((spec.until, spec))
                self._record(spec, link=spec.link, scale=spec.scale,
                             until=spec.until)
            elif spec.kind == "transfer_corruption":
                self.machine.find_link(spec.link).corrupt_next(spec.count)
                self._record(spec, link=spec.link, count=spec.count)
            elif spec.kind == "kernel_fault":
                self._device(spec.device).inject_kernel_fault(spec.op)
                self._record(spec, device=spec.device, op=spec.op)
            elif spec.kind == "ps_shard_corruption":
                self.server.corrupt_shard(self._node(spec.node))
                self._record(spec, node=spec.node)

    # ------------------------------------------------------------------
    def on_checkpoint_saved(self, path: str | os.PathLike) -> None:
        """Truncate the just-written checkpoint if the plan says so."""
        self._saves_seen += 1
        for spec in self.plan:
            if spec.kind != "checkpoint_truncation":
                continue
            if spec.at_save != self._saves_seen:
                continue
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(size // 2)
            self.events.append(
                {"kind": spec.kind, "at_save": spec.at_save,
                 "path": os.fspath(path), "original_bytes": size,
                 "truncated_bytes": size // 2}
            )
            emit_counter(
                "faults_injected_total",
                1,
                help="Faults injected by the chaos plan.",
                kind=spec.kind,
            )
