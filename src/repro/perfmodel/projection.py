"""Analytic projection of CuLDA_CGS performance at paper scale.

Evaluates the kernel cost model (:mod:`repro.core.kernels`) and the
platform specs (:mod:`repro.gpusim.platform`) on full-scale dataset
statistics, reproducing:

- **Table 4** — average tokens/sec of the first 100 iterations, per
  platform and dataset, with the WarpLDA CPU row;
- **Table 5** — kernel time breakdown (sampling / update θ / update φ);
- **Fig 7** — per-iteration throughput series (the sparsity ramp-up);
- **Fig 9** — multi-GPU scaling on PubMed/Pascal.

The projection follows the schedule the trainer would pick:

- if one GPU's chunk + model fit in device memory → WorkSchedule1
  (resident data, no per-iteration PCIe traffic);
- otherwise → WorkSchedule2: per-iteration chunk streaming whose
  transfer time overlaps compute (iteration time = max of the two).
  This is why the paper's PubMed numbers sit close to its NYTimes
  numbers on the big GPUs: PubMed (738M tokens ≈ 15 GB of chunk data)
  cannot reside in a 12–16 GB GPU, so its steady state is PCIe-bound.

Multi-GPU iterations add the φ reduce-tree + broadcast cost (§5.2):
2·⌈log₂G⌉ peer transfers of the K×V replica plus the add kernels, with
the θ update overlapped (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sparsity import SparsityModel
from repro.core.kernels import (
    BLOCK_TOKEN_CAPACITY,
    KernelConfig,
    SamplingStats,
    phi_reduce_cost,
    sampling_cost,
    update_phi_cost,
    update_theta_cost,
)
from repro.core.model import LDAHyperParams
from repro.corpus.datasets import NYTIMES, PUBMED, DatasetStats
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec
from repro.gpusim.platform import (
    CPU_E5_2690V4,
    GPU_TITAN_X,
    GPU_TITAN_XP,
    GPU_V100,
    PCIE3_EFFECTIVE_GBPS,
)

__all__ = [
    "ProjectionConfig",
    "project_iteration_seconds",
    "project_series",
    "fig7_series",
    "fig9_scaling",
    "table4_throughput",
    "table5_breakdown",
]

#: The evaluation platforms of Table 2, keyed as the paper labels them.
PLATFORM_GPUS: dict[str, DeviceSpec] = {
    "Titan": GPU_TITAN_X,
    "Pascal": GPU_TITAN_XP,
    "Volta": GPU_V100,
}


@dataclass(frozen=True)
class ProjectionConfig:
    """Knobs of the analytic projection."""

    num_topics: int = 1024
    iterations: int = 100
    kernel: KernelConfig = field(default_factory=KernelConfig)
    pcie_gbps: float = PCIE3_EFFECTIVE_GBPS
    #: GPU↔GPU P2P bandwidth. PCIe P2P through the host bridge achieves
    #: roughly half the host-link bandwidth on multi-GPU boxes without
    #: NVLink (the Fig 9 platform).
    p2p_gbps: float = 6.0
    #: Multi-GPU load imbalance: the slowest chunk exceeds the mean by
    #: this fraction (token-balanced chunks are equal in tokens but not
    #: in θ sparsity).
    imbalance: float = 0.08
    #: Per-chunk host scheduling overhead (kernel launches, callbacks).
    per_chunk_host_seconds: float = 200e-6

    def hyper(self) -> LDAHyperParams:
        return LDAHyperParams(num_topics=self.num_topics)


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------

def _chunk_stream_bytes(stats: DatasetStats, kd_doc: float, cfg: ProjectionConfig) -> float:
    """Per-token bytes moved over PCIe per iteration when streaming
    (WorkSchedule2): chunk structure + topics up, topics + θ both ways."""
    idx_b = cfg.kernel.index_bytes
    h2d = 4 + 8 + idx_b          # token_doc, doc_map_indices, topics
    theta_per_token = (idx_b + 4) * kd_doc / max(stats.avg_doc_length, 1.0)
    d2h = idx_b + theta_per_token
    return h2d + theta_per_token + d2h


def _resident_fits(stats: DatasetStats, spec: DeviceSpec, cfg: ProjectionConfig,
                   num_gpus: int) -> bool:
    """Does one GPU's share of the corpus + the model fit (M = 1)?"""
    idx_b = cfg.kernel.index_bytes
    T_g = stats.num_tokens / num_gpus
    D_g = stats.num_docs / num_gpus
    chunk = T_g * (4 + 8 + idx_b) + D_g * 16 + stats.num_words * 8
    theta_cap = min(stats.avg_doc_length, cfg.num_topics) * D_g * (idx_b + 4)
    model = 3 * cfg.num_topics * stats.num_words * cfg.kernel.phi_bytes
    return chunk + theta_cap + model <= 0.9 * spec.mem_capacity_bytes


def _estimate_segments(stats: DatasetStats, tokens_in_chunk: float) -> int:
    """(block, word) segments for a chunk: every present word needs at
    least one block; heavy words add ~tokens/BLOCK_TOKEN_CAPACITY more."""
    return int(stats.num_words + tokens_in_chunk / BLOCK_TOKEN_CAPACITY)


def project_iteration_seconds(
    stats: DatasetStats,
    spec: DeviceSpec,
    cfg: ProjectionConfig,
    kd_token: float,
    num_gpus: int = 1,
    p2p_gbps: float | None = None,
) -> dict[str, float]:
    """Simulated seconds of one iteration, by component.

    ``kd_token`` is the mean θ-row population seen per token (from the
    sparsity model). Returns a dict with keys ``sampling``,
    ``update_theta``, ``update_phi``, ``sync``, ``transfer``, ``total``.
    """
    hyper = cfg.hyper()
    cm = CostModel()
    G = num_gpus
    T_g = stats.num_tokens / G
    D_g = stats.num_docs / G
    K, V = cfg.num_topics, stats.num_words

    s_stats = SamplingStats(
        num_tokens=int(T_g),
        kd_sum=int(T_g * kd_token),
        p1_draws=0,
        num_word_segments=_estimate_segments(stats, T_g),
        num_blocks=max(1, int(T_g / BLOCK_TOKEN_CAPACITY)),
    )
    t_sampling = cm.kernel_seconds(
        spec, sampling_cost(s_stats, hyper, V, cfg.kernel)
    )
    # θ-row population per *document*: kd_token is token-weighted; for
    # the nnz estimate use it directly (long docs dominate both).
    nnz = D_g * kd_token
    t_theta = cm.kernel_seconds(
        spec, update_theta_cost(int(T_g), int(D_g), int(nnz), hyper, cfg.kernel)
    )
    t_phi = cm.kernel_seconds(
        spec, update_phi_cost(int(T_g), V, hyper, cfg.kernel)
    )

    # φ synchronization (G > 1): reduce tree + broadcast (§5.2).
    t_sync = 0.0
    if G > 1:
        p2p = (p2p_gbps or cfg.p2p_gbps) * 1e9
        phi_bytes = float(K) * V * cfg.kernel.phi_bytes
        steps = int(np.ceil(np.log2(G)))
        t_add = cm.kernel_seconds(spec, phi_reduce_cost(K, V, cfg.kernel))
        t_sync = steps * (phi_bytes / p2p + t_add) + steps * (phi_bytes / p2p)

    # Streaming (WorkSchedule2) when the chunk does not fit resident.
    t_transfer = 0.0
    streaming = not _resident_fits(stats, spec, cfg, G)
    if streaming:
        kd_doc = kd_token  # same estimate as nnz above
        t_transfer = (
            T_g * _chunk_stream_bytes(stats, kd_doc, cfg)
            / (cfg.pcie_gbps * 1e9)
        )

    compute = t_sampling + t_phi
    # The θ update overlaps the φ sync (§6.2); whichever is longer counts.
    tail = max(t_theta, t_sync)
    body = compute + tail
    if streaming:
        # Transfers overlap compute across the pipelined chunks.
        body = max(body, t_transfer)
    body *= 1.0 + (cfg.imbalance if G > 1 else 0.0)
    body += cfg.per_chunk_host_seconds
    return {
        "sampling": t_sampling,
        "update_theta": t_theta,
        "update_phi": t_phi,
        "sync": t_sync,
        "transfer": t_transfer,
        "total": body,
    }


def project_series(
    stats: DatasetStats,
    spec: DeviceSpec,
    cfg: ProjectionConfig | None = None,
    num_gpus: int = 1,
    sparsity: SparsityModel | None = None,
) -> np.ndarray:
    """Per-iteration tokens/sec over ``cfg.iterations`` iterations."""
    cfg = cfg or ProjectionConfig()
    sp = sparsity or SparsityModel.from_stats(stats, cfg.num_topics)
    out = np.empty(cfg.iterations, dtype=np.float64)
    for it in range(cfg.iterations):
        parts = project_iteration_seconds(
            stats, spec, cfg, float(sp.kd(it)), num_gpus
        )
        out[it] = stats.num_tokens / parts["total"]
    return out


def _warplda_series(stats: DatasetStats, cfg: ProjectionConfig) -> np.ndarray:
    """WarpLDA's flat series on the paper's host CPU (Table 4 row)."""
    from repro.baselines.warplda import warplda_iteration_cost

    cm = CostModel()
    cost = warplda_iteration_cost(
        stats.num_tokens, cfg.num_topics, stats.num_words, stats.avg_doc_length
    )
    dt = cm.kernel_seconds(CPU_E5_2690V4, cost)
    return np.full(cfg.iterations, stats.num_tokens / dt)


# ----------------------------------------------------------------------
# Paper artifacts
# ----------------------------------------------------------------------

def fig7_series(
    dataset: str = "NYTimes", cfg: ProjectionConfig | None = None
) -> dict[str, np.ndarray]:
    """Fig 7: tokens/sec vs iteration for Titan/Pascal/Volta + WarpLDA."""
    cfg = cfg or ProjectionConfig()
    stats = {"NYTimes": NYTIMES, "PubMed": PUBMED}[dataset]
    out = {
        name: project_series(stats, spec, cfg)
        for name, spec in PLATFORM_GPUS.items()
    }
    out["WarpLDA"] = _warplda_series(stats, cfg)
    return out


def table4_throughput(cfg: ProjectionConfig | None = None) -> dict[str, dict[str, float]]:
    """Table 4: average tokens/sec of the first 100 iterations.

    Returns ``{dataset: {platform: tokens_per_sec}}`` including the
    WarpLDA row (platform key "WarpLDA").
    """
    cfg = cfg or ProjectionConfig()
    out: dict[str, dict[str, float]] = {}
    for ds_name, stats in (("NYTimes", NYTIMES), ("PubMed", PUBMED)):
        row: dict[str, float] = {}
        for name, spec in PLATFORM_GPUS.items():
            series = project_series(stats, spec, cfg)
            # Eq 2 over the first 100 iterations: total tokens / total time.
            total_time = (stats.num_tokens / series).sum()
            row[name] = stats.num_tokens * len(series) / total_time
        w = _warplda_series(stats, cfg)
        row["WarpLDA"] = float(w[0])
        out[ds_name] = row
    return out


def table5_breakdown(
    cfg: ProjectionConfig | None = None, dataset: str = "NYTimes"
) -> dict[str, dict[str, float]]:
    """Table 5: per-kernel time fractions at steady state on *dataset*.

    Returns ``{platform: {kernel: fraction}}`` over the three kernels
    the paper profiles.
    """
    cfg = cfg or ProjectionConfig()
    stats = {"NYTimes": NYTIMES, "PubMed": PUBMED}[dataset]
    sp = SparsityModel.from_stats(stats, cfg.num_topics)
    out: dict[str, dict[str, float]] = {}
    # Average over the first 100 iterations, as Table 4/5 do.
    its = np.arange(cfg.iterations)
    for name, spec in PLATFORM_GPUS.items():
        acc = {"sampling": 0.0, "update_theta": 0.0, "update_phi": 0.0}
        for it in its:
            parts = project_iteration_seconds(stats, spec, cfg, float(sp.kd(it)))
            for k in acc:
                acc[k] += parts[k]
        total = sum(acc.values())
        out[name] = {k: v / total for k, v in acc.items()}
    return out


def fig9_scaling(
    cfg: ProjectionConfig | None = None,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
) -> dict[int, dict[str, object]]:
    """Fig 9: PubMed on the Pascal platform with 1/2/4 GPUs.

    Returns ``{G: {"series": tokens/sec array, "speedup": float}}`` with
    speedups normalized to G = 1 (paper: 1.93× and 2.99×).
    """
    cfg = cfg or ProjectionConfig()
    spec = GPU_TITAN_XP
    series = {
        g: project_series(PUBMED, spec, cfg, num_gpus=g) for g in gpu_counts
    }

    def avg(s: np.ndarray) -> float:
        return PUBMED.num_tokens * len(s) / (PUBMED.num_tokens / s).sum()

    base = avg(series[gpu_counts[0]])
    return {
        g: {"series": series[g], "speedup": avg(series[g]) / base}
        for g in gpu_counts
    }
