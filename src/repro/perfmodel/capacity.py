"""Memory-capacity planning at paper scale (§5.1's sizing discussion).

"When deciding the value of M, we need to make sure that one GPU's
memory can accommodate at least one data chunk [...] to overlap the
computation and memory transfer, we need to allocate two data chunks."

:func:`plan_memory` answers, for a dataset's statistics and a device
spec, the questions a deployer asks before a run: does the corpus fit
resident (M = 1)? If not, what M streams it with double buffering?
How much headroom remains for K growth?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import KernelConfig
from repro.corpus.datasets import DatasetStats
from repro.gpusim.device import DeviceSpec

__all__ = ["MemoryPlan", "plan_memory", "max_topics_resident"]


@dataclass(frozen=True)
class MemoryPlan:
    """The §5.1 memory decision for one (dataset, device, K) point."""

    dataset: str
    device: str
    num_topics: int
    num_gpus: int
    chunks_per_gpu: int          # M
    resident: bool               # True -> WorkSchedule1
    model_bytes: int             # φ buffers + n_k
    chunk_bytes: int             # one chunk's corpus + θ footprint
    budget_bytes: int            # usable device memory

    @property
    def slots(self) -> int:
        """Chunk slots held simultaneously (1 resident, 2 streaming)."""
        return 1 if self.resident else 2

    @property
    def used_bytes(self) -> int:
        return self.model_bytes + self.slots * self.chunk_bytes

    @property
    def headroom_fraction(self) -> float:
        return 1.0 - self.used_bytes / self.budget_bytes

    def describe(self) -> str:
        mode = "resident (WorkSchedule1)" if self.resident else (
            f"streaming M={self.chunks_per_gpu} (WorkSchedule2)"
        )
        return (
            f"{self.dataset} on {self.device} x{self.num_gpus}, K={self.num_topics}: "
            f"{mode}; model {self.model_bytes / 2**30:.2f} GiB + "
            f"{self.slots} x chunk {self.chunk_bytes / 2**30:.2f} GiB "
            f"of {self.budget_bytes / 2**30:.2f} GiB "
            f"({self.headroom_fraction:.0%} headroom)"
        )


def _chunk_bytes(
    stats: DatasetStats, tokens: float, docs: float, num_topics: int,
    config: KernelConfig,
) -> int:
    idx_b = config.index_bytes
    theta_cap = min(stats.avg_doc_length, num_topics) * docs * (idx_b + 4)
    return int(
        tokens * (4 + 8 + idx_b)
        + docs * 16
        + stats.num_words * 8
        + theta_cap
    )


def plan_memory(
    stats: DatasetStats,
    spec: DeviceSpec,
    num_topics: int = 1024,
    num_gpus: int = 1,
    config: KernelConfig | None = None,
    headroom: float = 0.9,
) -> MemoryPlan:
    """Compute the §5.1 memory plan for a full-scale dataset.

    Raises ``MemoryError`` if even per-document-scale chunks cannot fit
    (the model alone exceeds the device).
    """
    config = config or KernelConfig()
    budget = int(spec.mem_capacity_bytes * headroom)
    model = int(
        3 * num_topics * stats.num_words * config.phi_bytes + num_topics * 8
    )
    if model > budget:
        raise MemoryError(
            f"model buffers ({model / 2**30:.2f} GiB) exceed {spec.name}'s "
            f"budget ({budget / 2**30:.2f} GiB)"
        )
    T_g = stats.num_tokens / num_gpus
    D_g = stats.num_docs / num_gpus

    m = 1
    while True:
        chunk = _chunk_bytes(stats, T_g / m, D_g / m, num_topics, config)
        slots = 1 if m == 1 else 2
        if model + slots * chunk <= budget:
            return MemoryPlan(
                dataset=stats.name,
                device=spec.name,
                num_topics=num_topics,
                num_gpus=num_gpus,
                chunks_per_gpu=m,
                resident=(m == 1),
                model_bytes=model,
                chunk_bytes=chunk,
                budget_bytes=budget,
            )
        m = m + 1 if m > 1 else 2
        if m > stats.num_docs:
            raise MemoryError("no chunking fits the device")


def max_topics_resident(
    stats: DatasetStats,
    spec: DeviceSpec,
    num_gpus: int = 1,
    config: KernelConfig | None = None,
    headroom: float = 0.9,
    k_limit: int = 1 << 15,
) -> int:
    """Largest power-of-two K for which the dataset stays resident
    (M = 1) on *spec* — the capacity frontier of WorkSchedule1."""
    config = config or KernelConfig()
    best = 0
    k = 2
    while k <= k_limit:
        try:
            plan = plan_memory(stats, spec, k, num_gpus, config, headroom)
        except MemoryError:
            break
        if not plan.resident:
            break
        best = k
        k *= 2
    return best
