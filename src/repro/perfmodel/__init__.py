"""Full-scale analytic performance projection.

The functional simulator runs real Gibbs numerics, so it cannot execute
the paper's 99.5M/738M-token corpora in Python. This subpackage
evaluates the *same cost model* (the kernels' byte/flop accounting +
the platform specs) analytically on the full-scale dataset statistics
(Table 3) with the measured/fitted θ-sparsity evolution — producing the
paper's Tables 4–5 and Figures 7/9 at original scale.

See DESIGN.md §5 for the functional/performance fidelity split.
"""

from repro.perfmodel.capacity import MemoryPlan, max_topics_resident, plan_memory
from repro.perfmodel.projection import (
    ProjectionConfig,
    fig7_series,
    fig9_scaling,
    project_iteration_seconds,
    project_series,
    table4_throughput,
    table5_breakdown,
)

__all__ = [
    "MemoryPlan",
    "plan_memory",
    "max_topics_resident",
    "ProjectionConfig",
    "project_iteration_seconds",
    "project_series",
    "fig7_series",
    "fig9_scaling",
    "table4_throughput",
    "table5_breakdown",
]
