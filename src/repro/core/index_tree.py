"""Tree-based multinomial sampling (paper §6.1.1, Fig 5).

Sampling a topic from an unnormalized probability vector ``p[K]`` is
turned into a search problem: draw ``u ~ U(0, sum(p))`` and find the
minimal ``k`` with ``prefixSum(p)[k] > u``. CuLDA_CGS builds an R-way
index tree over the prefix sums (R = 32, one warp inspects one node's 32
children in a single SIMD step); the tree above the leaves is ~K/31
entries — small enough to live in shared memory, so the repeated
sampling accesses that dominate the kernel never touch off-chip memory.

This module provides the functional tree with the same topology and a
byte-accounting helper the cost model uses. Searches are vectorized over
many draws at once (one gather + cumulative sum per level).
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexTree"]


class IndexTree:
    """An R-way prefix-sum search tree over a nonnegative vector.

    Parameters
    ----------
    weights: nonnegative 1-D array (unnormalized probabilities).
    fanout: tree arity; 32 matches one NVIDIA warp (the paper uses
        32-way trees; AMD's 64-wide wavefronts would use 64).

    Notes
    -----
    Level 0 holds the leaf weights. Each higher level holds the sums of
    consecutive ``fanout``-sized groups of the level below, padded with
    zeros. A search descends from the root, at each node computing the
    running sum of its children and taking the first child whose
    cumulative sum exceeds the residual target — exactly Fig 5 of the
    paper (shown there with fanout 2 for legibility).
    """

    def __init__(self, weights: np.ndarray, fanout: int = 32):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        self.fanout = int(fanout)
        self.size = int(w.size)
        self.levels: list[np.ndarray] = [w.copy()]
        while self.levels[-1].size > 1:
            cur = self.levels[-1]
            pad = (-cur.size) % self.fanout
            if pad:
                cur = np.concatenate([cur, np.zeros(pad)])
                self.levels[-1] = cur
            self.levels.append(cur.reshape(-1, self.fanout).sum(axis=1))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total mass (the root value)."""
        return float(self.levels[-1][0]) if len(self.levels) > 1 else float(
            self.levels[0].sum()
        )

    @property
    def depth(self) -> int:
        """Number of levels including leaves (= 1 + ceil(log_R K))."""
        return len(self.levels)

    def internal_nbytes(self, itemsize: int = 4) -> int:
        """Bytes of the *internal* levels (what shared memory must hold).

        The paper's point: for K = 10k and R = 32, this is ~323 entries —
        trivially shared-memory resident — while the leaves stay in
        global/L1."""
        return sum(lvl.size for lvl in self.levels[1:]) * itemsize

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def sample(self, u: float) -> int:
        """Find the minimal k with prefixSum(w)[k] > u (scalar form)."""
        return int(self.sample_many(np.asarray([u]))[0])

    def sample_many(self, u: np.ndarray) -> np.ndarray:
        """Vectorized search for many targets at once.

        Parameters
        ----------
        u: targets in ``[0, total)``. Values ≥ total are clamped to the
           last nonzero leaf (they can arise from float round-off when
           the caller draws ``u = rand() * total``).

        Returns
        -------
        ``int64`` leaf indices, each the minimal ``k`` whose cumulative
        weight strictly exceeds the target.
        """
        u = np.asarray(u, dtype=np.float64)
        nodes = np.zeros(u.shape, dtype=np.int64)
        resid = u.copy()
        for level in range(len(self.levels) - 2, -1, -1):
            lvl = self.levels[level]
            base = nodes * self.fanout
            # Gather each query's child block: (n, fanout)
            block = lvl[base[:, None] + np.arange(self.fanout)]
            csum = np.cumsum(block, axis=1)
            child = (csum > resid[:, None]).argmax(axis=1)
            # argmax returns 0 when no child exceeds (round-off at the top
            # end); clamp to the last child with nonzero subtree mass.
            overflow = csum[np.arange(u.size), -1] <= resid
            if overflow.any():
                nz = block[overflow] > 0
                last_nz = nz.shape[1] - 1 - nz[:, ::-1].argmax(axis=1)
                child = child.copy()
                child[overflow] = last_nz
            prev = csum[np.arange(u.size), child] - block[np.arange(u.size), child]
            resid = resid - prev
            nodes = base + child
        return np.minimum(nodes, self.size - 1)

    def prefix_sum(self) -> np.ndarray:
        """The full leaf prefix sum (reference for equivalence tests)."""
        return np.cumsum(self.levels[0][: self.size])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IndexTree(size={self.size}, fanout={self.fanout}, "
            f"depth={self.depth}, total={self.total:.6g})"
        )
