"""CuLDA_CGS: the multi-GPU LDA trainer (paper Alg 1 + §4–6).

This is the library's primary public API::

    from repro.core import CuLDA, TrainConfig
    from repro.corpus import nytimes_like
    from repro.gpusim import pascal_platform

    corpus = nytimes_like(num_tokens=100_000)
    trainer = CuLDA(corpus, machine=pascal_platform(4),
                    config=TrainConfig(num_topics=64, iterations=50))
    result = trainer.train()
    print(result.summary())

`train()` runs the full pipeline: CPU-side preprocessing (word-first
sort, document–word maps), memory-driven chunking (C = M × G), the
WorkSchedule1/WorkSchedule2 iteration loop with per-GPU sampling and
update kernels, and the φ reduce-tree synchronization — all on the
simulated machine, with real Gibbs numerics. Results carry both the
statistical outputs (φ, θ, topic assignments, log-likelihood trace) and
the performance outputs (simulated per-iteration throughput, kernel
time breakdown) the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus, TokenChunk
from repro.core.kernels import KernelConfig, accumulate_phi
from repro.core.likelihood import _doc_log_likelihood, word_log_likelihood
from repro.core.model import LDAHyperParams, SparseTheta
from repro.gpusim.costmodel import KernelCost
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.platform import Machine, volta_platform
from repro.sched.partition import PartitionPlan, choose_chunking
from repro.sched.schedule import (
    ChunkRuntime,
    DeviceChunk,
    GpuWorker,
    download_chunk,
    run_iteration_resident,
    run_iteration_streaming,
    upload_chunk,
)
from repro.telemetry.context import emit_gauge, emit_observe
from repro.telemetry.mixin import TelemetryMixin
from repro.telemetry.spans import span

__all__ = [
    "TrainConfig",
    "IterationStats",
    "TrainResult",
    "CuLDA",
    "BREAKDOWN_KINDS",
]

#: The operation kinds a training timeline decomposes into. Together
#: they cover every simulated interval a train() run records, so
#: breakdown percentages over these kinds sum to 100.
BREAKDOWN_KINDS = (
    "sampling", "update_theta", "update_phi", "sync", "p2p", "h2d", "d2h",
)


@dataclass(frozen=True)
class TrainConfig:
    """Configuration of one training run.

    Defaults follow the paper: α = 50/K, β = 0.01, all kernel
    optimizations on, GPU-tree synchronization, overlapped transfers.
    """

    num_topics: int = 128
    alpha: float | None = None          # None → 50/K
    beta: float = 0.01
    iterations: int = 100
    seed: int = 0
    # Kernel optimization switches (ablations flip these).
    compressed: bool = True
    sparse_sampler: bool = True
    share_p2_tree: bool = True
    reuse_pstar: bool = True
    tree_fanout: int = 32
    # Scheduling.
    chunks_per_gpu: int | None = None   # None → smallest M that fits (§5.1)
    sync_algorithm: str = "gpu_tree"    # or "ring" / "cpu_gather"
    overlap_transfers: bool = True
    # Analysis.
    likelihood_every: int = 0           # 0 = only at the end
    #: Early stopping: stop once the likelihood plateau's relative
    #: improvement falls below this (requires likelihood_every > 0).
    stop_rel_tolerance: float | None = None

    def hyper(self) -> LDAHyperParams:
        return LDAHyperParams(
            num_topics=self.num_topics,
            alpha=-1.0 if self.alpha is None else self.alpha,
            beta=self.beta,
        )

    def kernel_config(self) -> KernelConfig:
        return KernelConfig(
            sparse_sampler=self.sparse_sampler,
            share_p2_tree=self.share_p2_tree,
            reuse_pstar=self.reuse_pstar,
            compressed=self.compressed,
            tree_fanout=self.tree_fanout,
        )


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration measurements (the Fig 7 series)."""

    iteration: int
    sim_seconds: float
    tokens_per_sec: float
    mean_kd: float
    p1_fraction: float
    log_likelihood_per_token: float | None = None


@dataclass
class TrainResult:
    """Outputs of one training run."""

    corpus_name: str
    machine_name: str
    num_gpus: int
    num_tokens: int
    plan_chunks: int
    chunks_per_gpu: int
    iterations: list[IterationStats]
    total_sim_seconds: float
    wall_seconds: float
    breakdown: dict[str, float]
    phi: np.ndarray
    theta: SparseTheta
    hyper: LDAHyperParams
    #: High-water device-memory mark across GPUs (bytes) — what §5.1's
    #: chunking decision actually bounded.
    peak_device_bytes: int = 0
    #: Per-token topic assignment in the ORIGINAL corpus token order
    #: (int32[T]); None only for legacy constructions.
    topics: np.ndarray | None = None

    @property
    def avg_tokens_per_sec(self) -> float:
        """Eq 2 over the whole run: T × iters / simulated elapsed."""
        iters = len(self.iterations)
        if self.total_sim_seconds == 0:
            return 0.0
        return self.num_tokens * iters / self.total_sim_seconds

    @property
    def final_log_likelihood(self) -> float | None:
        for it in reversed(self.iterations):
            if it.log_likelihood_per_token is not None:
                return it.log_likelihood_per_token
        return None

    def top_words(self, topic: int, n: int = 10) -> list[int]:
        """Word ids with the highest φ counts for *topic*."""
        if not 0 <= topic < self.phi.shape[0]:
            raise IndexError("topic out of range")
        col = self.phi[topic]
        return [int(w) for w in np.argsort(col)[::-1][:n]]

    def summary(self) -> str:
        ll = self.final_log_likelihood
        lines = [
            f"CuLDA_CGS on {self.machine_name} ({self.num_gpus} GPU(s))",
            f"  corpus: {self.corpus_name}  T={self.num_tokens:,}  "
            f"K={self.hyper.num_topics}",
            f"  chunks: C={self.plan_chunks} (M={self.chunks_per_gpu})",
            f"  iterations: {len(self.iterations)}  "
            f"simulated: {self.total_sim_seconds:.3f}s  "
            f"wall: {self.wall_seconds:.1f}s",
            f"  throughput: {self.avg_tokens_per_sec / 1e6:.1f}M tokens/sec (simulated)",
        ]
        if ll is not None:
            lines.append(f"  log-likelihood/token: {ll:.4f}")
        parts = ", ".join(
            f"{k} {self.breakdown.get(k, 0.0) * 100:.1f}%"
            for k in BREAKDOWN_KINDS
        )
        lines.append(f"  breakdown: {parts}")
        return "\n".join(lines)


def _busy_fractions(intervals, device_ids, t0: float, t1: float) -> dict[int, float]:
    """Per-device busy share of the window [t0, t1] (overlap-merged)."""
    out = {int(d): 0.0 for d in device_ids}
    dt = t1 - t0
    if dt <= 0:
        return out
    by_dev: dict[int, list[tuple[float, float]]] = {d: [] for d in out}
    for iv in intervals:
        if iv.device_id in by_dev:
            s, e = max(iv.start, t0), min(iv.end, t1)
            if e > s:
                by_dev[iv.device_id].append((s, e))
    for d, spans in by_dev.items():
        spans.sort()
        busy = 0.0
        cur_s = cur_e = None
        for s, e in spans:
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    busy += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            busy += cur_e - cur_s
        out[d] = busy / dt
    return out


class CuLDA(TelemetryMixin):
    """The CuLDA_CGS trainer.

    Parameters
    ----------
    corpus: input corpus.
    machine: simulated platform; defaults to a 1-GPU Volta machine.
    config: training configuration.
    callbacks: :class:`~repro.telemetry.callbacks.TrainerCallback`
        instances fired during training (see ``docs/OBSERVABILITY.md``).
    registry: metrics sink; defaults to the active session's registry
        or a fresh one (inspect ``trainer.registry`` after train()).

    Notes
    -----
    Determinism: runs with the same corpus, config and seed produce
    bit-identical models *regardless of the GPU count*, because each
    chunk owns an independent RNG spawned by chunk id and the integer φ
    reduction is order-independent. (Requires the same chunk count C —
    pin ``chunks_per_gpu`` when comparing across G.)
    """

    def __init__(
        self,
        corpus: Corpus,
        machine: Machine | None = None,
        config: TrainConfig | None = None,
        warm_start_phi: np.ndarray | None = None,
        callbacks=None,
        registry=None,
    ):
        self.corpus = corpus
        self.machine = machine or volta_platform(1)
        self.config = config or TrainConfig()
        self._telemetry_init(callbacks, registry)
        if not self.machine.gpus:
            raise ValueError("machine has no GPUs")
        if warm_start_phi is not None:
            expected = (self.config.num_topics, corpus.num_words)
            if warm_start_phi.shape != expected:
                raise ValueError(
                    f"warm_start_phi shape {warm_start_phi.shape} != {expected}"
                )
        self._warm_start_phi = warm_start_phi
        self._validate_compression()

    def _validate_compression(self) -> None:
        cfg = self.config
        if not cfg.compressed:
            return
        cfg.hyper().topic_dtype(compressed=True)  # raises if K too large
        max_freq = int(self.corpus.word_frequencies().max(initial=0))
        if max_freq >= 2**16:
            raise ValueError(
                f"word frequency {max_freq} overflows 16-bit φ compression; "
                "set TrainConfig(compressed=False)"
            )

    # ------------------------------------------------------------------
    def train(self, callbacks=None) -> TrainResult:
        """Run the full training loop (Alg 1). Returns a TrainResult.

        *callbacks* extends the constructor's callback list for this run
        only. A telemetry session over ``self.registry`` is active for
        the duration, so kernel-level counters (sampler branch counts,
        transfer bytes, φ high-water) accumulate there.
        """
        with self._telemetry_run(callbacks):
            return self._train_impl()

    def _train_impl(self) -> TrainResult:
        wall_start = time.perf_counter()
        cfg = self.config
        hyper = cfg.hyper()
        kcfg = cfg.kernel_config()
        machine = self.machine
        G = len(machine.gpus)

        with span("preprocess"):
            plan = choose_chunking(
                self.corpus,
                G,
                hyper,
                kcfg,
                machine.gpus[0].spec,
                chunks_per_gpu=cfg.chunks_per_gpu,
            )
            runtimes = self._init_runtimes(plan, hyper, kcfg)
            phi_host = self._initial_phi(runtimes, hyper, kcfg)
        workers = [
            GpuWorker(dev, hyper.num_topics, self.corpus.num_words, kcfg)
            for dev in machine.gpus
        ]
        self._fire(
            "on_train_start",
            {
                "corpus": self.corpus.name,
                "machine": machine.name,
                "num_gpus": G,
                "num_tokens": self.corpus.num_tokens,
                "num_topics": hyper.num_topics,
                "num_chunks": plan.num_chunks,
                "chunks_per_gpu": plan.chunks_per_gpu,
                "iterations_planned": cfg.iterations,
                "sync_algorithm": cfg.sync_algorithm,
            },
        )

        # --- initial distribution (Alg 1 lines 7-9) -------------------
        dev_chunks: list[DeviceChunk] = []
        for g, w in enumerate(workers):
            machine.memcpy_h2d(w.phi_full, phi_host, stream=w.upload, label="h2d:phi")
            self._launch_nk(w, kcfg)
        if plan.chunks_per_gpu == 1:
            dev_chunks = [
                upload_chunk(machine, workers[g], runtimes[g])
                for g in range(G)
            ]
        machine.synchronize()
        machine.reset_clock()  # measure iterations from t=0, as Fig 7 does

        # --- iteration loop (Alg 1 lines 10-16 / 23-34) ----------------
        detector = None
        if cfg.stop_rel_tolerance is not None:
            if not cfg.likelihood_every:
                raise ValueError(
                    "stop_rel_tolerance requires likelihood_every > 0"
                )
            from repro.analysis.convergence import ConvergenceDetector

            detector = ConvergenceDetector(rel_tolerance=cfg.stop_rel_tolerance)

        stats: list[IterationStats] = []
        t_prev = 0.0
        for it in range(cfg.iterations):
            iv0 = len(machine.trace.intervals)
            with span("iteration"):
                if plan.chunks_per_gpu == 1:
                    run_iteration_resident(
                        machine, workers, runtimes, dev_chunks, hyper, kcfg,
                        cfg.sync_algorithm,
                    )
                else:
                    run_iteration_streaming(
                        machine, workers, runtimes, hyper, kcfg,
                        plan.chunks_per_gpu, cfg.sync_algorithm,
                        overlap=cfg.overlap_transfers,
                    )
                t_now = machine.synchronize()
            dt = t_now - t_prev
            new_ivs = machine.trace.intervals[iv0:]
            sync_seconds = sum(
                iv.duration for iv in new_ivs if iv.kind == "sync"
            )
            p2p_bytes = sum(
                iv.bytes_moved for iv in new_ivs if iv.kind == "p2p"
            )
            busy = _busy_fractions(
                new_ivs, [d.device_id for d in machine.gpus], t_prev, t_now
            )
            t_prev = t_now
            self._fire(
                "on_sync_end",
                {
                    "iteration": it,
                    "sync_seconds": sync_seconds,
                    "p2p_bytes": p2p_bytes,
                },
            )
            ll = None
            if cfg.likelihood_every and (it + 1) % cfg.likelihood_every == 0:
                with span("likelihood"):
                    ll = self._likelihood(runtimes, workers[0], hyper)
            kd = np.array([r.last_stats.mean_kd for r in runtimes])
            p1 = np.array([r.last_stats.p1_fraction for r in runtimes])
            weights = np.array([r.chunk.num_tokens for r in runtimes], dtype=float)
            weights /= weights.sum()
            tps = self.corpus.num_tokens / dt if dt > 0 else 0.0
            stats.append(
                IterationStats(
                    iteration=it,
                    sim_seconds=dt,
                    tokens_per_sec=tps,
                    mean_kd=float(kd @ weights),
                    p1_fraction=float(p1 @ weights),
                    log_likelihood_per_token=ll,
                )
            )
            emit_observe(
                "iteration_sim_seconds", dt,
                help="simulated duration of one training iteration",
            )
            emit_gauge(
                "train_tokens_per_sec", tps,
                help="simulated sampling throughput (Eq 2)",
            )
            for d, f in busy.items():
                emit_gauge(
                    "device_busy_fraction", f,
                    help="device busy share of the last iteration",
                    device=str(d),
                )
            self._fire(
                "on_iteration_end",
                {
                    "iteration": it,
                    "sim_seconds": dt,
                    "tokens_per_sec": tps,
                    "mean_kd": stats[-1].mean_kd,
                    "p1_fraction": stats[-1].p1_fraction,
                    "p1_draws": sum(r.last_stats.p1_draws for r in runtimes),
                    "p2_draws": sum(
                        r.last_stats.num_tokens - r.last_stats.p1_draws
                        for r in runtimes
                    ),
                    "tree_probe_levels": sum(
                        r.last_stats.tree_probe_levels for r in runtimes
                    ),
                    "device_busy_fraction": busy,
                    "log_likelihood_per_token": ll,
                    "phi": lambda w=workers[0]: (
                        w.phi_full.data.astype(np.int32).copy()
                    ),
                },
            )
            if detector is not None and ll is not None and detector.update(ll):
                break
        total_sim = machine.synchronize()

        # --- final collection (Alg 1 lines 17-20 / 35) -----------------
        machine.memcpy_d2h(workers[0].phi_full, stream=workers[0].download,
                           label="d2h:phi")
        if plan.chunks_per_gpu == 1:
            for g in range(G):
                download_chunk(machine, workers[g], runtimes[g], dev_chunks[g])
        machine.synchronize()

        with span("likelihood"):
            final_ll = self._likelihood(runtimes, workers[0], hyper)
        if stats:
            last = stats[-1]
            stats[-1] = IterationStats(
                iteration=last.iteration,
                sim_seconds=last.sim_seconds,
                tokens_per_sec=last.tokens_per_sec,
                mean_kd=last.mean_kd,
                p1_fraction=last.p1_fraction,
                log_likelihood_per_token=final_ll,
            )

        breakdown = machine.trace.breakdown_fractions(BREAKDOWN_KINDS)
        phi_final = workers[0].phi_full.data.astype(np.int32).copy()
        theta_final = self._merge_theta(runtimes, hyper)
        topics_final = self._merge_topics(runtimes)
        peak = max(gpu.allocator.peak_bytes for gpu in machine.gpus)
        for w in workers:
            w.free_all()

        result = TrainResult(
            corpus_name=self.corpus.name,
            machine_name=machine.name,
            num_gpus=G,
            num_tokens=self.corpus.num_tokens,
            plan_chunks=plan.num_chunks,
            chunks_per_gpu=plan.chunks_per_gpu,
            iterations=stats,
            total_sim_seconds=total_sim,
            wall_seconds=time.perf_counter() - wall_start,
            breakdown=breakdown,
            phi=phi_final,
            theta=theta_final,
            hyper=hyper,
            peak_device_bytes=peak,
            topics=topics_final,
        )
        self._fire(
            "on_train_end",
            {
                "iterations": len(stats),
                "total_sim_seconds": total_sim,
                "wall_seconds": result.wall_seconds,
                "avg_tokens_per_sec": result.avg_tokens_per_sec,
                "log_likelihood_per_token": final_ll,
                "peak_device_bytes": peak,
                "result": result,
            },
        )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _init_runtimes(
        self, plan: PartitionPlan, hyper: LDAHyperParams, kcfg: KernelConfig
    ) -> list[ChunkRuntime]:
        """CPU preprocessing: chunk layouts, initial topics, initial θ.

        Chunk RNGs are spawned from the seed by chunk id, making results
        independent of the GPU count at fixed C. Initial topics are
        uniform random (paper §2.1) unless a warm-start φ was given, in
        which case each token's topic is drawn from p(k | w) ∝ φ_kw + β.
        """
        master = np.random.default_rng(self.config.seed)
        children = master.spawn(len(plan.doc_ranges) + 1)
        runtimes = []
        dtype = hyper.topic_dtype(kcfg.compressed)
        warm_cdf = None
        if self._warm_start_phi is not None:
            w = self._warm_start_phi.astype(np.float64) + hyper.beta
            warm_cdf = np.cumsum(w / w.sum(axis=0, keepdims=True), axis=0)
            warm_cdf[-1, :] = 1.0
        for cid, (lo, hi) in enumerate(plan.doc_ranges):
            chunk = TokenChunk.from_corpus_range(self.corpus, lo, hi)
            rng = children[cid]
            if warm_cdf is None:
                topics = rng.integers(
                    0, hyper.num_topics, size=chunk.num_tokens
                ).astype(dtype)
            else:
                words = chunk.token_word_expanded().astype(np.int64)
                u = rng.random(chunk.num_tokens)
                topics = np.empty(chunk.num_tokens, dtype=np.int64)
                step = max(1, (1 << 22) // hyper.num_topics)
                for lo_t in range(0, chunk.num_tokens, step):
                    sel = slice(lo_t, min(lo_t + step, chunk.num_tokens))
                    cols = warm_cdf[:, words[sel]]  # (K, m)
                    topics[sel] = (cols > u[sel][None, :]).argmax(axis=0)
                topics = topics.astype(dtype)
            theta = SparseTheta.from_assignments(
                chunk, topics, hyper.num_topics, kcfg.compressed
            )
            runtimes.append(ChunkRuntime(cid, chunk, topics, theta, rng))
        return runtimes

    def _initial_phi(
        self,
        runtimes: list[ChunkRuntime],
        hyper: LDAHyperParams,
        kcfg: KernelConfig,
    ) -> np.ndarray:
        """The full initial φ (host-side, part of preprocessing)."""
        phi = np.zeros((hyper.num_topics, self.corpus.num_words), dtype=np.int64)
        for r in runtimes:
            phi += accumulate_phi(r.chunk, r.topics, hyper.num_topics)
        if kcfg.compressed and phi.max(initial=0) >= 2**16:
            raise OverflowError("initial φ overflows 16-bit compression")
        dtype = np.uint16 if kcfg.compressed else np.int32
        return phi.astype(dtype)

    def _launch_nk(self, worker: GpuWorker, kcfg: KernelConfig) -> None:
        K, V = worker.phi_full.shape

        def body() -> None:
            worker.n_k.data[...] = worker.phi_full.data.astype(np.int64).sum(axis=1)

        KernelLaunch(
            body,
            KernelCost(
                bytes_read=float(K) * V * kcfg.phi_bytes,
                bytes_written=K * 8.0,
                flops=float(K) * V,
            ),
            "n_k_rowsum",
            "sync",
        ).launch(worker.upload)

    def _likelihood(
        self,
        runtimes: list[ChunkRuntime],
        worker0: GpuWorker,
        hyper: LDAHyperParams,
    ) -> float:
        """Joint log-likelihood per token from the host mirrors.

        Analysis-only (not charged to the simulated clock), as the paper
        evaluates likelihood offline from model snapshots.
        """
        phi = worker0.phi_full.data.astype(np.int64)
        n_k = phi.sum(axis=1)
        ll = word_log_likelihood(phi, n_k, hyper, self.corpus.num_words)
        for r in runtimes:
            ll += _doc_log_likelihood(r.theta, r.chunk.doc_lengths, hyper)
        return ll / self.corpus.num_tokens

    def _merge_topics(self, runtimes: list[ChunkRuntime]) -> np.ndarray:
        """Scatter each chunk's (word-sorted) topics back to the original
        corpus token order via the stored source positions."""
        out = np.empty(self.corpus.num_tokens, dtype=np.int32)
        for r in runtimes:
            base = int(self.corpus.doc_indptr[r.chunk.doc_offset])
            out[base + r.chunk.source_pos] = r.topics.astype(np.int32)
        return out

    def _merge_theta(
        self, runtimes: list[ChunkRuntime], hyper: LDAHyperParams
    ) -> SparseTheta:
        """Concatenate the chunk θs into one corpus-wide CSR (chunks
        partition documents contiguously and in order)."""
        indptrs = [runtimes[0].theta.indptr]
        offset = runtimes[0].theta.indptr[-1]
        for r in runtimes[1:]:
            indptrs.append(r.theta.indptr[1:] + offset)
            offset += r.theta.indptr[-1]
        return SparseTheta(
            np.concatenate(indptrs),
            np.concatenate([r.theta.indices for r in runtimes]),
            np.concatenate([r.theta.data for r in runtimes]),
            hyper.num_topics,
        )
