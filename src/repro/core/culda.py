"""CuLDA_CGS: the multi-GPU LDA trainer (paper Alg 1 + §4–6).

This is the library's primary public API::

    from repro.core import CuLDA, TrainConfig
    from repro.corpus import nytimes_like
    from repro.gpusim import pascal_platform

    corpus = nytimes_like(num_tokens=100_000)
    trainer = CuLDA(corpus, machine=pascal_platform(4),
                    config=TrainConfig(num_topics=64, iterations=50))
    result = trainer.train()
    print(result.summary())

`train()` runs the full pipeline: CPU-side preprocessing (word-first
sort, document–word maps), memory-driven chunking (C = M × G), the
WorkSchedule1/WorkSchedule2 iteration loop with per-GPU sampling and
update kernels, and the φ reduce-tree synchronization — all on the
simulated machine, with real Gibbs numerics. Results carry both the
statistical outputs (φ, θ, topic assignments, log-likelihood trace) and
the performance outputs (simulated per-iteration throughput, kernel
time breakdown) the paper reports.

Iteration control (likelihood cadence, early stopping, callbacks,
checkpoint/resume) lives in :mod:`repro.engine`; this module implements
the :class:`~repro.engine.algorithm.Algorithm` strategy surface for the
multi-GPU sampler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus, TokenChunk
from repro.core.kernels import KernelConfig, accumulate_phi
from repro.core.likelihood import _doc_log_likelihood, word_log_likelihood
from repro.core.model import LDAHyperParams, SparseTheta
from repro.engine.algorithm import Algorithm, IterationOutcome
from repro.engine.loop import LoopConfig, TrainingLoop
from repro.engine.results import IterationStats, TrainResult
from repro.engine.state import RunState
from repro.gpusim.costmodel import KernelCost
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.platform import Machine, volta_platform
from repro.sched.partition import PartitionPlan, choose_chunking
from repro.sched.schedule import (
    ChunkRuntime,
    DeviceChunk,
    GpuWorker,
    busy_fractions,
    download_chunk,
    iteration_trace_stats,
    run_iteration_resident,
    run_iteration_streaming,
    upload_chunk,
)
from repro.telemetry.context import emit_gauge, emit_observe
from repro.telemetry.spans import span

__all__ = [
    "TrainConfig",
    "IterationStats",
    "TrainResult",
    "CuLDA",
    "BREAKDOWN_KINDS",
]

#: The operation kinds a training timeline decomposes into. Together
#: they cover every simulated interval a train() run records, so
#: breakdown percentages over these kinds sum to 100.
BREAKDOWN_KINDS = (
    "sampling", "update_theta", "update_phi", "sync", "p2p", "h2d", "d2h",
)

#: Backward-compatible alias (the implementation moved to repro.sched).
_busy_fractions = busy_fractions


@dataclass(frozen=True)
class TrainConfig:
    """Configuration of one training run.

    Defaults follow the paper: α = 50/K, β = 0.01, all kernel
    optimizations on, GPU-tree synchronization, overlapped transfers.
    """

    num_topics: int = 128
    alpha: float | None = None          # None → 50/K
    beta: float = 0.01
    iterations: int = 100
    seed: int = 0
    # Kernel optimization switches (ablations flip these).
    compressed: bool = True
    sparse_sampler: bool = True
    share_p2_tree: bool = True
    reuse_pstar: bool = True
    tree_fanout: int = 32
    # Scheduling.
    chunks_per_gpu: int | None = None   # None → smallest M that fits (§5.1)
    sync_algorithm: str = "auto"        # planner picks; or any registered collective
    overlap_transfers: bool = True
    # Multi-node (DistributedCuLDA; ignored by the single-machine trainer).
    #: Inter-node φ-sync backend: "auto" (cluster planner picks) or any
    #: registered cluster collective ("eth_ring", "param_server").
    inter_sync: str = "auto"
    #: Bounded staleness (F+NOMAD): nodes run up to s iterations on a
    #: stale global φ (plus their own pending updates) between
    #: inter-node syncs. 0 = synchronous — bit-identical to one machine.
    staleness: int = 0
    # Analysis.
    likelihood_every: int = 0           # 0 = only at the end
    #: Early stopping: stop once the likelihood plateau's relative
    #: improvement falls below this (requires likelihood_every > 0).
    stop_rel_tolerance: float | None = None

    def hyper(self) -> LDAHyperParams:
        return LDAHyperParams(
            num_topics=self.num_topics,
            alpha=-1.0 if self.alpha is None else self.alpha,
            beta=self.beta,
        )

    def kernel_config(self) -> KernelConfig:
        return KernelConfig(
            sparse_sampler=self.sparse_sampler,
            share_p2_tree=self.share_p2_tree,
            reuse_pstar=self.reuse_pstar,
            compressed=self.compressed,
            tree_fanout=self.tree_fanout,
        )


class CuLDA(Algorithm):
    """The CuLDA_CGS trainer.

    Parameters
    ----------
    corpus: input corpus.
    machine: simulated platform; defaults to a 1-GPU Volta machine.
    config: training configuration.
    callbacks: :class:`~repro.telemetry.callbacks.TrainerCallback`
        instances fired during training (see ``docs/OBSERVABILITY.md``).
    registry: metrics sink; defaults to the active session's registry
        or a fresh one (inspect ``trainer.registry`` after train()).

    Notes
    -----
    Determinism: runs with the same corpus, config and seed produce
    bit-identical models *regardless of the GPU count*, because each
    chunk owns an independent RNG spawned by chunk id and the integer φ
    reduction is order-independent. (Requires the same chunk count C —
    pin ``chunks_per_gpu`` when comparing across G.) Checkpoints written
    by ``train(save_every=...)`` resume bit-identically too: they carry
    every chunk's topic assignments, θ and RNG stream position, and φ is
    recounted exactly from the restored assignments.
    """

    name = "culda"

    def __init__(
        self,
        corpus: Corpus,
        machine: Machine | None = None,
        config: TrainConfig | None = None,
        warm_start_phi: np.ndarray | None = None,
        callbacks=None,
        registry=None,
    ):
        self.corpus = corpus
        self.machine = machine or volta_platform(1)
        self.config = config or TrainConfig()
        self._telemetry_init(callbacks, registry)
        if not self.machine.gpus:
            raise ValueError("machine has no GPUs")
        if warm_start_phi is not None:
            expected = (self.config.num_topics, corpus.num_words)
            if warm_start_phi.shape != expected:
                raise ValueError(
                    f"warm_start_phi shape {warm_start_phi.shape} != {expected}"
                )
        self._warm_start_phi = warm_start_phi
        self._validate_compression()

    @property
    def hyper(self) -> LDAHyperParams:
        return self.config.hyper()

    def _validate_compression(self) -> None:
        cfg = self.config
        if not cfg.compressed:
            return
        cfg.hyper().topic_dtype(compressed=True)  # raises if K too large
        max_freq = int(self.corpus.word_frequencies().max(initial=0))
        if max_freq >= 2**16:
            raise ValueError(
                f"word frequency {max_freq} overflows 16-bit φ compression; "
                "set TrainConfig(compressed=False)"
            )

    # ------------------------------------------------------------------
    def train(
        self,
        callbacks=None,
        *,
        save_every: int = 0,
        checkpoint_path=None,
        resume=None,
        vocabulary=None,
        recovery=None,
        fault_plan=None,
    ) -> TrainResult:
        """Run the full training loop (Alg 1). Returns a TrainResult.

        *callbacks* extends the constructor's callback list for this run
        only. ``save_every``/``checkpoint_path`` write full run-state
        checkpoints every N iterations; ``resume`` continues from such a
        checkpoint (path or :class:`RunState`) bit-identically. A
        telemetry session over ``self.registry`` is active for the
        duration, so kernel-level counters (sampler branch counts,
        transfer bytes, φ high-water) accumulate there.

        ``recovery`` is a :class:`~repro.engine.recovery.RecoveryPolicy`
        or a mode string (``"none"``/``"retry"``/``"elastic"``);
        ``fault_plan`` is a :class:`~repro.faults.FaultPlan` or a path to
        its JSON — see ``docs/ROBUSTNESS.md``.
        """
        cfg = self.config
        if isinstance(recovery, str):
            from repro.engine.recovery import RecoveryPolicy

            recovery = RecoveryPolicy(mode=recovery)
        if isinstance(fault_plan, (str, bytes)) or hasattr(fault_plan, "__fspath__"):
            from repro.faults.plan import FaultPlan

            fault_plan = FaultPlan.from_json(fault_plan)
        loop = TrainingLoop(
            self,
            LoopConfig(
                iterations=cfg.iterations,
                likelihood_every=cfg.likelihood_every,
                stop_rel_tolerance=cfg.stop_rel_tolerance,
                save_every=save_every,
                checkpoint_path=checkpoint_path,
                vocabulary=vocabulary,
                recovery=recovery,
                fault_plan=fault_plan,
            ),
            callbacks=callbacks,
            resume=resume,
        )
        return loop.run()

    def _transfer_retry(self):
        policy = self.recovery_policy
        return policy.transfer_retry() if policy is not None else None

    # ------------------------------------------------------------------
    # Algorithm strategy surface
    # ------------------------------------------------------------------
    def init_state(self, resume: RunState | None = None) -> RunState:
        cfg = self.config
        hyper = cfg.hyper()
        kcfg = cfg.kernel_config()
        machine = self.machine
        G = len(machine.gpus)

        with span("preprocess"):
            plan = choose_chunking(
                self.corpus,
                G,
                hyper,
                kcfg,
                machine.gpus[0].spec,
                chunks_per_gpu=cfg.chunks_per_gpu,
            )
            runtimes = self._init_runtimes(plan, hyper, kcfg)
            if resume is not None:
                self._restore_runtimes(runtimes, resume, hyper, kcfg)
            phi_host = self._initial_phi(runtimes, hyper, kcfg)
        workers = [
            GpuWorker(dev, hyper.num_topics, self.corpus.num_words, kcfg)
            for dev in machine.gpus
        ]

        # Initial distribution (Alg 1 lines 7-9).
        dev_chunks: list[DeviceChunk] = []
        for w in workers:
            machine.memcpy_h2d(w.phi_full, phi_host, stream=w.upload, label="h2d:phi")
            self._launch_nk(w, kcfg)
        if plan.chunks_per_gpu == 1:
            dev_chunks = [
                upload_chunk(machine, workers[g], runtimes[g])
                for g in range(G)
            ]
        machine.synchronize()
        machine.reset_clock()  # measure iterations from t=0, as Fig 7 does

        self._hyper, self._kcfg = hyper, kcfg
        self._plan, self._runtimes = plan, runtimes
        self._workers, self._dev_chunks = workers, dev_chunks
        self._t_prev = 0.0
        self._peak_device_bytes = 0

        state = resume if resume is not None else RunState(algo=self.name)
        # The simulated clock restarts at 0 on resume; sim totals keep
        # telescoping from the checkpoint's accumulated seconds.
        self._sim_base = state.sim_seconds
        self.capture_state(state)
        return state

    def _restore_runtimes(
        self,
        runtimes: list[ChunkRuntime],
        state: RunState,
        hyper: LDAHyperParams,
        kcfg: KernelConfig,
    ) -> None:
        """Overwrite freshly initialized chunk runtimes with checkpoint
        state (topics z, θ, RNG stream position), validating shape."""
        if len(state.topics) != len(runtimes):
            raise ValueError(
                f"checkpoint has {len(state.topics)} chunk(s), this run "
                f"plans {len(runtimes)}; pin chunks_per_gpu to match"
            )
        if state.thetas is None or len(state.rngs) != len(runtimes):
            raise ValueError("checkpoint is missing per-chunk sampler state")
        dtype = hyper.topic_dtype(kcfg.compressed)
        for i, rt in enumerate(runtimes):
            topics = state.topics[i]
            if topics.size != rt.chunk.num_tokens:
                raise ValueError(
                    "checkpoint chunk sizes do not match this corpus/plan"
                )
            rt.topics = topics.astype(dtype, copy=False)
            rt.theta = state.thetas[i]
            rt.rng = state.rngs[i]

    def start_event(self, state: RunState) -> dict:
        return {
            "machine": self.machine.name,
            "num_gpus": len(self.machine.gpus),
            "num_chunks": self._plan.num_chunks,
            "chunks_per_gpu": self._plan.chunks_per_gpu,
            "sync_algorithm": self.config.sync_algorithm,
        }

    def run_iteration(self, state: RunState) -> IterationOutcome:
        """One WorkSchedule1/2 pass (Alg 1 lines 10-16 / 23-34)."""
        cfg = self.config
        machine = self.machine
        runtimes, workers = self._runtimes, self._workers
        iv0 = len(machine.trace.intervals)
        with span("iteration"):
            retry = self._transfer_retry()
            if self._plan.chunks_per_gpu == 1:
                run_iteration_resident(
                    machine, workers, runtimes, self._dev_chunks,
                    self._hyper, self._kcfg, cfg.sync_algorithm,
                    retry=retry,
                )
            else:
                run_iteration_streaming(
                    machine, workers, runtimes, self._hyper, self._kcfg,
                    self._plan.chunks_per_gpu, cfg.sync_algorithm,
                    overlap=cfg.overlap_transfers, retry=retry,
                )
            t_now = machine.synchronize()
        dt = t_now - self._t_prev
        sync_seconds, p2p_bytes, busy = iteration_trace_stats(
            machine.trace.intervals[iv0:],
            [w.device.device_id for w in workers],
            self._t_prev,
            t_now,
        )
        self._t_prev = t_now

        kd = np.array([r.last_stats.mean_kd for r in runtimes])
        p1 = np.array([r.last_stats.p1_fraction for r in runtimes])
        weights = np.array([r.chunk.num_tokens for r in runtimes], dtype=float)
        weights /= weights.sum()
        tps = self.corpus.num_tokens / dt if dt > 0 else 0.0

        emit_observe(
            "iteration_sim_seconds", dt,
            help="simulated duration of one training iteration",
        )
        emit_gauge(
            "train_tokens_per_sec", tps,
            help="simulated sampling throughput (Eq 2)",
        )
        for d, f in busy.items():
            emit_gauge(
                "device_busy_fraction", f,
                help="device busy share of the last iteration",
                device=str(d),
            )
        return IterationOutcome(
            sim_seconds=dt,
            tokens_per_sec=tps,
            stats={
                "mean_kd": float(kd @ weights),
                "p1_fraction": float(p1 @ weights),
            },
            sync_event={
                "sync_seconds": sync_seconds,
                "p2p_bytes": p2p_bytes,
            },
            event={
                "mean_kd": float(kd @ weights),
                "p1_fraction": float(p1 @ weights),
                "p1_draws": sum(r.last_stats.p1_draws for r in runtimes),
                "p2_draws": sum(
                    r.last_stats.num_tokens - r.last_stats.p1_draws
                    for r in runtimes
                ),
                "tree_probe_levels": sum(
                    r.last_stats.tree_probe_levels for r in runtimes
                ),
                "device_busy_fraction": busy,
                "phi": lambda w=workers[0]: (
                    w.phi_full.data.astype(np.int32).copy()
                ),
            },
        )

    def log_likelihood(self, state: RunState) -> float:
        with span("likelihood"):
            return self._likelihood(self._runtimes, self._workers[0], self._hyper)

    def capture_state(self, state: RunState) -> None:
        state.phi = self._workers[0].phi_full.data.astype(np.int32).copy()
        state.topics = [r.topics for r in self._runtimes]
        state.thetas = [r.theta for r in self._runtimes]
        state.rngs = [r.rng for r in self._runtimes]

    def check_invariants(self, state: RunState) -> list[str]:
        """Every GPU must hold the same synchronized φ replica — silent
        transfer corruption of any one replica breaks this."""
        workers = self._workers
        ref = workers[0].phi_full.data
        out = []
        for w in workers[1:]:
            if not np.array_equal(w.phi_full.data, ref):
                out.append(
                    f"phi replica on GPU {w.device.device_id} diverges "
                    f"from GPU {workers[0].device.device_id}"
                )
        return out

    def finalize(self, state: RunState, wall_seconds: float) -> TrainResult:
        machine = self.machine
        runtimes, workers = self._runtimes, self._workers
        plan, hyper = self._plan, self._hyper
        G = len(workers)  # surviving GPUs (== all, absent device loss)
        total_sim = self._sim_base + machine.synchronize()

        # Final collection (Alg 1 lines 17-20 / 35).
        machine.memcpy_d2h(workers[0].phi_full, stream=workers[0].download,
                           label="d2h:phi")
        if plan.chunks_per_gpu == 1:
            for g in range(G):
                download_chunk(machine, workers[g], runtimes[g],
                               self._dev_chunks[g])
        machine.synchronize()

        breakdown = machine.trace.breakdown_fractions(BREAKDOWN_KINDS)
        phi_final = workers[0].phi_full.data.astype(np.int32).copy()
        theta_final = SparseTheta.concatenate(
            [r.theta for r in runtimes], hyper.num_topics
        )
        topics_final = self._merge_topics(runtimes)
        peak = max(gpu.allocator.peak_bytes for gpu in machine.gpus)
        for w in workers:
            w.free_all()
        self._peak_device_bytes = peak

        return TrainResult(
            corpus_name=self.corpus.name,
            machine_name=machine.name,
            num_gpus=G,
            num_tokens=self.corpus.num_tokens,
            plan_chunks=plan.num_chunks,
            chunks_per_gpu=plan.chunks_per_gpu,
            iterations=list(state.history),
            total_sim_seconds=total_sim,
            wall_seconds=wall_seconds,
            breakdown=breakdown,
            phi=phi_final,
            theta=theta_final,
            hyper=hyper,
            peak_device_bytes=peak,
            topics=topics_final,
            algo=self.name,
        )

    def end_event(self, state: RunState, result: TrainResult) -> dict:
        return {"peak_device_bytes": self._peak_device_bytes}

    # ------------------------------------------------------------------
    # Recovery surface (see repro.engine.recovery / docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def rollback(self, state: RunState) -> None:
        """Reinstall the sampler from a known-good *state* snapshot.

        The chunk layout is unchanged: per-chunk z/θ/RNG come straight
        from the snapshot, φ is recounted from the restored assignments
        (a pure function of z, so the rebuild is exact) and re-uploaded
        to every worker. With the snapshot's RNG stream positions the
        rerun of the poisoned iteration is bit-identical to a run that
        never faulted.
        """
        machine = self.machine
        hyper, kcfg = self._hyper, self._kcfg
        runtimes = self._runtimes
        if len(state.topics) != len(runtimes) or state.thetas is None:
            raise ValueError(
                "rollback state does not match the live chunk layout"
            )
        dtype = hyper.topic_dtype(kcfg.compressed)
        for i, rt in enumerate(runtimes):
            rt.topics = state.topics[i].astype(dtype, copy=False)
            rt.theta = state.thetas[i]
            rt.rng = state.rngs[i]
        phi_host = self._initial_phi(runtimes, hyper, kcfg)
        for w in self._workers:
            machine.memcpy_h2d(
                w.phi_full, phi_host, stream=w.upload, label="h2d:phi_rollback"
            )
            self._launch_nk(w, kcfg)
        if self._plan.chunks_per_gpu == 1:
            for g, w in enumerate(self._workers):
                dc, rt = self._dev_chunks[g], runtimes[g]
                machine.memcpy_h2d(
                    dc.topics, rt.topics, stream=w.upload,
                    label=f"h2d:chunk{rt.chunk_id}.topics_rollback",
                )
                dc.replace_theta(w.device, rt.theta, f"chunk{rt.chunk_id}")
        # Recovery time stays on the clock (no reset): fault handling is
        # part of the run the timeline reports.
        self._t_prev = machine.synchronize()
        state.phi = self._workers[0].phi_full.data.astype(np.int32).copy()

    def handle_device_loss(self, state: RunState) -> None:
        """Elastic re-partition over the surviving GPUs.

        From the known-good *state*: merge every chunk's assignments
        back to corpus token order (the dead GPU's shard state lives in
        the snapshot, not on the dead GPU), re-chunk the corpus over the
        G−1 survivors with the same token-balancing planner, recount φ,
        and rebuild workers/device buffers. Chunk RNGs are re-spawned
        from (seed, generation) so the continued run stays deterministic
        given the same fault plan.
        """
        from repro.gpusim.errors import FaultError

        machine = self.machine
        cfg = self.config
        hyper, kcfg = self._hyper, self._kcfg
        alive = machine.alive_gpus
        if not alive:
            raise FaultError("no surviving GPUs to re-partition over")
        old_runtimes = self._runtimes
        if len(state.topics) != len(old_runtimes) or state.thetas is None:
            raise ValueError(
                "device-loss state does not match the live chunk layout"
            )

        # Dead GPU's shard state comes from the snapshot: merge all
        # chunks' assignments back to the original corpus token order.
        global_topics = np.empty(self.corpus.num_tokens, dtype=np.int32)
        for i, rt in enumerate(old_runtimes):
            base = int(self.corpus.doc_indptr[rt.chunk.doc_offset])
            global_topics[base + rt.chunk.source_pos] = (
                state.topics[i].astype(np.int32)
            )

        # Drop every old device buffer (host-side bookkeeping only; the
        # dead GPU's memory is gone with the GPU).
        for dc in self._dev_chunks:
            dc.free_all()
        for w in self._workers:
            w.free_all()

        plan = choose_chunking(
            self.corpus, len(alive), hyper, kcfg, alive[0].spec,
            chunks_per_gpu=cfg.chunks_per_gpu,
        )
        self._rng_generation = getattr(self, "_rng_generation", 0) + 1
        children = np.random.default_rng(
            [cfg.seed, self._rng_generation]
        ).spawn(len(plan.doc_ranges))
        dtype = hyper.topic_dtype(kcfg.compressed)
        runtimes = []
        for cid, (lo, hi) in enumerate(plan.doc_ranges):
            chunk = TokenChunk.from_corpus_range(self.corpus, lo, hi)
            base = int(self.corpus.doc_indptr[chunk.doc_offset])
            topics = global_topics[base + chunk.source_pos].astype(dtype)
            theta = SparseTheta.from_assignments(
                chunk, topics, hyper.num_topics, kcfg.compressed
            )
            runtimes.append(ChunkRuntime(cid, chunk, topics, theta, children[cid]))
        phi_host = self._initial_phi(runtimes, hyper, kcfg)

        workers = [
            GpuWorker(dev, hyper.num_topics, self.corpus.num_words, kcfg)
            for dev in alive
        ]
        dev_chunks: list[DeviceChunk] = []
        for w in workers:
            machine.memcpy_h2d(
                w.phi_full, phi_host, stream=w.upload,
                label="h2d:phi_repartition",
            )
            self._launch_nk(w, kcfg)
        if plan.chunks_per_gpu == 1:
            dev_chunks = [
                upload_chunk(machine, workers[g], runtimes[g])
                for g in range(len(workers))
            ]
        self._plan, self._runtimes = plan, runtimes
        self._workers, self._dev_chunks = workers, dev_chunks
        # Migration/redistribution time stays on the clock.
        self._t_prev = machine.synchronize()
        emit_gauge(
            "surviving_gpus", float(len(alive)),
            help="GPUs still alive after elastic re-partition",
        )

        # Refresh the restored state to the new shard layout.
        state.topics = [r.topics for r in runtimes]
        state.thetas = [r.theta for r in runtimes]
        state.rngs = [r.rng for r in runtimes]
        state.phi = workers[0].phi_full.data.astype(np.int32).copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _init_runtimes(
        self, plan: PartitionPlan, hyper: LDAHyperParams, kcfg: KernelConfig
    ) -> list[ChunkRuntime]:
        """CPU preprocessing: chunk layouts, initial topics, initial θ.

        Chunk RNGs are spawned from the seed by chunk id, making results
        independent of the GPU count at fixed C. Initial topics are
        uniform random (paper §2.1) unless a warm-start φ was given, in
        which case each token's topic is drawn from p(k | w) ∝ φ_kw + β.
        """
        master = np.random.default_rng(self.config.seed)
        children = master.spawn(len(plan.doc_ranges) + 1)
        runtimes = []
        dtype = hyper.topic_dtype(kcfg.compressed)
        warm_cdf = None
        if self._warm_start_phi is not None:
            w = self._warm_start_phi.astype(np.float64) + hyper.beta
            warm_cdf = np.cumsum(w / w.sum(axis=0, keepdims=True), axis=0)
            warm_cdf[-1, :] = 1.0
        for cid, (lo, hi) in enumerate(plan.doc_ranges):
            chunk = TokenChunk.from_corpus_range(self.corpus, lo, hi)
            rng = children[cid]
            if warm_cdf is None:
                topics = rng.integers(
                    0, hyper.num_topics, size=chunk.num_tokens
                ).astype(dtype)
            else:
                words = chunk.token_word_expanded().astype(np.int64)
                u = rng.random(chunk.num_tokens)
                topics = np.empty(chunk.num_tokens, dtype=np.int64)
                step = max(1, (1 << 22) // hyper.num_topics)
                for lo_t in range(0, chunk.num_tokens, step):
                    sel = slice(lo_t, min(lo_t + step, chunk.num_tokens))
                    cols = warm_cdf[:, words[sel]]  # (K, m)
                    topics[sel] = (cols > u[sel][None, :]).argmax(axis=0)
                topics = topics.astype(dtype)
            theta = SparseTheta.from_assignments(
                chunk, topics, hyper.num_topics, kcfg.compressed
            )
            runtimes.append(ChunkRuntime(cid, chunk, topics, theta, rng))
        return runtimes

    def _initial_phi(
        self,
        runtimes: list[ChunkRuntime],
        hyper: LDAHyperParams,
        kcfg: KernelConfig,
    ) -> np.ndarray:
        """The full initial φ (host-side, part of preprocessing).

        On resume this recounts φ from the restored assignments, which
        reproduces the checkpoint's synchronized φ exactly (integer
        counts are a pure function of z).
        """
        phi = np.zeros((hyper.num_topics, self.corpus.num_words), dtype=np.int64)
        for r in runtimes:
            phi += accumulate_phi(r.chunk, r.topics, hyper.num_topics)
        if kcfg.compressed and phi.max(initial=0) >= 2**16:
            raise OverflowError("initial φ overflows 16-bit compression")
        dtype = np.uint16 if kcfg.compressed else np.int32
        return phi.astype(dtype)

    def _launch_nk(self, worker: GpuWorker, kcfg: KernelConfig) -> None:
        K, V = worker.phi_full.shape

        def body() -> None:
            worker.n_k.data[...] = worker.phi_full.data.astype(np.int64).sum(axis=1)

        KernelLaunch(
            body,
            KernelCost(
                bytes_read=float(K) * V * kcfg.phi_bytes,
                bytes_written=K * 8.0,
                flops=float(K) * V,
            ),
            "n_k_rowsum",
            "sync",
        ).launch(worker.upload)

    def _likelihood(
        self,
        runtimes: list[ChunkRuntime],
        worker0: GpuWorker,
        hyper: LDAHyperParams,
    ) -> float:
        """Joint log-likelihood per token from the host mirrors.

        Analysis-only (not charged to the simulated clock), as the paper
        evaluates likelihood offline from model snapshots.
        """
        phi = worker0.phi_full.data.astype(np.int64)
        n_k = phi.sum(axis=1)
        ll = word_log_likelihood(phi, n_k, hyper, self.corpus.num_words)
        for r in runtimes:
            ll += _doc_log_likelihood(r.theta, r.chunk.doc_lengths, hyper)
        return ll / self.corpus.num_tokens

    def _merge_topics(self, runtimes: list[ChunkRuntime]) -> np.ndarray:
        """Scatter each chunk's (word-sorted) topics back to the original
        corpus token order via the stored source positions."""
        out = np.empty(self.corpus.num_tokens, dtype=np.int32)
        for r in runtimes:
            base = int(self.corpus.doc_indptr[r.chunk.doc_offset])
            out[base + r.chunk.source_pos] = r.topics.astype(np.int32)
        return out
