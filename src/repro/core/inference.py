"""Fold-in inference: topic distributions for unseen documents.

The paper trains θ and φ; the standard downstream use of the model
(and the usual held-out evaluation) is *fold-in*: freeze φ from
training and Gibbs-sample only the new documents' topic assignments,

.. math::

    p(k) \\propto (\\theta^{new}_{d,k} + \\alpha)\\,
                  \\frac{\\phi_{k,v} + \\beta}{n_k + \\beta V},

then estimate each document's topic mixture and the held-out
likelihood. The sampler reuses the training kernel
(:func:`repro.core.kernels.gibbs_sample_chunk`) with φ frozen — the
same vectorized path, so inference inherits the kernels' tested
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import KernelConfig, gibbs_sample_chunk, recount_theta
from repro.core.model import LDAHyperParams, SparseTheta
from repro.corpus.corpus import Corpus

__all__ = ["InferenceResult", "infer_documents", "held_out_log_likelihood"]


@dataclass(frozen=True)
class InferenceResult:
    """Per-document topic mixtures for a folded-in corpus.

    Attributes
    ----------
    theta: CSR counts of the inferred assignments (num_docs × K).
    doc_topic: row-normalized smoothed mixtures, ``float64[num_docs, K]``:
        ``(θ_dk + α) / (L_d + K·α)``.
    log_likelihood_per_token: held-out predictive score (see
        :func:`held_out_log_likelihood`).
    iterations: fold-in sweeps performed.
    """

    theta: SparseTheta
    doc_topic: np.ndarray
    log_likelihood_per_token: float
    iterations: int


def infer_documents(
    corpus: Corpus,
    phi: np.ndarray,
    hyper: LDAHyperParams,
    iterations: int = 20,
    burn_in: int | None = None,
    seed: int = 0,
    config: KernelConfig | None = None,
) -> InferenceResult:
    """Fold *corpus* into a trained model.

    Parameters
    ----------
    corpus: unseen documents (word ids must index the training φ's
        columns).
    phi: trained ``int[K, V]`` topic–word counts (frozen).
    hyper: the training hyperparameters.
    iterations: Gibbs sweeps over the new documents.
    burn_in: sweeps before θ starts being averaged (default: half).
    seed: RNG seed.

    Returns
    -------
    :class:`InferenceResult` with the averaged, smoothed θ estimate.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    phi = np.asarray(phi)
    if phi.ndim != 2:
        raise ValueError(
            f"phi must be a 2-D (num_topics, vocab) array, got shape "
            f"{phi.shape}"
        )
    K = hyper.num_topics
    if phi.shape[0] != K:
        raise ValueError(f"phi has {phi.shape[0]} topics, hyper says {K}")
    if corpus.num_words > phi.shape[1]:
        raise ValueError(
            f"corpus vocabulary ({corpus.num_words}) exceeds phi columns "
            f"({phi.shape[1]}); map unseen words before inference"
        )
    _check_word_ids(corpus, phi.shape[1])
    config = config or KernelConfig(compressed=False)
    burn_in = iterations // 2 if burn_in is None else burn_in
    if not 0 <= burn_in < iterations:
        raise ValueError("burn_in must lie in [0, iterations)")

    # Pad φ columns to the corpus vocabulary if phi is wider (fine) or
    # equal; frozen statistics.
    phi64 = phi.astype(np.int64)
    n_k = phi64.sum(axis=1)
    V = phi.shape[1]
    if corpus.num_words < V:
        corpus = Corpus(
            corpus.token_word, corpus.doc_indptr, V, name=corpus.name
        )

    chunk = corpus.to_chunk()
    rng = np.random.default_rng(seed)
    topics = rng.integers(0, K, size=chunk.num_tokens).astype(np.int32)
    theta = recount_theta(chunk, topics, K, compressed=False)

    D = chunk.num_docs
    theta_accum = np.zeros((D, K), dtype=np.float64)
    samples = 0
    for it in range(iterations):
        topics, _ = gibbs_sample_chunk(
            chunk, topics, theta, phi64, n_k, hyper, rng, config
        )
        theta = recount_theta(chunk, topics, K, compressed=False)
        if it >= burn_in:
            theta_accum += theta.to_dense()
            samples += 1

    mean_theta = theta_accum / max(samples, 1)
    lengths = chunk.doc_lengths.astype(np.float64)
    doc_topic = (mean_theta + hyper.alpha) / (
        lengths[:, None] + K * hyper.alpha
    )
    ll = held_out_log_likelihood(corpus, doc_topic, phi64, n_k, hyper)
    return InferenceResult(
        theta=theta,
        doc_topic=doc_topic,
        log_likelihood_per_token=ll,
        iterations=iterations,
    )


def _check_word_ids(corpus: Corpus, vocab: int) -> None:
    """Reject word ids that would index past φ's columns.

    ``corpus.num_words`` is caller-declared, so a corpus built with an
    understated vocabulary can still carry out-of-range ids; without
    this check they surface as an opaque ``IndexError`` deep inside the
    sampling kernel (or, worse, as silently wrong einsum gathers).
    """
    if corpus.num_tokens == 0:
        return
    widest = int(corpus.token_word.max())
    if widest >= vocab:
        raise ValueError(
            f"corpus contains word id {widest} but phi has only {vocab} "
            f"columns; map unseen words before inference"
        )


def held_out_log_likelihood(
    corpus: Corpus,
    doc_topic: np.ndarray,
    phi: np.ndarray,
    n_k: np.ndarray,
    hyper: LDAHyperParams,
) -> float:
    """Predictive log-likelihood per token of *corpus* under the model.

    Uses the standard fold-in estimate
    ``Σ_i log Σ_k p(k|d_i) p(w_i|k)`` with the smoothed word
    distribution ``(φ_kv + β)/(n_k + βV)``.
    """
    if corpus.num_tokens == 0:
        raise ValueError("empty corpus")
    phi = np.asarray(phi)
    if phi.ndim != 2:
        raise ValueError(
            f"phi must be a 2-D (num_topics, vocab) array, got shape "
            f"{phi.shape}"
        )
    _check_word_ids(corpus, phi.shape[1])
    beta, V = hyper.beta, phi.shape[1]
    word_dist = (phi + beta) / (n_k + beta * V)[:, None]  # (K, V)
    docs = corpus.token_doc.astype(np.int64)
    words = corpus.token_word.astype(np.int64)
    # p(w_i) = θ row · φ column, batched in slabs to bound memory.
    total = 0.0
    step = 1 << 18
    for lo in range(0, corpus.num_tokens, step):
        d = docs[lo : lo + step]
        w = words[lo : lo + step]
        p = np.einsum("ik,ki->i", doc_topic[d], word_dist[:, w])
        total += float(np.log(np.maximum(p, 1e-300)).sum())
    return total / corpus.num_tokens
