"""Alias tables — the competing O(1) sampling structure.

CuLDA_CGS samples the dense part p₂(k) through a 32-way index tree
(Fig 5). The main competing design in the literature the paper builds
on (LightLDA [35], SaberLDA [20], F+LDA) is the **alias table** (Vose's
method): O(K) construction, O(1) per draw, at the cost of staleness —
the table encodes the distribution at build time, so MH corrections or
periodic rebuilds are needed when counts move.

This module implements Vose's algorithm exactly, plus a vectorized
multi-draw, so the tree-vs-alias design choice is measurable
(``bench_ablation_tree_vs_alias.py``): per *word*, the tree costs
O(K) build + O(log₃₂ K) per draw, the alias table O(K) build + O(1)
per draw — with CuLDA's block sharing both builds amortize, and the
draw-cost difference is what remains.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AliasTable"]


class AliasTable:
    """Vose alias table over a nonnegative weight vector.

    After construction, a draw takes one uniform (bucket) + one
    uniform (coin): ``k = bucket if coin < prob[bucket] else
    alias[bucket]``.
    """

    def __init__(self, weights: np.ndarray):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.size = int(w.size)
        self.total = float(total)

        n = self.size
        scaled = w * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for i in large + small:
            prob[i] = 1.0
        self.prob = prob
        self.alias = alias

    def sample(self, u_bucket: float, u_coin: float) -> int:
        """One draw from two uniforms in [0, 1)."""
        return int(self.sample_many(np.asarray([u_bucket]), np.asarray([u_coin]))[0])

    def sample_many(self, u_bucket: np.ndarray, u_coin: np.ndarray) -> np.ndarray:
        """Vectorized draws; both inputs in [0, 1), equal shapes."""
        u_bucket = np.asarray(u_bucket, dtype=np.float64)
        u_coin = np.asarray(u_coin, dtype=np.float64)
        if u_bucket.shape != u_coin.shape:
            raise ValueError("uniform arrays must have equal shape")
        buckets = np.minimum(
            (u_bucket * self.size).astype(np.int64), self.size - 1
        )
        take_alias = u_coin >= self.prob[buckets]
        return np.where(take_alias, self.alias[buckets], buckets)

    def implied_distribution(self) -> np.ndarray:
        """The exact distribution the table encodes (for testing):
        summing each bucket's kept and aliased mass must recover the
        normalized input weights."""
        out = np.zeros(self.size, dtype=np.float64)
        np.add.at(out, np.arange(self.size), self.prob)
        np.add.at(out, self.alias, 1.0 - self.prob)
        return out / self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AliasTable(size={self.size}, total={self.total:.6g})"
